//! Behavioural tests for the shim's proptest runner: assumption handling,
//! failure reporting, and determinism.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn satisfiable_assume_still_runs_the_body(x in 0usize..100) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }

    #[test]
    fn tuples_maps_and_vecs_compose(
        (r, c) in (1usize..5, 1usize..5),
        data in prop::collection::vec(0.0f64..1.0, 1..32),
    ) {
        prop_assert!(r * c < 25);
        prop_assert!(data.iter().all(|v| (0.0..1.0).contains(v)));
    }
}

// Written without `#[test]` so the harness does not run them directly; the
// `#[should_panic]` wrappers below drive them.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    fn vacuous_property(x in 0usize..10) {
        prop_assume!(x > 1000);
        prop_assert!(false, "body must never run");
    }

    fn failing_property(x in 0usize..10) {
        prop_assert!(x > 1000, "x was {}", x);
    }
}

#[test]
#[should_panic(expected = "too many prop_assume rejections")]
fn vacuous_assume_fails_loudly_instead_of_passing() {
    vacuous_property();
}

#[test]
#[should_panic(expected = "inputs: x =")]
fn failures_report_the_generated_inputs() {
    failing_property();
}
