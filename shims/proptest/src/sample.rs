//! Sampling strategies (`sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::seq::SliceRandom;
use std::fmt::Debug;

pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.choices
            .choose(rng)
            .expect("select() needs at least one choice")
            .clone()
    }
}

/// Uniformly selects one of the given values.
pub fn select<T: Clone + Debug>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    Select { choices }
}
