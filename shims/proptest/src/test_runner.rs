//! Configuration, deterministic per-case RNG, and failure plumbing.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Mirror of `proptest::test_runner::Config` (the fields the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Same default budget as real proptest.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator: seeded from the test's identity and case index,
/// so every run replays the same inputs (failures reproduce without any
/// persisted regression file).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the case.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A non-passing property case: a genuine failure, or an input rejected by
/// `prop_assume!` (the runner regenerates rejected cases).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
