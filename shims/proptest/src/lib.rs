//! Offline API-compatible shim for the `proptest` crate.
//!
//! Covers the surface the workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies, `Just`,
//! `collection::vec`, `sample::select` and `any::<T>()`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics immediately and the panic
//!   message includes every generated input (all strategy values are
//!   `Debug`), which for these tests is enough to reproduce: generation is
//!   fully deterministic, derived from the test's module path, name and
//!   case index, so a failure recurs on every run until fixed and no
//!   `proptest-regressions/` persistence is needed.
//! * Values are drawn uniformly; there is no bias toward boundary values.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors real proptest's `prelude::prop` module of strategy builders.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(pat in strategy, ..) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            // Rejected cases (`prop_assume!`) are regenerated rather than
            // counted as passes, with a bounded budget so a property whose
            // assumption almost never holds fails loudly instead of passing
            // vacuously (mirrors real proptest's "too many global rejects").
            let __max_rejects = __config.cases.saturating_mul(4).max(1024);
            let mut __accepted = 0u32;
            let mut __rejected = 0u32;
            let mut __attempt = 0u32;
            while __accepted < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempt,
                );
                __attempt += 1;
                let mut __inputs = ::std::string::String::new();
                $(
                    let $arg = {
                        let __value =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}; ", stringify!($arg), &__value,
                        ));
                        __value
                    };
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejected += 1;
                        if __rejected > __max_rejects {
                            ::std::panic!(
                                "proptest `{}`: too many prop_assume rejections \
                                 ({} rejects for {} accepted cases); last: {}",
                                stringify!($name),
                                __rejected,
                                __accepted,
                                __why,
                            );
                        }
                    }
                    ::std::result::Result::Err(__err) => {
                        ::std::panic!(
                            "proptest case {}/{} for `{}` failed: {}\n  inputs: {}",
                            __accepted + 1,
                            __config.cases,
                            stringify!($name),
                            __err,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the generated
/// inputs on failure instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Rejects the current case without failing it; the runner regenerates a
/// replacement input, and aborts if rejections swamp accepted cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __lhs,
            __rhs,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($lhs),
            stringify!($rhs),
            __lhs,
            __rhs,
            ::std::format!($($fmt)*),
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs != *__rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __lhs,
        );
    }};
}
