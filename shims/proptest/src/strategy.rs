//! The `Strategy` trait and primitive strategies (ranges, tuples, `Just`,
//! `any`), plus the `prop_map`/`prop_flat_map`/`prop_filter` adapters.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `new_value`
/// draws a single concrete value.
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Rejection-samples until `f` accepts, up to a bounded retry budget.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            reason,
            f,
        }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain generation, mirroring `proptest::arbitrary::Arbitrary` for
/// the primitives the workspace asks for via `any::<T>()`.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let unit: f64 = rng.gen();
        let exp = rng.gen_range(-60i32..60);
        (unit - 0.5) * 2.0 * (exp as f64).exp2()
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}
