//! Offline API-compatible shim for the `rand` crate (0.8 surface).
//!
//! Implements the subset of `rand` the workspace uses: the `RngCore` /
//! `SeedableRng` / `Rng` traits, `rngs::StdRng` (a ChaCha12 generator, as in
//! real `rand 0.8`), and `seq::SliceRandom` (`choose`, `shuffle`). Sampling
//! follows the same constructions as upstream (53-bit mantissa floats,
//! widening-multiply integer ranges), so statistical quality matches even
//! though exact output streams are not guaranteed to be bit-identical.

pub mod chacha;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64, like `rand_core`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only for seed expansion.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution: unit interval for floats, full range for integers).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64,
                   isize => next_u64);

/// Ranges a uniform value can be drawn from (`Range` / `RangeInclusive`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening multiply maps next_u64 onto [0, span) with
                // negligible bias for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as u64).wrapping_add(hi)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((start as u64).wrapping_add(hi)) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let unit = <$t as StandardSample>::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn fill<T: FillableSlice + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slices `Rng::fill` can populate.
pub trait FillableSlice {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl FillableSlice for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl FillableSlice for [f64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self {
            *v = f64::sample(rng);
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};
    use crate::chacha::ChaChaCore;

    /// The standard generator: ChaCha with 12 rounds, as in `rand 0.8`.
    #[derive(Debug, Clone)]
    pub struct StdRng(ChaChaCore<12>);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(ChaChaCore::new(seed, 0))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order operations on slices (`choose`, `shuffle`).
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements (drawn uniformly from the
        /// whole slice); returns `(shuffled_prefix, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, high-to-low, as in upstream rand.
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            // Forward Fisher-Yates: position i receives a uniform draw from
            // the not-yet-placed suffix, so the prefix is a uniform sample.
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5i64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*items.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(([] as [usize; 0]).choose(&mut rng).is_none());
    }
}
