//! A real ChaCha block-cipher RNG core, generic over the round count.
//!
//! Shared by this shim's `StdRng` (12 rounds, as in `rand 0.8`) and by the
//! `rand_chacha` shim's `ChaCha8Rng` (8 rounds). Layout follows RFC 8439:
//! four constant words, an eight-word key, a 64-bit block counter and a
//! 64-bit stream id (nonce).

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha keystream generator with `R` rounds (`R` must be even).
#[derive(Debug, Clone)]
pub struct ChaChaCore<const R: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "empty, refill".
    index: usize,
}

impl<const R: usize> ChaChaCore<R> {
    pub fn new(seed: [u8; 32], stream: u64) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaCore {
            key,
            counter: 0,
            stream,
            buffer: [0; 16],
            index: 16,
        }
    }

    /// Switches to an independent keystream; the block counter is kept.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.index = 16;
        }
    }

    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..R / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, adapted: ChaCha20 block function with
    /// the RFC's key, counter = 1 and the RFC's 96-bit nonce is not
    /// representable here (we use a 64-bit stream), so instead check the
    /// structural properties: determinism, stream separation, and that the
    /// all-zero ChaCha20 block matches the well-known keystream head.
    #[test]
    fn zero_key_chacha20_matches_reference_keystream() {
        // First words of the ChaCha20 keystream for all-zero key/nonce.
        // Reference: RFC 8439 appendix A.1 test vector #1.
        let mut core: ChaChaCore<20> = ChaChaCore::new([0u8; 32], 0);
        let expected_head = [0xade0b876u32, 0x903df1a0, 0xe56a5d40, 0x28bd8653];
        for &e in &expected_head {
            assert_eq!(core.next_u32(), e);
        }
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a: ChaChaCore<8> = ChaChaCore::new([7u8; 32], 0);
        let mut b: ChaChaCore<8> = ChaChaCore::new([7u8; 32], 0);
        let mut c: ChaChaCore<8> = ChaChaCore::new([7u8; 32], 1);
        for _ in 0..64 {
            let (x, y, z) = (a.next_u32(), b.next_u32(), c.next_u32());
            assert_eq!(x, y);
            // A single collision is astronomically unlikely across 64 draws,
            // but tolerate it by only requiring the whole streams to differ.
            let _ = z;
        }
        let xs: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let zs: Vec<u32> = (0..16).map(|_| c.next_u32()).collect();
        assert_ne!(xs, zs);
    }
}
