//! Offline API-compatible shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! does not yet route any persistence through serde (the CS model's v1
//! on-disk format is hand-rolled text; see `cwsmooth-core/src/model.rs`).
//! The traits are therefore markers: deriving them compiles and records
//! intent, and swapping in real serde later requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
