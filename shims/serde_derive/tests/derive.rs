//! The derives must compile for the shapes the workspace uses (plain
//! structs and enums) and for generic types (bounds, lifetimes, const
//! parameters, defaults), emitting well-formed marker impls.

#![allow(dead_code)] // the types exist only to exercise the derives

use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Plain {
    x: f64,
    ys: Vec<u32>,
}

#[derive(Serialize, Deserialize)]
pub(crate) enum Kind {
    A,
    B(u32),
    C { name: String },
}

#[derive(Serialize, Deserialize)]
struct Generic<T: Clone, U> {
    item: T,
    other: Option<U>,
}

#[derive(Serialize, Deserialize)]
struct WithLifetimeAndConst<'a, T, const N: usize = 4> {
    slice: &'a [T; N],
}

#[derive(Serialize, Deserialize)]
struct WithDefault<T = f64> {
    value: T,
}

fn is_serialize<T: Serialize>() {}
fn is_deserialize<T: for<'de> Deserialize<'de>>() {}

#[test]
fn derived_impls_satisfy_the_marker_traits() {
    is_serialize::<Plain>();
    is_deserialize::<Plain>();
    is_serialize::<Kind>();
    is_deserialize::<Kind>();
    is_serialize::<Generic<u8, String>>();
    is_deserialize::<Generic<u8, String>>();
    is_serialize::<WithLifetimeAndConst<'static, bool, 2>>();
    is_serialize::<WithDefault>();
    is_deserialize::<WithDefault<f32>>();
}
