//! No-op `Serialize`/`Deserialize` derives for the serde shim.
//!
//! Emits marker-trait impls (`impl ::serde::Serialize for T {}`) for structs
//! and enums, including generic ones: the full parameter list (with bounds)
//! goes into the impl generics, while only the parameter names are
//! substituted into the self-type. Written against `proc_macro` directly —
//! `syn`/`quote` are not available offline, and recognising the type header
//! is all these derives need.

use proc_macro::{TokenStream, TokenTree};

/// A parsed `struct`/`enum` header: the type name, the raw generic
/// parameter list (without angle brackets), and the bare parameter names
/// usable in type-argument position (`'a, T, N` for `<'a, T: Clone, const
/// N: usize>`).
struct TypeHeader {
    name: String,
    impl_generics: Option<String>,
    type_args: Option<String>,
}

fn parse_type_header(input: TokenStream) -> TypeHeader {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifiers until the
    // `struct`/`enum` keyword.
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => continue,
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };

    // Optional generics: everything between the outermost < >, split into
    // parameters at depth-0 commas.
    let mut impl_generics = None;
    let mut type_args = None;
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => {
                            params.push(Vec::new());
                            continue;
                        }
                        _ => {}
                    }
                }
                params.last_mut().unwrap().push(tt);
            }
            params.retain(|p| !p.is_empty());
            let names: Vec<String> = params.iter().map(|p| param_name(p)).collect();
            let decls: Vec<String> = params.iter().map(|p| param_decl(p)).collect();
            impl_generics = Some(decls.join(", "));
            type_args = Some(names.join(", "));
        }
    }
    TypeHeader {
        name,
        impl_generics,
        type_args,
    }
}

/// Re-serialises one generic parameter for impl-generics position, keeping
/// bounds but dropping any default (`T: Clone = Concrete` -> `T : Clone`,
/// since defaults are not legal on impls). Associated-type bindings inside
/// bounds (`Iterator<Item = u32>`) survive: their `=` sits inside a nested
/// `<..>`, and only top-level defaults are stripped.
fn param_decl(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                '=' if depth == 0 => break,
                // A lifetime is Punct('\'') + Ident; keep them glued so the
                // output lexes as `'a`, not `' a`.
                '\'' => {
                    out.push('\'');
                    continue;
                }
                _ => {}
            }
        }
        out.push_str(&tt.to_string());
        out.push(' ');
    }
    out.trim_end().to_string()
}

/// Extracts the bare name of one generic parameter: `'a` for lifetimes,
/// `N` for `const N: usize`, `T` for `T`, `T: Clone` or `T = Default`.
fn param_name(tokens: &[TokenTree]) -> String {
    match &tokens[0] {
        TokenTree::Punct(p) if p.as_char() == '\'' => match tokens.get(1) {
            Some(TokenTree::Ident(id)) => format!("'{id}"),
            other => panic!("serde shim derive: malformed lifetime parameter: {other:?}"),
        },
        TokenTree::Ident(id) if id.to_string() == "const" => match tokens.get(1) {
            Some(TokenTree::Ident(name)) => name.to_string(),
            other => panic!("serde shim derive: malformed const parameter: {other:?}"),
        },
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: malformed generic parameter: {other:?}"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_type_header(input);
    let name = &header.name;
    let out = match (&header.impl_generics, &header.type_args) {
        (Some(g), Some(a)) => format!("impl<{g}> ::serde::Serialize for {name}<{a}> {{}}"),
        _ => format!("impl ::serde::Serialize for {name} {{}}"),
    };
    out.parse()
        .expect("serde shim derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_type_header(input);
    let name = &header.name;
    let out = match (&header.impl_generics, &header.type_args) {
        (Some(g), Some(a)) => {
            format!("impl<'de, {g}> ::serde::Deserialize<'de> for {name}<{a}> {{}}")
        }
        _ => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}"),
    };
    out.parse()
        .expect("serde shim derive: generated impl failed to parse")
}
