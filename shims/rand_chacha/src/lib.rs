//! Offline API-compatible shim for the `rand_chacha` crate (0.3 surface).
//!
//! Provides `ChaCha8Rng`/`ChaCha12Rng`/`ChaCha20Rng` on top of the real
//! ChaCha block function implemented in the `rand` shim, including the
//! multi-stream API (`set_stream`/`get_stream`) the simulator uses to give
//! each component a decorrelated generator.

use rand::chacha::ChaChaCore;
use rand::{RngCore, SeedableRng};

/// Re-export mirroring upstream, where `rand_chacha` depends on `rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

macro_rules! chacha_rng {
    ($(#[$doc:meta] $name:ident, $rounds:literal;)*) => {$(
        #[$doc]
        #[derive(Debug, Clone)]
        pub struct $name(ChaChaCore<$rounds>);

        impl $name {
            /// Selects an independent keystream for the same seed.
            pub fn set_stream(&mut self, stream: u64) {
                self.0.set_stream(stream);
            }

            pub fn get_stream(&self) -> u64 {
                self.0.get_stream()
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                $name(ChaChaCore::new(seed, 0))
            }
        }
    )*};
}

chacha_rng! {
    /// ChaCha with 8 rounds: the fast, statistically strong simulator RNG.
    ChaCha8Rng, 8;
    /// ChaCha with 12 rounds.
    ChaCha12Rng, 12;
    /// ChaCha with 20 rounds.
    ChaCha20Rng, 20;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn set_stream_decorrelates() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        b.set_stream(9);
        assert_eq!(b.get_stream(), 9);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: f64 = rng.gen();
        assert!((0.0..1.0).contains(&v));
        let n = rng.gen_range(0usize..10);
        assert!(n < 10);
    }
}
