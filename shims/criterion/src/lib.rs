//! Offline API-compatible shim for the `criterion` crate.
//!
//! Supports the benchmark surface the workspace uses — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a lightweight
//! measurement loop: each benchmark is warmed up once, then timed for a
//! small fixed budget and reported as mean wall-clock time per iteration
//! on stdout. There is no statistical analysis, HTML report, or baseline
//! comparison; the output is one parseable line per benchmark, which is
//! enough to seed the BENCH_*.json perf trajectory.
//!
//! When the binary is invoked by `cargo test` (which passes `--test` to
//! `harness = false` targets), benchmarks are skipped so the tier-1 test
//! run stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark (after one warm-up call).
const TIME_BUDGET: Duration = Duration::from_millis(300);
/// Default cap on timed iterations per benchmark (overridable per group
/// via `sample_size`).
const DEFAULT_MAX_ITERS: u64 = 1000;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), DEFAULT_MAX_ITERS, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the timed iterations for this group's benchmarks (the time
    /// budget may stop measurement earlier, as with real criterion's
    /// measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size as u64, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size as u64, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
    max_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let started = Instant::now();
        // Time whole batches and divide, rather than bracketing every call
        // with its own clock reads: for nanosecond-scale bodies a
        // per-iteration Instant pair is mostly timer overhead. Batches
        // double so slow benchmarks still stop near the time budget.
        let mut batch = 1u64;
        while self.iters < self.max_iters && started.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.total += t0.elapsed();
            self.iters += batch;
            batch = batch
                .saturating_mul(2)
                .min(self.max_iters - self.iters)
                .max(1);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    max_iters: u64,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: 0,
        total: Duration::ZERO,
        max_iters: max_iters.max(1),
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    if bencher.iters == 0 {
        println!("bench {label}: no iterations recorded");
    } else {
        let mean = bencher.total / bencher.iters as u32;
        println!("bench {label}: {mean:?}/iter over {} iters", bencher.iters);
    }
}

/// True when the binary was launched by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` to no-harness targets).
pub fn invoked_in_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_in_test_mode() {
                println!("criterion shim: skipping benchmarks in test mode");
                return;
            }
            $($group();)+
        }
    };
}
