//! Ordered fork-join parallel iterators.

use std::panic::resume_unwind;

/// An eagerly materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Lazy `map` adapter; the closure runs on worker threads at `collect` time.
pub struct Map<P, F> {
    base: P,
    f: F,
}

/// The executable side of the parallel-iterator API.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Executes the chain, preserving input order.
    fn run(self) -> Vec<Self::Item>;

    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.map(f).run();
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par(self.run())
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_apply(self.base.run(), &self.f)
    }
}

/// Conversion of any iterable into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing conversion (`par_iter`), yielding `&T` items.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Mutably borrowing conversion (`par_iter_mut`), yielding `&mut T` items.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Sinks `collect` can target.
pub trait FromParallelIterator<T>: Sized {
    fn from_par(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par(items: Vec<T>) -> Self {
        items
    }
}

/// Short-circuiting collect: the first error (in input order) wins, as with
/// sequential `Iterator::collect::<Result<_, _>>()`.
impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Maps `f` over `items` on scoped threads, one contiguous chunk per worker,
/// and reassembles results in input order. Worker panics are propagated.
fn parallel_apply<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = crate::current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into `workers` contiguous chunks of near-equal length.
    let base = n / workers;
    let extra = n % workers;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        chunks.push(it.by_ref().take(len).collect());
    }

    std::thread::scope(|scope| {
        let mut drain = chunks.into_iter();
        // Run the first chunk on the calling thread; spawn the rest.
        let first = drain.next().unwrap_or_default();
        let handles: Vec<_> = drain
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out: Vec<U> = first.into_iter().map(f).collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn into_par_iter_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let out: Vec<f64> = data.par_iter().map(|x| x + 1.0).collect();
        assert_eq!(out[0], 1.0);
        assert_eq!(out[256], 257.0);
        assert_eq!(data.len(), 257); // still usable after the borrow
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut data: Vec<u64> = (0..513).collect();
        data.par_iter_mut().for_each(|x| *x *= 3);
        assert!(data.iter().enumerate().all(|(i, &x)| x == 3 * i as u64));
        // and through a slice, with a collected result
        let flags: Vec<bool> = data[..4].par_iter_mut().map(|x| *x % 2 == 0).collect();
        assert_eq!(flags, vec![true, false, true, false]);
    }

    #[test]
    fn collect_into_result_short_circuits_in_order() {
        let ok: Result<Vec<usize>, String> = (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());

        let err: Result<Vec<usize>, usize> = (0..10usize)
            .into_par_iter()
            .map(|i| if i >= 4 { Err(i) } else { Ok(i) })
            .collect();
        assert_eq!(err.unwrap_err(), 4);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|i| i * 10)
            .map(|i| i.to_string())
            .collect();
        assert_eq!(out, ["10", "20", "30"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
