//! Offline API-compatible shim for the `rayon` crate.
//!
//! Implements the slice of the parallel-iterator API the workspace uses —
//! `into_par_iter()` / `par_iter()` / `par_iter_mut()` followed by
//! `map(..).collect()` or `for_each(..)` — with
//! real data parallelism: items are split into contiguous chunks and mapped
//! on scoped `std::thread`s, one per available core, preserving order.
//! Unlike real rayon there is no work-stealing pool; for the workspace's
//! coarse, uniform tasks (correlation rows, forest trees, dataset windows)
//! chunked fork-join parallelism is an adequate stand-in.

pub mod iter;

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Upper bound on worker threads, mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
