//! End-to-end fleet streaming through the facade crate: simulator frames →
//! sharded engine → signature events, checked against the batch pipeline.

use cwsmooth::core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth::core::fleet::{FleetEngine, FleetEvent};
use cwsmooth::data::{WindowIter, WindowSpec};
use cwsmooth::linalg::Matrix;
use cwsmooth::sim::fleet::{FleetScenario, FleetSimConfig, CONSTANT_SENSOR};

const NODES: usize = 48;
const TRAIN: usize = 128;
const FRAMES: usize = 200;

fn setup(gap_per_mille: u32) -> (FleetScenario, Vec<CsMethod>, WindowSpec) {
    let scenario = FleetScenario::new(FleetSimConfig::new(9, NODES).with_gaps(gap_per_mille));
    let methods = (0..NODES)
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            let model = CsTrainer::default().train(&history).unwrap();
            CsMethod::new(model, 4).unwrap()
        })
        .collect();
    (scenario, methods, WindowSpec::new(20, 5).unwrap())
}

/// Batch-pipeline signatures over a contiguous live matrix.
fn batch(cs: &CsMethod, s: &Matrix, spec: WindowSpec) -> Vec<CsSignature> {
    WindowIter::new(spec, s.cols())
        .map(|w| {
            let sub = w.extract(s).unwrap();
            let hist = w.history(s);
            cs.signature(&sub, hist.as_deref()).unwrap()
        })
        .collect()
}

/// The live matrix a node produced over frames `TRAIN..TRAIN+FRAMES`,
/// restricted to one contiguous gap-free run `[from, to)`.
fn live_chunk(scenario: &FleetScenario, node: usize, from: usize, to: usize) -> Matrix {
    let mut m = Matrix::zeros(scenario.n_sensors(), to - from);
    let mut buf = vec![0.0; scenario.n_sensors()];
    for (c, f) in (from..to).enumerate() {
        scenario.reading_into(node, TRAIN + f, &mut buf);
        for (r, &v) in buf.iter().enumerate() {
            m.set(r, c, v);
        }
    }
    m
}

fn stream_fleet(
    scenario: &FleetScenario,
    methods: Vec<CsMethod>,
    spec: WindowSpec,
) -> (FleetEngine, Vec<FleetEvent>) {
    let mut engine = FleetEngine::new(methods, spec).unwrap();
    let mut frame = engine.frame();
    let mut events = Vec::new();
    let mut all = Vec::new();
    for f in 0..FRAMES {
        let t = TRAIN + f;
        frame.clear();
        for node in 0..NODES {
            if !scenario.has_gap(node, t) {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
        }
        engine.ingest_frame_into(&frame, &mut events).unwrap();
        all.append(&mut events);
    }
    (engine, all)
}

#[test]
fn gap_free_fleet_matches_batch_pipeline_per_node() {
    let (scenario, methods, spec) = setup(0);
    let (engine, events) = stream_fleet(&scenario, methods.clone(), spec);

    assert_eq!(engine.stats().frames, FRAMES as u64);
    assert_eq!(engine.stats().gaps, 0);
    assert_eq!(engine.stats().events, events.len() as u64);
    let expect_per_node = spec.count(FRAMES);
    assert_eq!(events.len(), NODES * expect_per_node);

    for node in [0usize, 17, NODES - 1] {
        let expect = batch(
            &methods[node],
            &live_chunk(&scenario, node, 0, FRAMES),
            spec,
        );
        let got: Vec<&CsSignature> = events
            .iter()
            .filter(|e| e.node == node)
            .map(|e| &e.signature)
            .collect();
        assert_eq!(got.len(), expect.len());
        for (k, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(*g, e, "node {node} window {k}");
        }
    }
    // Every signature is finite even though one trained sensor (the PSU
    // rail) has collapsed bounds.
    assert!(events
        .iter()
        .flat_map(|e| e.signature.re.iter().chain(&e.signature.im))
        .all(|v| v.is_finite()));
}

#[test]
fn gappy_fleet_recovers_and_matches_chunked_batch() {
    let (scenario, methods, spec) = setup(20); // 2% node-frames dropped
    let (engine, events) = stream_fleet(&scenario, methods.clone(), spec);

    let total_gaps: usize = (0..NODES)
        .flat_map(|node| (0..FRAMES).map(move |f| (node, f)))
        .filter(|&(node, f)| scenario.has_gap(node, TRAIN + f))
        .count();
    assert!(total_gaps > 0, "scenario should drop some node-frames");
    assert_eq!(engine.stats().gaps, total_gaps as u64);

    // Per node: emissions equal the batch pipeline over each contiguous
    // present-run, and window indexes stay consecutive across gaps.
    for (node, method) in methods.iter().enumerate() {
        let mut expect = Vec::new();
        let mut run_start = 0usize;
        for f in 0..=FRAMES {
            if f == FRAMES || scenario.has_gap(node, TRAIN + f) {
                if f > run_start {
                    expect.extend(batch(
                        method,
                        &live_chunk(&scenario, node, run_start, f),
                        spec,
                    ));
                }
                run_start = f + 1;
            }
        }
        let node_events: Vec<&FleetEvent> = events.iter().filter(|e| e.node == node).collect();
        assert_eq!(node_events.len(), expect.len(), "node {node}");
        for (k, (e, want)) in node_events.iter().zip(&expect).enumerate() {
            assert_eq!(e.window_index, k, "node {node}");
            assert_eq!(&e.signature, want, "node {node} window {k}");
        }
    }
}

#[test]
fn constant_sensor_block_reads_mid_scale() {
    // The PSU rail is constant in training, so its trained bounds collapse
    // (hi == lo). With CS-All (one block per sensor) its block must sit
    // *exactly* at the 0.5 "no information" level with zero derivative —
    // the regression a missing zero-range guard would turn into NaN.
    let scenario = FleetScenario::new(FleetSimConfig::new(9, 8));
    let methods: Vec<CsMethod> = (0..scenario.nodes())
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::all_blocks(CsTrainer::default().train(&history).unwrap()).unwrap()
        })
        .collect();
    let spec = WindowSpec::new(20, 5).unwrap();
    let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
    let mut frame = engine.frame();
    let mut events = Vec::new();
    let mut all = Vec::new();
    for f in 0..60 {
        frame.clear();
        for node in 0..scenario.nodes() {
            scenario.reading_into(node, TRAIN + f, frame.slot_mut(node).unwrap());
        }
        engine.ingest_frame_into(&frame, &mut events).unwrap();
        all.append(&mut events);
    }
    assert!(!all.is_empty());
    for e in &all {
        let cs = &methods[e.node];
        let block = cs
            .model()
            .perm
            .iter()
            .position(|&p| p == CONSTANT_SENSOR)
            .unwrap();
        assert_eq!(e.signature.re[block], 0.5, "node {}", e.node);
        assert_eq!(e.signature.im[block], 0.0, "node {}", e.node);
    }
}
