//! Pins the acceptance criterion of the streaming ODA pipeline: a full
//! `Tee(SignatureStore, StreamingDetector, DriftMonitor)` delivery tree
//! fed by `FleetEngine::ingest_frame_sink` allocates **zero** heap bytes
//! in steady state — frame ingest, signature emission, persistence
//! (including block flushes), per-event forest inference and online
//! drift histograms all run out of warmed, reused buffers.
//!
//! Measured with a counting global allocator on a single-shard engine
//! (the multi-shard rayon fan-out allocates in the worker pool by
//! design; the per-shard ingest it runs is exactly the code measured
//! here). This file holds exactly one `#[test]` so no concurrent test
//! can allocate while the counter window is open.

use cwsmooth::analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::fleet::FleetEngine;
use cwsmooth::core::pipeline::Tee;
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth::ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted — the libtest
    /// harness thread allocates sporadically and must not trip the pin.
    static COUNT_ME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(std::cell::Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const NODES: usize = 8;
const SENSORS: usize = 5;
const L: usize = 3;

fn fill(frame: &mut cwsmooth::core::fleet::FleetFrame, t: usize) {
    for node in 0..NODES {
        let slot = frame.slot_mut(node).unwrap();
        for (r, v) in slot.iter_mut().enumerate() {
            *v = ((t as f64 / (2.0 + r as f64) + node as f64 * 0.37).sin() * (r + 1) as f64)
                + 0.05 * node as f64;
        }
    }
}

#[test]
fn steady_state_tee_pipeline_performs_no_heap_allocation() {
    COUNT_ME.with(|c| c.set(true));
    // ---- Setup (allocates freely). ----
    let dir = std::env::temp_dir().join(format!("cwsmooth-pipe-alloc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = WindowSpec::new(10, 5).unwrap();

    // One trained CS model per node, on histories matching the live data.
    let methods: Vec<CsMethod> = (0..NODES)
        .map(|node| {
            let s = Matrix::from_fn(SENSORS, 150, |r, c| {
                ((c as f64 / (2.0 + r as f64) + node as f64 * 0.37).sin() * (r + 1) as f64)
                    + 0.05 * node as f64
            });
            CsMethod::new(CsTrainer::default().train(&s).unwrap(), L).unwrap()
        })
        .collect();
    let mut engine = FleetEngine::with_shards(methods, spec, 1).unwrap();
    let mut frame = engine.frame();

    // Store: quantized encoding (the richer encode path), small blocks so
    // flushes land inside the measurement window, no segment rolls.
    let store_cfg = StoreConfig::default()
        .with_encoding(Encoding::Quant8)
        .with_block_events(16)
        .with_segment_events(1 << 40);
    let mut store = SignatureStore::open(&dir, spec, L, store_cfg).unwrap();

    // Detector: a small fitted forest over 2L-dimensional features.
    let x = Matrix::from_fn(60, 2 * L, |r, c| {
        ((r * 17 + c * 5) % 100) as f64 / 100.0 + (r % 2) as f64 * 0.3
    });
    let y: Vec<usize> = (0..60).map(|r| r % 2).collect();
    let mut forest = RandomForestClassifier::with_config(small_forest_config(3, true));
    forest.fit(&x, &y).unwrap();
    let mut detector = StreamingDetector::new(forest, DetectorConfig::default()).unwrap();
    detector.reserve_nodes(NODES);

    // Drift monitor: tiny tumbling windows so every node calibrates and
    // compares many times during warm-up and measurement.
    let mut drift = DriftMonitor::new(DriftConfig {
        bins: 6,
        window_events: 4,
        threshold: 0.9,
        ..DriftConfig::default()
    });

    // ---- Warm-up: run until every buffer class has been exercised —
    // shard event pools, store staging + several block flushes, detector
    // vote/feature buffers, and at least one completed drift comparison
    // per node (reference + counts allocated). ----
    let mut t = 0usize;
    {
        let mut tee = Tee((&mut store, &mut detector, &mut drift));
        loop {
            fill(&mut frame, t);
            engine.ingest_frame_sink(&frame, &mut tee).unwrap();
            t += 1;
            if tee.0 .0.stats().blocks >= 3 * NODES as u64
                && tee.0 .2.comparisons() >= 2 * NODES as u64
            {
                break;
            }
        }
    }
    assert!((0..NODES).all(|n| drift.calibrated(n)));

    // ---- Measurement window: hundreds of frames with signature
    // emissions, store block flushes, forest inference and drift
    // comparisons — all heap-silent. ----
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    let events_before = detector.events();
    let blocks_before = store.stats().blocks;
    let comparisons_before = drift.comparisons();
    {
        let mut tee = Tee((&mut store, &mut detector, &mut drift));
        for _ in 0..600 {
            fill(&mut frame, t);
            engine.ingest_frame_sink(&frame, &mut tee).unwrap();
            t += 1;
        }
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;

    // The window did real work...
    let events = detector.events() - events_before;
    assert!(
        events > 500,
        "expected many classified events, got {events}"
    );
    assert!(
        store.stats().blocks - blocks_before > 20,
        "expected many block flushes"
    );
    assert!(
        drift.comparisons() - comparisons_before > 100,
        "expected many drift comparisons"
    );
    // ...without touching the allocator.
    assert_eq!(allocs, 0, "steady-state pipeline allocated {allocs} times");
    assert_eq!(deallocs, 0, "steady-state pipeline freed {deallocs} times");

    // Sanity: the three sinks agree on the event count.
    assert_eq!(engine.stats().events, detector.events());
    assert_eq!(engine.stats().events, store.events());
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
