//! End-to-end parity of the threaded delivery tree: the same frame
//! stream pushed through a synchronous
//! `Tee(SignatureStore, StreamingDetector, DriftMonitor)` and through
//! its off-thread twin `Tee(Queue(store), Queue(detector),
//! Queue(drift))` must leave **identical** sink state — the stores
//! replay bit-identical events, the detectors agree on every verdict
//! and counter, the drift monitors on every comparison. Per-branch FIFO
//! queues preserve per-node event order, so the consumer-side sinks
//! cannot tell they ran on another thread.

use cwsmooth::analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::fleet::FleetEngine;
use cwsmooth::core::pipeline::Tee;
use cwsmooth::core::transport::{QueueConfig, QueuePolicy, QueueSink};
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth::ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::path::Path;

const NODES: usize = 10;
const SENSORS: usize = 5;
const L: usize = 3;
const FRAMES: usize = 400;

fn methods() -> Vec<CsMethod> {
    (0..NODES)
        .map(|node| {
            let s = Matrix::from_fn(SENSORS, 150, |r, c| {
                ((c as f64 / (2.0 + r as f64) + node as f64 * 0.37).sin() * (r + 1) as f64)
                    + 0.05 * node as f64
            });
            CsMethod::new(CsTrainer::default().train(&s).unwrap(), L).unwrap()
        })
        .collect()
}

fn engine() -> FleetEngine {
    FleetEngine::with_shards(methods(), WindowSpec::new(10, 5).unwrap(), 2).unwrap()
}

fn fill(frame: &mut cwsmooth::core::fleet::FleetFrame, t: usize) {
    frame.clear();
    for node in 0..NODES {
        // Deterministic telemetry gaps exercise per-node window_index
        // continuity through the queues.
        if (node + t).is_multiple_of(41) {
            continue;
        }
        let slot = frame.slot_mut(node).unwrap();
        for (r, v) in slot.iter_mut().enumerate() {
            *v = ((t as f64 / (2.0 + r as f64) + node as f64 * 0.37).sin() * (r + 1) as f64)
                + 0.05 * node as f64;
        }
    }
}

fn store_at(dir: &Path) -> SignatureStore {
    let cfg = StoreConfig::default()
        .with_encoding(Encoding::Quant8)
        .with_block_events(16)
        .with_segment_events(1 << 40);
    SignatureStore::open(dir, WindowSpec::new(10, 5).unwrap(), L, cfg).unwrap()
}

fn detector() -> StreamingDetector {
    let x = Matrix::from_fn(60, 2 * L, |r, c| {
        ((r * 17 + c * 5) % 100) as f64 / 100.0 + (r % 2) as f64 * 0.3
    });
    let y: Vec<usize> = (0..60).map(|r| r % 2).collect();
    let mut forest = RandomForestClassifier::with_config(small_forest_config(3, true));
    forest.fit(&x, &y).unwrap();
    let mut det = StreamingDetector::new(forest, DetectorConfig::default()).unwrap();
    det.reserve_nodes(NODES);
    det
}

fn drift() -> DriftMonitor {
    DriftMonitor::new(DriftConfig {
        bins: 6,
        window_events: 4,
        threshold: 0.9,
        ..DriftConfig::default()
    })
}

fn dump(store: &SignatureStore) -> Vec<(u32, u64, Vec<f64>)> {
    let mut out = Vec::new();
    store
        .for_each(|n, w, v| out.push((n, w, v.to_vec())))
        .unwrap();
    out.sort_by_key(|a| (a.0, a.1));
    out
}

#[test]
fn threaded_and_synchronous_trees_leave_identical_sink_state() {
    let base = std::env::temp_dir().join(format!("cwsmooth-threaded-pipe-{}", std::process::id()));
    let sync_dir = base.join("sync");
    let thr_dir = base.join("threaded");
    std::fs::remove_dir_all(&base).ok();

    // Synchronous reference run.
    let mut sync_engine = engine();
    let mut frame = sync_engine.frame();
    let mut sync_store = store_at(&sync_dir);
    let mut sync_det = detector();
    let mut sync_drift = drift();
    {
        let mut tree = Tee((&mut sync_store, &mut sync_det, &mut sync_drift));
        for t in 0..FRAMES {
            fill(&mut frame, t);
            sync_engine.ingest_frame_sink(&frame, &mut tree).unwrap();
        }
    }

    // Threaded run: the sinks are *owned* by their consumer threads (the
    // Send audit in each crate is what makes this line compile) and
    // recovered via join.
    let mut thr_engine = engine();
    let small = QueueConfig {
        capacity: 32,
        policy: QueuePolicy::Block,
    };
    let mut tree = Tee((
        QueueSink::with_config(store_at(&thr_dir), small),
        QueueSink::spawn(detector()),
        QueueSink::spawn(drift()),
    ));
    for t in 0..FRAMES {
        fill(&mut frame, t);
        thr_engine.ingest_frame_sink(&frame, &mut tree).unwrap();
    }
    let Tee((qs, qd, qm)) = tree;
    let (thr_store, r1) = qs.join();
    let (thr_det, r2) = qd.join();
    let (thr_drift, r3) = qm.join();
    r1.unwrap();
    r2.unwrap();
    r3.unwrap();

    // Engines agree.
    assert_eq!(sync_engine.stats(), thr_engine.stats());

    // Stores replay bit-identical events (same quantized values, same
    // per-node windows).
    let sync_events = dump(&sync_store);
    let thr_events = dump(&thr_store);
    assert!(sync_events.len() > 500, "premise: a rich event stream");
    assert_eq!(sync_events, thr_events);
    assert_eq!(sync_store.events(), thr_store.events());
    assert_eq!(sync_store.stats().blocks, thr_store.stats().blocks);

    // Detectors agree on every counter and per-node verdict.
    assert_eq!(sync_det.events(), thr_det.events());
    assert_eq!(sync_det.alarms(), thr_det.alarms());
    assert_eq!(sync_det.class_counts(), thr_det.class_counts());
    assert_eq!(sync_det.mean_margin(), thr_det.mean_margin());
    for node in 0..NODES {
        assert_eq!(sync_det.verdict(node), thr_det.verdict(node), "node {node}");
    }

    // Drift monitors agree on every comparison.
    assert_eq!(sync_drift.events(), thr_drift.events());
    assert_eq!(sync_drift.comparisons(), thr_drift.comparisons());
    assert_eq!(sync_drift.alarms(), thr_drift.alarms());
    assert_eq!(sync_drift.max_jsd(), thr_drift.max_jsd());
    for node in 0..NODES {
        assert_eq!(sync_drift.last_jsd(node), thr_drift.last_jsd(node));
        assert_eq!(sync_drift.peak_jsd(node), thr_drift.peak_jsd(node));
    }

    drop(sync_store);
    drop(thr_store);
    std::fs::remove_dir_all(&base).ok();
}
