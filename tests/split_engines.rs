//! Quality parity between the random-forest split engines on the
//! simulated fault dataset: the opt-in ≤256-bin histogram engine must
//! stay within one percentage point of exact-mode k-fold accuracy, at
//! both its 64-bin default and the finest 256-bin setting.

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::data::WindowSpec;
use cwsmooth::ml::cv::cross_validate_forest_classifier;
use cwsmooth::ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth::ml::SplitAlgo;
use cwsmooth::sim::segments::{fault_segment, SimConfig};

#[test]
fn histogram_kfold_accuracy_within_one_point_of_exact() {
    // CS-10 features over the fault segment, as in the Fig. 3 protocol
    // (scaled down for test time).
    let seg = fault_segment(SimConfig::new(42, 2200));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 10).unwrap();
    let ds = build_dataset(
        &seg,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(60, 10).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    let labels = ds.classes.as_ref().unwrap();

    let cv = |algo: SplitAlgo| {
        cross_validate_forest_classifier(&ds.features, labels, 5, 7, |s| {
            RandomForestClassifier::with_config(small_forest_config(s, true).with_split_algo(algo))
        })
        .unwrap()
    };
    let exact = cv(SplitAlgo::Exact);
    assert!(
        exact.mean_accuracy() > 0.85,
        "exact-mode accuracy degenerate: {}",
        exact.mean_accuracy()
    );
    for algo in [
        SplitAlgo::histogram(),
        SplitAlgo::Histogram { max_bins: 256 },
    ] {
        let hist = cv(algo);
        let gap = (exact.mean_accuracy() - hist.mean_accuracy()).abs();
        assert!(
            gap <= 0.01,
            "{algo:?} accuracy {:.4} vs exact {:.4}: gap {:.4} > 1pp",
            hist.mean_accuracy(),
            exact.mean_accuracy(),
            gap
        );
    }
}
