//! Failure-injection integration tests: hostile inputs must produce
//! errors or defined behaviour, never panics or NaN propagation.

use cwsmooth::core::baselines::TuncerMethod;
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::core::method::SignatureMethod;
use cwsmooth::data::{LabelTrack, Segment, WindowSpec};
use cwsmooth::linalg::Matrix;

fn tiny_segment(rows: usize, cols: usize) -> Segment {
    let m = Matrix::from_fn(rows, cols, |r, c| (r * 7 + c) as f64);
    Segment::new(
        "tiny",
        m,
        (0..rows).map(|i| format!("s{i}")).collect(),
        (0..cols as u64).collect(),
        LabelTrack::Classes(vec![0; cols]),
    )
    .unwrap()
}

#[test]
fn nan_training_data_is_rejected_cleanly() {
    let mut m = Matrix::from_fn(4, 32, |r, c| (r + c) as f64);
    m.set(2, 5, f64::NAN);
    assert!(CsTrainer::default().train(&m).is_err());
    // ... and is recoverable after hygiene:
    m.replace_non_finite(0.0);
    assert!(CsTrainer::default().train(&m).is_ok());
}

#[test]
fn nan_inference_data_stays_contained() {
    let seg = tiny_segment(4, 64);
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 2).unwrap();
    let mut w = seg.matrix.col_window(0, 8).unwrap();
    w.set(1, 3, f64::INFINITY);
    // clamped normalization absorbs the infinity
    let sig = cs.signature(&w, None).unwrap();
    assert!(sig.re.iter().all(|v| v.is_finite()));
}

#[test]
fn more_blocks_than_sensors_is_defined() {
    let seg = tiny_segment(3, 64);
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 12).unwrap();
    let w = seg.matrix.col_window(0, 8).unwrap();
    let sig = cs.signature(&w, None).unwrap();
    assert_eq!(sig.blocks(), 12);
    assert!(sig.re.iter().all(|v| v.is_finite()));
}

#[test]
fn single_sample_window_is_defined() {
    let seg = tiny_segment(4, 64);
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 4).unwrap();
    let w = seg.matrix.col_window(10, 11).unwrap();
    let no_hist = cs.signature(&w, None).unwrap();
    // one sample, no history: zero derivative everywhere
    assert!(no_hist.im.iter().all(|&d| d.abs() < 1e-12));
    let hist = seg.matrix.col(9);
    let with_hist = cs.signature(&w, Some(&hist)).unwrap();
    assert!(with_hist.im.iter().all(|d| d.is_finite()));
}

#[test]
fn window_longer_than_data_errors() {
    let seg = tiny_segment(4, 16);
    let spec = WindowSpec::new(64, 4).unwrap();
    assert!(build_dataset(&seg, &TuncerMethod, DatasetOptions { spec, horizon: 0 }).is_err());
}

#[test]
fn sensor_count_mismatch_errors_not_panics() {
    let seg = tiny_segment(4, 64);
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 2).unwrap();
    let wrong = Matrix::zeros(5, 8);
    assert!(cs.signature(&wrong, None).is_err());
    assert!(cs.compute(&wrong, None).is_err());
    let short_hist = vec![0.0; 2];
    let w = seg.matrix.col_window(0, 8).unwrap();
    assert!(cs.signature(&w, Some(&short_hist)).is_err());
}

#[test]
fn constant_segment_trains_and_scores_degenerately() {
    // A completely dead node: constant sensors. Everything stays defined.
    let m = Matrix::filled(6, 128, 3.0);
    let seg = Segment::new(
        "dead",
        m,
        (0..6).map(|i| format!("s{i}")).collect(),
        (0..128).collect(),
        LabelTrack::Classes(vec![0; 128]),
    )
    .unwrap();
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 3).unwrap();
    let ds = build_dataset(
        &seg,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(16, 8).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    // "no information" signature: re = 0.5, im = 0
    for r in 0..ds.features.rows() {
        let row = ds.features.row(r);
        assert!(row[..3].iter().all(|&v| (v - 0.5).abs() < 1e-12));
        assert!(row[3..].iter().all(|&v| v.abs() < 1e-12));
    }
}
