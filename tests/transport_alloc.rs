//! Pins the acceptance criterion of the off-thread transport: with the
//! full delivery tree moved behind bounded queues —
//! `Tee(Queue(SignatureStore), Queue(StreamingDetector),
//! Queue(DriftMonitor))` — the **producer path** (frame ingest,
//! signature emission, envelope refill from the free queue, ring push)
//! allocates **zero** heap bytes in steady state. Consumer threads own
//! the sinks and their costs; the ingest thread only copies into
//! recycled `FleetEventBuf` envelopes.
//!
//! Measured with a counting global allocator filtered to the ingest
//! (test) thread — the consumer threads and the libtest harness thread
//! allocate on their own schedules and must not trip the pin. The
//! envelope pools are deterministically pre-warmed by pushing a burst
//! larger than the measurement window while the consumers are gated, so
//! the measurement never needs a fresh envelope no matter how the
//! threads interleave. This file holds exactly one `#[test]`.

use cwsmooth::analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::fleet::{FleetEngine, FleetEvent, FleetSink};
use cwsmooth::core::pipeline::Tee;
use cwsmooth::core::transport::{QueueConfig, QueuePolicy, QueueSink};
use cwsmooth::data::WindowSpec;
use cwsmooth::linalg::Matrix;
use cwsmooth::ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth::ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth::store::{Encoding, SignatureStore, StoreConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted — consumer
    /// threads and the libtest harness allocate on their own schedules.
    static COUNT_ME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(std::cell::Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const NODES: usize = 8;
const SENSORS: usize = 5;
const L: usize = 3;
/// Ring capacity per branch: larger than any burst this test pushes, so
/// the block policy never engages and the warm-up burst can mint more
/// envelopes than the measurement window consumes.
const CAPACITY: usize = 4096;

fn fill(frame: &mut cwsmooth::core::fleet::FleetFrame, t: usize) {
    for node in 0..NODES {
        let slot = frame.slot_mut(node).unwrap();
        for (r, v) in slot.iter_mut().enumerate() {
            *v = ((t as f64 / (2.0 + r as f64) + node as f64 * 0.37).sin() * (r + 1) as f64)
                + 0.05 * node as f64;
        }
    }
}

/// Wraps a sink so the test can stall the consumer thread on demand
/// (forcing envelopes to pile up in the ring during pre-warming).
struct Gate<S> {
    hold: Arc<AtomicBool>,
    inner: S,
}

impl<S: FleetSink> FleetSink for Gate<S> {
    fn on_event(&mut self, event: &FleetEvent) -> cwsmooth::core::error::Result<()> {
        while self.hold.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        self.inner.on_event(event)
    }
}

fn wait_drained<S>(queue: &QueueSink<S>) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while queue.stats().depth > 0 {
        assert!(Instant::now() < deadline, "consumer never drained the ring");
        std::thread::yield_now();
    }
}

#[test]
fn steady_state_threaded_producer_path_performs_no_heap_allocation() {
    COUNT_ME.with(|c| c.set(true));
    // ---- Setup (allocates freely). ----
    let dir = std::env::temp_dir().join(format!("cwsmooth-transport-alloc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = WindowSpec::new(10, 5).unwrap();

    let methods: Vec<CsMethod> = (0..NODES)
        .map(|node| {
            let s = Matrix::from_fn(SENSORS, 150, |r, c| {
                ((c as f64 / (2.0 + r as f64) + node as f64 * 0.37).sin() * (r + 1) as f64)
                    + 0.05 * node as f64
            });
            CsMethod::new(CsTrainer::default().train(&s).unwrap(), L).unwrap()
        })
        .collect();
    let mut engine = FleetEngine::with_shards(methods, spec, 1).unwrap();
    let mut frame = engine.frame();

    let store_cfg = StoreConfig::default()
        .with_encoding(Encoding::Quant8)
        .with_block_events(16)
        .with_segment_events(1 << 40);
    let store = SignatureStore::open(&dir, spec, L, store_cfg).unwrap();

    let x = Matrix::from_fn(60, 2 * L, |r, c| {
        ((r * 17 + c * 5) % 100) as f64 / 100.0 + (r % 2) as f64 * 0.3
    });
    let y: Vec<usize> = (0..60).map(|r| r % 2).collect();
    let mut forest = RandomForestClassifier::with_config(small_forest_config(3, true));
    forest.fit(&x, &y).unwrap();
    let mut detector = StreamingDetector::new(forest, DetectorConfig::default()).unwrap();
    detector.reserve_nodes(NODES);

    let drift = DriftMonitor::new(DriftConfig {
        bins: 6,
        window_events: 4,
        threshold: 0.9,
        ..DriftConfig::default()
    });

    let hold = Arc::new(AtomicBool::new(false));
    let cfg = QueueConfig {
        capacity: CAPACITY,
        policy: QueuePolicy::Block,
    };
    fn gated<S>(hold: &Arc<AtomicBool>, inner: S) -> Gate<S> {
        Gate {
            hold: Arc::clone(hold),
            inner,
        }
    }
    let mut tree = Tee((
        QueueSink::with_config(gated(&hold, store), cfg),
        QueueSink::with_config(gated(&hold, detector), cfg),
        QueueSink::with_config(gated(&hold, drift), cfg),
    ));

    // ---- Warm-up 1 (consumers live): exercise every consumer-side
    // buffer class — store staging and block flushes, detector vote
    // buffers, drift histograms. ----
    let mut t = 0usize;
    while engine.stats().events < 1500 {
        fill(&mut frame, t);
        engine.ingest_frame_sink(&frame, &mut tree).unwrap();
        t += 1;
    }

    // ---- Warm-up 2 (consumers gated): push a burst bigger than the
    // measurement window so each branch mints (and warms) more
    // envelopes than the measurement can ever need; then release and
    // let everything recycle into the free queues. ----
    hold.store(true, Ordering::Release);
    let burst_start = engine.stats().events;
    while engine.stats().events - burst_start < 2000 {
        fill(&mut frame, t);
        engine.ingest_frame_sink(&frame, &mut tree).unwrap();
        t += 1;
    }
    hold.store(false, Ordering::Release);
    wait_drained(&tree.0 .0);
    wait_drained(&tree.0 .1);
    wait_drained(&tree.0 .2);

    // ---- Measurement window: hundreds of frames of ingest + enqueue
    // on this thread, every envelope drawn from the warmed free pool —
    // all heap-silent on the producer. ----
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    let events_before = engine.stats().events;
    for _ in 0..600 {
        fill(&mut frame, t);
        engine.ingest_frame_sink(&frame, &mut tree).unwrap();
        t += 1;
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;

    let events = engine.stats().events - events_before;
    assert!(events > 500, "expected many events, got {events}");
    assert!(
        (events as usize) < CAPACITY,
        "measurement must not outrun the envelope pool"
    );
    assert_eq!(allocs, 0, "threaded producer path allocated {allocs} times");
    assert_eq!(deallocs, 0, "threaded producer path freed {deallocs} times");

    // ---- Shutdown: join all branches; every accepted event was (or
    // will have been, by join) delivered. ----
    let Tee((qs, qd, qm)) = tree;
    let total = engine.stats().events;
    let (pushed, sink_events) = {
        let s = qs.stats();
        let (g, r) = qs.join();
        r.unwrap();
        (s.pushed, g.inner.events())
    };
    assert_eq!(pushed, total);
    assert_eq!(sink_events, total, "store missed events");
    let (pushed, sink_events) = {
        let s = qd.stats();
        let (g, r) = qd.join();
        r.unwrap();
        (s.pushed, g.inner.events())
    };
    assert_eq!(pushed, total);
    assert_eq!(sink_events, total, "detector missed events");
    let (pushed, sink_events) = {
        let s = qm.stats();
        let (g, r) = qm.join();
        r.unwrap();
        (s.pushed, g.inner.events())
    };
    assert_eq!(pushed, total);
    assert_eq!(sink_events, total, "drift monitor missed events");
    std::fs::remove_dir_all(&dir).ok();
}
