//! End-to-end integration tests: simulator → windowing → signatures →
//! models → scores, across crate boundaries.

use cwsmooth::core::baselines::{BodikMethod, LanMethod, TuncerMethod};
use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, merge_datasets, DatasetOptions};
use cwsmooth::core::method::SignatureMethod;
use cwsmooth::core::model::CsModel;
use cwsmooth::data::{TaskKind, WindowSpec};
use cwsmooth::ml::cv::{cross_validate_forest_classifier, cross_validate_forest_regressor};
use cwsmooth::ml::forest::{small_forest_config, RandomForestClassifier, RandomForestRegressor};
use cwsmooth::sim::segments::{
    application_segment, cross_arch_segments, fault_segment, infrastructure_segment, power_segment,
    SimConfig,
};

/// Classification pipeline on the Fault segment reaches a useful F1 with
/// CS signatures at laptop scale.
#[test]
fn fault_classification_end_to_end() {
    let seg = fault_segment(SimConfig::new(1, 2500));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 40).unwrap();
    let ds = build_dataset(
        &seg,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(60, 10).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    assert_eq!(ds.task(), TaskKind::Classification);
    let report =
        cross_validate_forest_classifier(&ds.features, ds.classes.as_ref().unwrap(), 5, 7, |s| {
            RandomForestClassifier::with_config(small_forest_config(s, true))
        })
        .unwrap();
    assert!(
        report.mean_score() > 0.8,
        "fault F1 too low: {}",
        report.mean_score()
    );
}

/// Regression pipeline on the Power segment: CS features predict power.
#[test]
fn power_regression_end_to_end() {
    let seg = power_segment(SimConfig::new(2, 3000));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 10).unwrap();
    let ds = build_dataset(
        &seg,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(10, 5).unwrap(),
            horizon: 3,
        },
    )
    .unwrap();
    assert_eq!(ds.task(), TaskKind::Regression);
    let report =
        cross_validate_forest_regressor(&ds.features, ds.targets.as_ref().unwrap(), 5, 7, |s| {
            RandomForestRegressor::with_config(small_forest_config(s, false))
        })
        .unwrap();
    assert!(
        report.mean_score() > 0.8,
        "power score too low: {}",
        report.mean_score()
    );
}

/// Infrastructure regression end-to-end, including the long horizon.
#[test]
fn infrastructure_regression_end_to_end() {
    let seg = infrastructure_segment(SimConfig::new(3, 2500));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 5).unwrap();
    let ds = build_dataset(
        &seg,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(30, 6).unwrap(),
            horizon: 30,
        },
    )
    .unwrap();
    let report =
        cross_validate_forest_regressor(&ds.features, ds.targets.as_ref().unwrap(), 5, 11, |s| {
            RandomForestRegressor::with_config(small_forest_config(s, false))
        })
        .unwrap();
    // The paper's point: Infrastructure is accurate even at 5 blocks.
    assert!(
        report.mean_score() > 0.8,
        "infrastructure score too low: {}",
        report.mean_score()
    );
}

/// All four signature methods produce consistent datasets on one segment.
#[test]
fn all_methods_run_on_application_segment() {
    let seg = application_segment(SimConfig::new(4, 800));
    let spec = WindowSpec::new(30, 5).unwrap();
    let opts = DatasetOptions { spec, horizon: 0 };
    let n = seg.sensors();

    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let methods: Vec<(Box<dyn SignatureMethod>, usize)> = vec![
        (Box::new(TuncerMethod), 11 * n),
        (Box::new(BodikMethod), 9 * n),
        (Box::new(LanMethod::new(6).unwrap()), 6 * n),
        (Box::new(CsMethod::new(model, 20).unwrap()), 40),
    ];
    let expected_sets = spec.count(800);
    for (method, width) in methods {
        let ds = build_dataset(&seg, method.as_ref(), opts).unwrap();
        assert_eq!(ds.features.cols(), width, "{}", method.name());
        assert_eq!(ds.len(), expected_sets, "{}", method.name());
        assert!(!ds.features.has_non_finite(), "{}", method.name());
    }
}

/// The portability experiment's structural claim: CS merges across
/// architectures, baselines cannot.
#[test]
fn cross_architecture_merge() {
    let segs = cross_arch_segments(SimConfig::new(5, 700));
    let spec = WindowSpec::new(30, 2).unwrap();
    let opts = DatasetOptions { spec, horizon: 0 };

    let cs_parts: Vec<_> = segs
        .iter()
        .map(|(_, seg)| {
            let model = CsTrainer::default().train(&seg.matrix).unwrap();
            let cs = CsMethod::new(model, 20).unwrap();
            build_dataset(seg, &cs, opts).unwrap()
        })
        .collect();
    let merged = merge_datasets(&cs_parts).unwrap();
    assert_eq!(merged.features.cols(), 40);
    assert_eq!(
        merged.len(),
        cs_parts.iter().map(|d| d.len()).sum::<usize>()
    );

    let baseline_parts: Vec<_> = segs
        .iter()
        .map(|(_, seg)| build_dataset(seg, &TuncerMethod, opts).unwrap())
        .collect();
    assert!(merge_datasets(&baseline_parts).is_err());
}

/// A CS model survives persistence and produces identical signatures.
#[test]
fn model_persistence_is_transparent() {
    let seg = power_segment(SimConfig::new(6, 600));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();
    let reloaded = CsModel::load(buf.as_slice()).unwrap();

    let cs_a = CsMethod::new(model, 10).unwrap();
    let cs_b = CsMethod::new(reloaded, 10).unwrap();
    let w = seg.matrix.col_window(50, 60).unwrap();
    assert_eq!(
        cs_a.signature(&w, None).unwrap(),
        cs_b.signature(&w, None).unwrap()
    );
}

/// Everything is deterministic under a fixed seed, end to end.
#[test]
fn full_pipeline_determinism() {
    let run = || {
        let seg = application_segment(SimConfig::new(9, 700));
        let model = CsTrainer::default().train(&seg.matrix).unwrap();
        let cs = CsMethod::new(model, 20).unwrap();
        let ds = build_dataset(
            &seg,
            &cs,
            DatasetOptions {
                spec: WindowSpec::new(30, 5).unwrap(),
                horizon: 0,
            },
        )
        .unwrap();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(3, true));
        rf.fit(&ds.features, ds.classes.as_ref().unwrap()).unwrap();
        rf.predict(&ds.features).unwrap()
    };
    assert_eq!(run(), run());
}
