//! Integration tests for the extension features: streaming extraction,
//! signature rescaling, segment persistence, GPU monitoring and
//! root-cause hooks — all exercised across crate boundaries.

use cwsmooth::core::cs::{CsMethod, CsTrainer};
use cwsmooth::core::dataset::{build_dataset, DatasetOptions};
use cwsmooth::core::online::OnlineCs;
use cwsmooth::core::scale::{prune_middle, resample_signature};
use cwsmooth::data::store::{load_segment, save_segment};
use cwsmooth::data::{WindowIter, WindowSpec};
use cwsmooth::ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth::sim::segments::{gpu_segment, power_segment, SimConfig};

/// Streaming a simulated segment column by column produces exactly the
/// batch pipeline's signatures — on real multi-segment data, not toys.
#[test]
fn online_matches_batch_on_simulated_data() {
    let seg = power_segment(SimConfig::new(3, 700));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let spec = WindowSpec::new(10, 5).unwrap();
    let cs = CsMethod::new(model, 10).unwrap();

    let batch: Vec<_> = WindowIter::new(spec, seg.samples())
        .map(|w| {
            let sub = w.extract(&seg.matrix).unwrap();
            let hist = w.history(&seg.matrix);
            cs.signature(&sub, hist.as_deref()).unwrap()
        })
        .collect();

    let mut online = OnlineCs::new(cs, spec);
    let mut streamed = Vec::new();
    for c in 0..seg.samples() {
        if let Some(sig) = online.push(&seg.matrix.col(c)).unwrap() {
            streamed.push(sig);
        }
    }
    assert_eq!(streamed.len(), batch.len());
    for (a, b) in streamed.iter().zip(&batch) {
        for (x, y) in a.re.iter().zip(&b.re) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in a.im.iter().zip(&b.im) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}

/// A segment survives the HPC-ODA directory layout and still drives the
/// whole CS + ML pipeline after reloading.
#[test]
fn persisted_segment_still_trains() {
    let seg = gpu_segment(SimConfig::new(4, 500));
    let dir = std::env::temp_dir().join(format!("cwsmooth-ext-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    save_segment(&dir, &seg).unwrap();
    let back = load_segment(&dir).unwrap();
    assert_eq!(back.matrix, seg.matrix);
    assert_eq!(back.labels, seg.labels);

    let model = CsTrainer::default().train(&back.matrix).unwrap();
    let cs = CsMethod::new(model, 10).unwrap();
    let ds = build_dataset(
        &back,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(30, 5).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    let mut rf = RandomForestClassifier::with_config(small_forest_config(1, true));
    rf.fit(&ds.features, ds.classes.as_ref().unwrap()).unwrap();
    let acc_pred = rf.predict(&ds.features).unwrap();
    let correct = acc_pred
        .iter()
        .zip(ds.classes.as_ref().unwrap())
        .filter(|(p, t)| p == t)
        .count();
    assert!(correct as f64 / acc_pred.len() as f64 > 0.8);
    std::fs::remove_dir_all(&dir).ok();
}

/// Downscaled high-resolution signatures of live data approximate native
/// low-resolution ones (the rescaling deployment path).
#[test]
fn rescaling_approximates_native_resolution() {
    let seg = power_segment(SimConfig::new(5, 600));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    // 47 sensors: block boundaries of CS-40 and CS-10 do NOT align, so we
    // assert closeness rather than equality.
    let cs40 = CsMethod::new(model.clone(), 40).unwrap();
    let cs10 = CsMethod::new(model, 10).unwrap();
    let w = seg.matrix.col_window(100, 110).unwrap();
    let hist = seg.matrix.col(99);
    let hi = cs40.signature(&w, Some(&hist)).unwrap();
    let native = cs10.signature(&w, Some(&hist)).unwrap();
    let down = resample_signature(&hi, 10).unwrap();
    for (a, b) in down.re.iter().zip(&native.re) {
        assert!((a - b).abs() < 0.12, "re {a} vs {b}");
    }
}

/// Pruning middle blocks of GPU-node signatures keeps the descriptive
/// extremes (device + host activity) and stays classifiable.
#[test]
fn pruned_gpu_signatures_remain_useful() {
    let seg = gpu_segment(SimConfig::new(6, 900));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 20).unwrap();
    let ds = build_dataset(
        &seg,
        &cs,
        DatasetOptions {
            spec: WindowSpec::new(30, 5).unwrap(),
            horizon: 0,
        },
    )
    .unwrap();
    // prune every window's signature to 10 blocks
    let l = 20;
    let mut rows = Vec::new();
    for r in 0..ds.features.rows() {
        let row = ds.features.row(r);
        let sig = cwsmooth::core::cs::CsSignature {
            re: row[..l].to_vec(),
            im: row[l..].to_vec(),
        };
        rows.push(prune_middle(&sig, 10).unwrap().to_features());
    }
    let pruned = cwsmooth::linalg::Matrix::from_rows(rows).unwrap();
    let labels = ds.classes.as_ref().unwrap();
    let mut rf = RandomForestClassifier::with_config(small_forest_config(2, true));
    rf.fit(&pruned, labels).unwrap();
    let pred = rf.predict(&pruned).unwrap();
    let correct = pred.iter().zip(labels).filter(|(p, t)| p == t).count();
    assert!(
        correct as f64 / pred.len() as f64 > 0.85,
        "pruned accuracy too low"
    );
}

/// Root-cause hooks: every block maps to raw sensors, jointly covering
/// the whole sensor set, and feature origins are consistent.
#[test]
fn block_sensor_maps_cover_the_node() {
    use cwsmooth::core::cs::SignaturePart;
    let seg = gpu_segment(SimConfig::new(7, 400));
    let model = CsTrainer::default().train(&seg.matrix).unwrap();
    let cs = CsMethod::new(model, 20).unwrap();
    let mut seen = vec![false; seg.sensors()];
    for b in 0..20 {
        for s in cs.block_sensors(b).unwrap() {
            seen[s] = true;
        }
    }
    assert!(seen.iter().all(|&x| x), "blocks must cover every sensor");
    for f in 0..40 {
        let (block, part) = cs.feature_origin(f).unwrap();
        assert!(block < 20);
        if f < 20 {
            assert_eq!(part, SignaturePart::Real);
        } else {
            assert_eq!(part, SignaturePart::Imaginary);
        }
    }
}
