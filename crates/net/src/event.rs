//! Internal owned event representation shared by the client queues.

use cwsmooth_core::fleet::FleetEvent;

/// One pending event in transport-native layout: flat `[re..., im...]`
/// values ready for [`BlockCodec::encode_block`]
/// (cwsmooth_store::codec::BlockCodec::encode_block), with no borrow of
/// the producing frame.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueuedEvent {
    pub(crate) node: u32,
    pub(crate) window: u64,
    /// `2l` values, event-major `[re..., im...]`.
    pub(crate) values: Vec<f64>,
}

impl QueuedEvent {
    /// Copies `event` into `values` (reused to avoid reallocation) and
    /// wraps it. `node` must already be range-checked to `u32`.
    pub(crate) fn fill(node: u32, event: &FleetEvent, mut values: Vec<f64>) -> Self {
        values.clear();
        values.reserve(event.signature.re.len() + event.signature.im.len());
        values.extend_from_slice(&event.signature.re);
        values.extend_from_slice(&event.signature.im);
        Self {
            node,
            window: event.window_index as u64,
            values,
        }
    }
}
