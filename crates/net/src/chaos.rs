//! Seeded fault-injecting in-memory transport for the chaos harness.
//!
//! [`ChaosHub`] plays the network: it hands out [`Dial`] and [`Accept`]
//! endpoints whose connections are in-memory byte pipes wrapped in
//! [`ChaosLink`]. Every client-side write may — governed by a seeded
//! [`ChaosConfig`] — be dropped, delayed, delivered partially (the
//! remainder silently discarded, desynchronising the stream), have one
//! byte flipped, or reset the connection. The hub can also be closed
//! (connects refused), reopened, or have all live connections killed at
//! once, modelling a consumer crash. Everything is deterministic per
//! seed, so a failing schedule replays exactly.
//!
//! The production client and server run unmodified over these links —
//! only the transport is swapped, per [`crate::link`].

use crate::link::{Accept, Dial, Link};
use crate::rng::SplitMix64;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Per-pipe capacity: small enough that a stalled reader exerts
/// backpressure, large enough to hold many frames.
const PIPE_CAPACITY: usize = 64 * 1024;

/// Fault probabilities and magnitudes for one hub. All rates are per
/// client-side `write` call; the default injects no faults.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability a write is swallowed entirely (reported as written).
    pub drop_rate: f64,
    /// Probability one byte of a write is flipped in transit.
    pub flip_rate: f64,
    /// Probability only a prefix of a write is delivered (the rest is
    /// discarded while still reported as written).
    pub partial_rate: f64,
    /// Probability a write resets the connection (both directions die
    /// with [`io::ErrorKind::ConnectionReset`]).
    pub reset_rate: f64,
    /// Upper bound on a random pre-write delay (zero disables delays).
    pub max_delay: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            drop_rate: 0.0,
            flip_rate: 0.0,
            partial_rate: 0.0,
            reset_rate: 0.0,
            max_delay: Duration::ZERO,
        }
    }
}

/// One direction of a connection: a bounded in-memory byte queue.
#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Writes as much of `bytes` as fits, blocking until at least one
    /// byte fits. Returns how many bytes were accepted.
    fn write(&self, bytes: &[u8]) -> io::Result<usize> {
        if bytes.is_empty() {
            return Ok(0);
        }
        // lint:allow(no-panic-paths): Mutex poison recovery.
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while !state.closed && state.buf.len() >= PIPE_CAPACITY {
            state = self.writable.wait(state).unwrap_or_else(|p| p.into_inner());
        }
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos pipe closed",
            ));
        }
        let n = bytes.len().min(PIPE_CAPACITY - state.buf.len());
        state.buf.extend(&bytes[..n]);
        drop(state);
        self.readable.notify_all();
        Ok(n)
    }

    /// Reads up to `buf.len()` bytes, blocking (bounded by `timeout`
    /// when set) until data, close, or timeout. A closed-and-drained
    /// pipe reads `Ok(0)` (EOF).
    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // lint:allow(no-panic-paths): Mutex poison recovery.
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !state.buf.is_empty() {
                let mut n = 0usize;
                while n < buf.len() {
                    match state.buf.pop_front() {
                        Some(b) => {
                            buf[n] = b;
                            n += 1;
                        }
                        None => break,
                    }
                }
                drop(state);
                self.writable.notify_all();
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = match timeout {
                Some(t) => {
                    let (guard, res) = self
                        .readable
                        .wait_timeout(state, t)
                        .unwrap_or_else(|p| p.into_inner());
                    if res.timed_out() && guard.buf.is_empty() && !guard.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "chaos pipe read timed out",
                        ));
                    }
                    guard
                }
                None => self.readable.wait(state).unwrap_or_else(|p| p.into_inner()),
            };
        }
    }

    /// Marks the pipe closed and wakes both sides. Buffered bytes stay
    /// readable (like a TCP FIN); writes fail immediately.
    fn close(&self) {
        // lint:allow(no-panic-paths): Mutex poison recovery.
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        drop(state);
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// Client-side fault state (the server half carries `None` and behaves
/// like a plain pipe endpoint).
#[derive(Debug)]
struct Faults {
    rng: SplitMix64,
    cfg: ChaosConfig,
}

/// One endpoint of a chaos connection.
///
/// Reads come from one pipe, writes go to the other; the endpoint
/// created for the dialing side injects faults on writes.
#[derive(Debug)]
pub struct ChaosLink {
    /// Pipe this endpoint writes into.
    out: Arc<Pipe>,
    /// Pipe this endpoint reads from.
    inp: Arc<Pipe>,
    /// Set when the connection was reset or killed.
    dead: Arc<AtomicBool>,
    faults: Option<Faults>,
    read_timeout: Option<Duration>,
}

impl ChaosLink {
    fn reset(&self) -> io::Error {
        // ordering: Relaxed — standalone kill flag; the pipe closes
        // below wake and fail the other side regardless of ordering.
        self.dead.store(true, Ordering::Relaxed);
        self.out.close();
        self.inp.close();
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos reset")
    }

    /// Delivers all of `bytes` into `out`, looping over partial pipe
    /// accepts, and reports the full length written.
    fn deliver(&self, bytes: &[u8]) -> io::Result<usize> {
        let mut sent = 0usize;
        while sent < bytes.len() {
            sent += self.out.write(&bytes[sent..])?;
        }
        Ok(bytes.len())
    }
}

impl io::Read for ChaosLink {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // ordering: Relaxed — see ChaosLink::reset.
        if self.dead.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos connection reset",
            ));
        }
        self.inp.read(buf, self.read_timeout)
    }
}

impl io::Write for ChaosLink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // ordering: Relaxed — see ChaosLink::reset.
        if self.dead.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos connection reset",
            ));
        }
        let Some(faults) = self.faults.as_mut() else {
            return self.deliver(buf);
        };
        let cfg = faults.cfg;
        if cfg.reset_rate > 0.0 && faults.rng.chance(cfg.reset_rate) {
            return Err(self.reset());
        }
        if !cfg.max_delay.is_zero() {
            let nanos = faults.rng.below(cfg.max_delay.as_nanos() as u64);
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        if cfg.drop_rate > 0.0 && faults.rng.chance(cfg.drop_rate) {
            // Swallowed in transit; the sender believes it was written.
            return Ok(buf.len());
        }
        if !buf.is_empty() && cfg.partial_rate > 0.0 && faults.rng.chance(cfg.partial_rate) {
            let keep = 1 + faults.rng.below(buf.len() as u64) as usize;
            if keep < buf.len() {
                self.deliver(&buf[..keep])?;
                // The tail is discarded, but the sender sees success:
                // the stream is now desynchronised, as after a crashed
                // kernel socket buffer.
                return Ok(buf.len());
            }
        }
        if !buf.is_empty() && cfg.flip_rate > 0.0 && faults.rng.chance(cfg.flip_rate) {
            let mut damaged = buf.to_vec();
            let at = faults.rng.below(buf.len() as u64) as usize;
            let bit = 1u8 << faults.rng.below(8);
            damaged[at] ^= bit;
            return self.deliver(&damaged);
        }
        self.deliver(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Link for ChaosLink {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        Ok(())
    }

    fn set_write_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for ChaosLink {
    fn drop(&mut self) {
        self.out.close();
        self.inp.close();
    }
}

/// Kill switch and pipe handles for one live connection.
#[derive(Debug)]
struct ConnHandles {
    dead: Arc<AtomicBool>,
    c2s: Arc<Pipe>,
    s2c: Arc<Pipe>,
}

#[derive(Debug, Default)]
struct HubState {
    /// Server halves awaiting accept.
    pending: VecDeque<ChaosLink>,
    /// Whether dials are currently accepted.
    open: bool,
    /// Connections established so far (also salts per-connection RNGs).
    conn_seq: u64,
    /// Kill handles for every connection ever made (cheap; tests are
    /// short-lived).
    live: Vec<ConnHandles>,
}

/// In-memory rendezvous point standing in for the network.
///
/// Cloning shares the hub; hand [`ChaosHub::dialer`] to the client and
/// [`ChaosHub::acceptor`] to the server thread.
#[derive(Debug, Clone, Default)]
pub struct ChaosHub {
    inner: Arc<(Mutex<HubState>, Condvar)>,
}

impl ChaosHub {
    /// A hub accepting connections.
    pub fn new() -> Self {
        let hub = Self::default();
        hub.reopen();
        hub
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        // lint:allow(no-panic-paths): Mutex poison recovery.
        self.inner.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A dialer whose connections inject faults per `cfg`.
    pub fn dialer(&self, cfg: ChaosConfig) -> ChaosDialer {
        ChaosDialer {
            hub: self.clone(),
            cfg,
        }
    }

    /// The acceptor for the server side of this hub.
    pub fn acceptor(&self) -> ChaosAcceptor {
        ChaosAcceptor { hub: self.clone() }
    }

    /// Refuses new dials (existing connections keep running) — the
    /// consumer process is "down" for connection establishment.
    pub fn close(&self) {
        self.lock().open = false;
        self.inner.1.notify_all();
    }

    /// Accepts dials again after [`ChaosHub::close`].
    pub fn reopen(&self) {
        self.lock().open = true;
        self.inner.1.notify_all();
    }

    /// Kills every connection made so far: both directions fail with
    /// [`io::ErrorKind::ConnectionReset`], like a SIGKILLed peer.
    pub fn kill_connections(&self) {
        let state = self.lock();
        for conn in &state.live {
            // ordering: Relaxed — standalone kill flag, see ChaosLink::reset.
            conn.dead.store(true, Ordering::Relaxed);
            conn.c2s.close();
            conn.s2c.close();
        }
        drop(state);
        self.inner.1.notify_all();
    }
}

/// Client-side [`Dial`] for a [`ChaosHub`].
#[derive(Debug, Clone)]
pub struct ChaosDialer {
    hub: ChaosHub,
    cfg: ChaosConfig,
}

impl Dial for ChaosDialer {
    fn dial(&mut self, _timeout: Duration) -> io::Result<Box<dyn Link>> {
        let mut state = self.hub.lock();
        if !state.open {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "chaos hub closed",
            ));
        }
        state.conn_seq += 1;
        // Salt each connection's schedule so retries explore different
        // fault sequences while the whole run stays seed-deterministic.
        let conn_seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(state.conn_seq);
        let c2s = Pipe::new();
        let s2c = Pipe::new();
        let dead = Arc::new(AtomicBool::new(false));
        state.live.push(ConnHandles {
            dead: Arc::clone(&dead),
            c2s: Arc::clone(&c2s),
            s2c: Arc::clone(&s2c),
        });
        let client = ChaosLink {
            out: Arc::clone(&c2s),
            inp: Arc::clone(&s2c),
            dead: Arc::clone(&dead),
            faults: Some(Faults {
                rng: SplitMix64::new(conn_seed),
                cfg: self.cfg,
            }),
            read_timeout: None,
        };
        let server = ChaosLink {
            out: s2c,
            inp: c2s,
            dead,
            faults: None,
            read_timeout: None,
        };
        state.pending.push_back(server);
        drop(state);
        self.hub.inner.1.notify_all();
        Ok(Box::new(client))
    }
}

/// Server-side [`Accept`] for a [`ChaosHub`].
#[derive(Debug, Clone)]
pub struct ChaosAcceptor {
    hub: ChaosHub,
}

impl Accept for ChaosAcceptor {
    fn accept(&mut self) -> io::Result<Box<dyn Link>> {
        let mut state = self.hub.lock();
        loop {
            if let Some(link) = state.pending.pop_front() {
                return Ok(Box::new(link));
            }
            if !state.open {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "chaos hub closed",
                ));
            }
            state = self
                .hub
                .inner
                .1
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::thread;

    #[test]
    fn clean_link_carries_bytes_both_ways() {
        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let mut client = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut server = acceptor.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").unwrap();
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn closed_hub_refuses_dials_and_unblocks_accept() {
        let hub = ChaosHub::new();
        hub.close();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let err = dialer.dial(Duration::from_secs(1)).err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        let mut acceptor = hub.acceptor();
        let err = acceptor.accept().err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
        hub.reopen();
        assert!(dialer.dial(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn kill_connections_resets_both_ends() {
        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let mut client = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut server = acceptor.accept().unwrap();
        client.write_all(b"pre").unwrap();
        hub.kill_connections();
        assert!(client.write_all(b"post").is_err());
        // The server half errors too (dead flag), even before draining.
        let mut buf = [0u8; 3];
        assert!(server.read(&mut buf).is_err());
    }

    #[test]
    fn read_timeout_surfaces_as_timed_out() {
        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let mut client = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut server = acceptor.accept().unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        client.write_all(b"x").unwrap();
        assert_eq!(server.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let observe = |seed: u64| -> Vec<u8> {
            let hub = ChaosHub::new();
            let mut dialer = hub.dialer(ChaosConfig {
                seed,
                drop_rate: 0.3,
                flip_rate: 0.3,
                ..ChaosConfig::default()
            });
            let mut acceptor = hub.acceptor();
            let mut client = dialer.dial(Duration::from_secs(1)).unwrap();
            let mut server = acceptor.accept().unwrap();
            let writer = thread::spawn(move || {
                for i in 0..64u8 {
                    // write (not write_all): a dropped write reports
                    // success, so write_all cannot loop forever here.
                    let _ = client.write(&[i]);
                }
            });
            server
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut seen = Vec::new();
            let mut buf = [0u8; 16];
            loop {
                match server.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => seen.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
            writer.join().unwrap();
            seen
        };
        let a = observe(42);
        let b = observe(42);
        let c = observe(43);
        assert_eq!(a, b, "same seed, same delivered bytes");
        assert!(a.len() < 64, "seed 42 with 30% drops must lose bytes");
        assert_ne!(a, c, "different seed, different schedule");
    }
}
