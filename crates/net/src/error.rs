//! Error type for the cross-process transport.

use cwsmooth_core::error::CoreError;
use cwsmooth_store::StoreError;
use std::fmt;

/// Convenience alias for transport results.
pub type Result<T> = std::result::Result<T, NetError>;

/// Errors produced by the wire codec, client sink and server loop.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket / spill-file I/O failure.
    Io(std::io::Error),
    /// A frame or block failed validation: bad magic, CRC mismatch,
    /// truncation mid-frame, implausible field values. The link or the
    /// spill file delivered damaged bytes; nothing was silently
    /// skipped.
    Corrupt {
        /// Byte offset of the damage within the frame or stream.
        offset: u64,
        /// What failed to validate.
        message: String,
    },
    /// The two endpoints disagree on stream geometry (version, mode,
    /// `l`, window spec) — reconnecting cannot help, the error latches.
    Handshake(String),
    /// A well-formed frame arrived where the protocol forbids it
    /// (out-of-order sequence number, data before hello, ...). The
    /// connection is dropped; a reconnecting client gets a fresh
    /// sequence space.
    Protocol(String),
    /// Invalid configuration or API misuse.
    Invalid(String),
    /// A bounded wait elapsed (connect, ack drain, shutdown deadline).
    Timeout(String),
    /// The server's downstream sink failed; fatal for the serve loop,
    /// mirroring the first-error-wins contract of in-process sinks.
    Sink(CoreError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O error: {e}"),
            NetError::Corrupt { offset, message } => {
                write!(f, "corrupt frame at offset {offset}: {message}")
            }
            NetError::Handshake(m) => write!(f, "handshake rejected: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Invalid(m) => write!(f, "invalid transport usage: {m}"),
            NetError::Timeout(m) => write!(f, "transport timeout: {m}"),
            NetError::Sink(e) => write!(f, "downstream sink error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Sink(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<StoreError> for NetError {
    /// Store codec errors keep their class: damage stays `Corrupt`
    /// (with the store's offset), I/O stays `Io`, the rest is usage.
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => NetError::Io(io),
            StoreError::Corrupt {
                offset, message, ..
            } => NetError::Corrupt { offset, message },
            other => NetError::Invalid(other.to_string()),
        }
    }
}

impl From<NetError> for CoreError {
    /// Renders a transport error into the sink contract's persistence
    /// class, so a [`SocketSink`](crate::SocketSink) failure aborts a
    /// frame exactly like a store failure would.
    fn from(e: NetError) -> Self {
        match e {
            NetError::Sink(inner) => inner,
            other => CoreError::Persist(other.to_string()),
        }
    }
}
