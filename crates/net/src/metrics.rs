//! HTTP scrape endpoint for a [`MetricsHub`].
//!
//! A [`MetricsServer`] owns a background thread that accepts
//! connections on the workspace's own [`Accept`]/[`Link`] abstraction
//! and answers two one-shot HTTP requests:
//!
//! - `GET /metrics` — Prometheus text exposition
//!   ([`MetricsHub::render_prometheus`]),
//! - `GET /metrics.json` — the same snapshot as JSON
//!   ([`MetricsHub::render_json`]).
//!
//! Every other path gets a `404`; every response closes the
//! connection (`Connection: close`), so any HTTP client — `curl`, a
//! Prometheus scraper, a test using [`scrape`] — works without
//! keep-alive plumbing. Requests are bounded: a peer that stalls
//! mid-request or sends an oversized header block is dropped without
//! affecting the serve loop.
//!
//! Shutdown is cooperative: [`MetricsServer::shutdown`] raises a stop
//! flag and self-dials the listener once so the blocking `accept`
//! wakes, then joins the thread. Dropping the server does the same.

use crate::link::{Accept, Link, TcpAcceptor};
use cwsmooth_obs::MetricsHub;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Bound on one request's header block; a peer exceeding it is cut off.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Patience for one request's bytes and for writing the response.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Background HTTP exporter for one [`MetricsHub`].
///
/// Binds a TCP listener (port 0 gives an ephemeral port, resolved via
/// [`MetricsServer::local_addr`]) and serves scrapes until shutdown.
/// The hub is cheap to clone and internally synchronized, so the
/// pipeline keeps publishing while the exporter renders.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts the exporter thread.
    pub fn bind(addr: impl ToSocketAddrs, hub: MetricsHub) -> io::Result<Self> {
        let acceptor = TcpAcceptor::bind(addr)?;
        let local = acceptor.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cws-metrics".into())
            .spawn(move || {
                let mut acceptor = acceptor;
                serve_metrics(&mut acceptor, &hub, &thread_stop);
            })?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports) — scrape
    /// `http://<local_addr>/metrics`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the exporter thread and waits for it to finish.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release); // ordering: the flag must be visible before the wake-up connect below lands
                                                  // Self-dial once so a blocking accept wakes and sees the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        drop(handle.join());
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve loop over any [`Accept`]: answers requests until `stop` is
/// raised or the acceptor reports [`io::ErrorKind::NotConnected`]
/// (closed). Per-connection faults (stalls, malformed requests, write
/// errors) drop that connection only.
pub fn serve_metrics(acceptor: &mut dyn Accept, hub: &MetricsHub, stop: &AtomicBool) {
    loop {
        // ordering: Acquire pairs with the Release store in shutdown;
        // the dial that wakes accept happens after the store, so a
        // woken loop always observes the flag.
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut link = match acceptor.accept() {
            Ok(link) => link,
            Err(e) if e.kind() == io::ErrorKind::NotConnected => return,
            Err(_) => continue,
        };
        // ordering: see above — this is the wake-up connection.
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Best effort per connection: a scrape that fails is retried
        // by the scraper, not by us.
        drop(answer_one(link.as_mut(), hub));
    }
}

/// Reads one HTTP request from `link` and writes the response.
fn answer_one(link: &mut dyn Link, hub: &MetricsHub) -> io::Result<()> {
    link.set_read_timeout(Some(IO_TIMEOUT))?;
    link.set_write_timeout(Some(IO_TIMEOUT))?;
    let path = read_request_path(link)?;
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            hub.render_prometheus(),
        ),
        "/metrics.json" => ("200 OK", "application/json", hub.render_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /metrics.json\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    link.write_all(header.as_bytes())?;
    link.write_all(body.as_bytes())?;
    link.flush()
}

/// Reads until the end of the header block and returns the request
/// path from the request line (`GET <path> HTTP/1.x`).
fn read_request_path(link: &mut dyn Link) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request header block too large",
            ));
        }
        let n = link.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let line_end = buf
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(buf.len());
    let line = String::from_utf8_lossy(&buf[..line_end]);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" || path.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a GET request line",
        ));
    }
    Ok(path.to_string())
}

/// Fetches `path` from a [`MetricsServer`] and returns the response
/// body — a minimal HTTP client for tests and examples, so scraping
/// the exporter needs no external tooling.
pub fn scrape(addr: SocketAddr, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: cws\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((header, body)) = response.split_once("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response missing header terminator",
        ));
    };
    if !header.starts_with("HTTP/1.1 200") {
        let status = header.lines().next().unwrap_or("").to_string();
        return Err(io::Error::new(io::ErrorKind::InvalidData, status));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_obs::{Observe, Registry, Snapshot};

    struct Fixed;

    impl Observe for Fixed {
        fn observe(&self, out: &mut Snapshot) {
            out.counter("cws_fixed_total", &[("stage", "test")], 7);
        }
    }

    #[test]
    fn serves_prometheus_and_json_scrapes() {
        let registry = Registry::new();
        registry.counter("cws_live_total", &[]).add(3);
        let hub = MetricsHub::new(registry);
        hub.publish("fixed", &Fixed);
        let server = MetricsServer::bind("127.0.0.1:0", hub.clone()).unwrap();
        let addr = server.local_addr();

        let text = scrape(addr, "/metrics").unwrap();
        assert!(text.contains("cws_live_total 3"), "prometheus: {text}");
        assert!(
            text.contains("cws_fixed_total{stage=\"test\"} 7"),
            "prometheus: {text}"
        );

        let json = scrape(addr, "/metrics.json").unwrap();
        assert!(json.contains("\"cws_fixed_total\""), "json: {json}");

        let err = scrape(addr, "/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        // A scrape after more activity sees the new value: the hub
        // renders live, not a bind-time copy.
        hub.registry().counter("cws_live_total", &[]).add(2);
        let text = scrape(addr, "/metrics").unwrap();
        assert!(text.contains("cws_live_total 5"), "prometheus: {text}");

        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent_via_drop() {
        let hub = MetricsHub::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        drop(server); // stops via Drop
                      // The listener is gone: a fresh scrape cannot connect (or is
                      // refused mid-request by the dead exporter).
        assert!(scrape(addr, "/metrics").is_err());
    }
}
