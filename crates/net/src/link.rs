//! Byte-stream abstraction under the wire protocol.
//!
//! The client and server speak to a [`Link`] — any reliable, ordered
//! byte stream with read/write timeouts. TCP and (on unix) unix-domain
//! sockets implement it for production; [`crate::chaos`] implements it
//! in-memory with seeded fault injection for the chaos harness.
//! Connection establishment is likewise abstracted: the client owns a
//! [`Dial`], the server an [`Accept`], so every robustness test runs
//! the *real* client/server code paths with only the transport swapped.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A reliable ordered byte stream with configurable timeouts.
///
/// `read` must return `Ok(0)` at end-of-stream and an error of kind
/// [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`] when a
/// read timeout elapses before the first byte.
pub trait Link: io::Read + io::Write + Send {
    /// Bounds every subsequent read; `None` blocks indefinitely.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
    /// Bounds every subsequent write; `None` blocks indefinitely.
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

/// Client-side connection factory (one per [`crate::SocketSink`]).
pub trait Dial: Send {
    /// Establishes a fresh connection, spending at most `timeout`.
    fn dial(&mut self, timeout: Duration) -> io::Result<Box<dyn Link>>;
}

/// Server-side connection source (one per serve loop).
pub trait Accept: Send {
    /// Blocks for the next inbound connection. Returning an error of
    /// kind [`io::ErrorKind::NotConnected`] means the acceptor was
    /// closed: the serve loop ends cleanly instead of erroring.
    fn accept(&mut self) -> io::Result<Box<dyn Link>>;
}

impl Link for TcpStream {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

/// Dials a fixed TCP address (resolved once at construction).
#[derive(Debug, Clone)]
pub struct TcpDialer {
    addr: SocketAddr,
}

impl TcpDialer {
    /// Resolves `addr` to its first socket address.
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )
        })?;
        Ok(Self { addr })
    }

    /// The resolved target address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Dial for TcpDialer {
    fn dial(&mut self, timeout: Duration) -> io::Result<Box<dyn Link>> {
        let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        // Frames are latency-sensitive (acks gate the in-flight window).
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }
}

/// Accepts TCP connections from a bound listener.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds `addr` (use port 0 for an ephemeral port, then
    /// [`TcpAcceptor::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// Wraps an already-bound listener.
    pub fn from_listener(listener: TcpListener) -> Self {
        Self { listener }
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }
}

impl Accept for TcpAcceptor {
    fn accept(&mut self) -> io::Result<Box<dyn Link>> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }
}

#[cfg(unix)]
mod unix {
    use super::{Accept, Dial, Link};
    use std::io;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::PathBuf;
    use std::time::Duration;

    impl Link for UnixStream {
        fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            UnixStream::set_read_timeout(self, timeout)
        }

        fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            UnixStream::set_write_timeout(self, timeout)
        }
    }

    /// Dials a unix-domain socket path. Unix connects are local
    /// rendezvous, not network round trips, so the dial timeout is not
    /// applied (std offers no timed unix connect).
    #[derive(Debug, Clone)]
    pub struct UnixDialer {
        path: PathBuf,
    }

    impl UnixDialer {
        /// Dialer for the socket at `path`.
        pub fn new(path: impl Into<PathBuf>) -> Self {
            Self { path: path.into() }
        }
    }

    impl Dial for UnixDialer {
        fn dial(&mut self, _timeout: Duration) -> io::Result<Box<dyn Link>> {
            Ok(Box::new(UnixStream::connect(&self.path)?))
        }
    }

    /// Accepts connections on a unix-domain socket.
    #[derive(Debug)]
    pub struct UnixAcceptor {
        listener: UnixListener,
    }

    impl UnixAcceptor {
        /// Binds the socket at `path` (the path must not exist yet).
        pub fn bind(path: impl Into<PathBuf>) -> io::Result<Self> {
            Ok(Self {
                listener: UnixListener::bind(path.into())?,
            })
        }
    }

    impl Accept for UnixAcceptor {
        fn accept(&mut self) -> io::Result<Box<dyn Link>> {
            let (stream, _) = self.listener.accept()?;
            Ok(Box::new(stream))
        }
    }
}

#[cfg(unix)]
pub use unix::{UnixAcceptor, UnixDialer};
