//! Disk-backed overflow queue of pending events (`.cws` spill segments).
//!
//! While a [`SocketSink`](crate::SocketSink) is disconnected, events
//! beyond its in-memory buffer spill to `spill-<id>.cws` files — real
//! `.cws` segments (geometry header + blocks, one single-event block
//! per event, in arrival order) so the spill queue reuses the store's
//! codec, CRC and corruption detection wholesale. On reconnect the
//! queue drains strictly oldest-first, preserving the per-node window
//! monotonicity the store requires downstream.
//!
//! The queue is bounded by `max_segments`: when the budget is exceeded
//! the *oldest* segment is deleted whole and the exact number of events
//! lost is returned to the caller for [`NetStats`](crate::NetStats)
//! accounting — degradation is deliberate and measured, never silent.
//!
//! Spill files persist across process restarts: a new queue opened on
//! the same directory recovers sealed events (tail-truncating a
//! half-written final block, exactly like store crash recovery) and
//! drains them before anything new.

use crate::error::{NetError, Result};
use crate::event::QueuedEvent;
use cwsmooth_store::codec::{BlockCodec, HEADER_LEN};
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// One spill segment file.
#[derive(Debug)]
struct Seg {
    id: u64,
    path: PathBuf,
    /// Events written to (or recovered in) this segment.
    events: u64,
}

/// Segment currently being drained.
#[derive(Debug)]
struct Reader {
    seg_id: u64,
    bytes: Vec<u8>,
    offset: usize,
    /// Events already handed out from this segment.
    consumed: u64,
}

/// Bounded drop-oldest FIFO of events, persisted as `.cws` segments.
#[derive(Debug)]
pub(crate) struct Spill {
    codec: BlockCodec,
    dir: PathBuf,
    segment_events: u64,
    /// Segment budget; `0` means unbounded.
    max_segments: usize,
    next_id: u64,
    /// Oldest segment at the front; the writer (if any) appends to the
    /// back.
    segs: VecDeque<Seg>,
    writer: Option<BufWriter<File>>,
    reader: Option<Reader>,
    scratch: Vec<u8>,
    windows: Vec<u64>,
    /// Events currently queued across all segments.
    queued: u64,
    /// Cumulative bytes written to spill segments by this process
    /// (headers + blocks; recovery of pre-existing segments does not
    /// count). Never decremented — a telemetry total, not an occupancy.
    bytes_written: u64,
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("spill-{id:08}.cws"))
}

fn parse_seg_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let id = name.strip_prefix("spill-")?.strip_suffix(".cws")?;
    id.parse().ok()
}

impl Spill {
    /// Opens (creating `dir` if needed) and recovers a spill queue.
    ///
    /// Sealed events from a previous process are kept and will drain
    /// first. A half-written tail block in the newest segment is cut,
    /// exactly like store crash recovery; segments too short to hold a
    /// header are removed. Damage anywhere else is [`NetError::Corrupt`].
    pub(crate) fn open(
        dir: impl Into<PathBuf>,
        codec: BlockCodec,
        segment_events: u64,
        max_segments: usize,
    ) -> Result<Self> {
        if segment_events == 0 {
            return Err(NetError::Invalid(
                "spill segment_events must be at least 1".into(),
            ));
        }
        if max_segments == 1 {
            return Err(NetError::Invalid(
                "spill max_segments must be 0 (unbounded) or at least 2".into(),
            ));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut paths: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if let Some(id) = parse_seg_id(&path) {
                paths.push((id, path));
            }
        }
        paths.sort();
        let mut spill = Self {
            codec,
            dir,
            segment_events,
            max_segments,
            next_id: paths.last().map_or(0, |(id, _)| id + 1),
            segs: VecDeque::new(),
            writer: None,
            reader: None,
            scratch: Vec::new(),
            windows: Vec::new(),
            queued: 0,
            bytes_written: 0,
        };
        let last_idx = paths.len().saturating_sub(1);
        for (i, (id, path)) in paths.iter().enumerate() {
            let events = spill.recover_segment(path, i == last_idx)?;
            if events == 0 {
                fs::remove_file(path)?;
                continue;
            }
            spill.queued += events;
            spill.segs.push_back(Seg {
                id: *id,
                path: path.clone(),
                events,
            });
        }
        Ok(spill)
    }

    /// Validates one recovered segment and returns its event count,
    /// truncating a damaged tail when `last` allows it.
    fn recover_segment(&mut self, path: &Path, last: bool) -> Result<u64> {
        let bytes = fs::read(path)?;
        if bytes.len() < HEADER_LEN {
            // Crash before the header landed: nothing recoverable.
            return Ok(0);
        }
        let header = BlockCodec::parse_header(&bytes[..HEADER_LEN])?;
        if header != self.codec {
            return Err(NetError::Invalid(format!(
                "spill segment {} was written with a different stream geometry",
                path.display()
            )));
        }
        let mut at = HEADER_LEN;
        let mut events = 0u64;
        let mut values = Vec::new();
        loop {
            self.windows.clear();
            values.clear();
            match self
                .codec
                .decode_block_at(&bytes, at, &mut self.windows, &mut values)
            {
                Ok(Some((_, next))) => {
                    events += 1;
                    at = next;
                }
                Ok(None) => break,
                Err(_) if last => {
                    // Half-written tail of the newest segment: cut it,
                    // keep the sealed prefix. Damage elsewhere (below)
                    // is real corruption and must surface.
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(at as u64)?;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(events)
    }

    /// Events currently queued.
    pub(crate) fn events(&self) -> u64 {
        self.queued
    }

    /// Spill segments currently on disk.
    pub(crate) fn segments(&self) -> usize {
        self.segs.len()
    }

    /// Cumulative bytes this process has written to spill segments.
    pub(crate) fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flushes and closes the write segment, sealing it for reads.
    fn seal_writer(&mut self) -> Result<()> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        Ok(())
    }

    /// Appends one event. Returns how many queued events were dropped
    /// (oldest first) to stay within the segment budget — `0` in the
    /// common case.
    pub(crate) fn push(&mut self, event: &QueuedEvent) -> Result<u64> {
        if self.writer.is_none() {
            let id = self.next_id;
            self.next_id += 1;
            let path = seg_path(&self.dir, id);
            let mut file = BufWriter::new(File::create(&path)?);
            file.write_all(&self.codec.header_bytes())?;
            self.bytes_written += self.codec.header_bytes().len() as u64;
            self.segs.push_back(Seg {
                id,
                path,
                events: 0,
            });
            self.writer = Some(file);
        }
        self.scratch.clear();
        self.codec.encode_block(
            &mut self.scratch,
            event.node,
            std::slice::from_ref(&event.window),
            &event.values,
        )?;
        let (Some(writer), Some(back)) = (self.writer.as_mut(), self.segs.back_mut()) else {
            return Err(NetError::Invalid("spill writer state lost mid-push".into()));
        };
        writer.write_all(&self.scratch)?;
        self.bytes_written += self.scratch.len() as u64;
        back.events += 1;
        let seal = back.events >= self.segment_events;
        self.queued += 1;
        if seal {
            self.seal_writer()?;
        }
        self.enforce_budget()
    }

    /// Deletes oldest segments until within budget; returns events lost.
    fn enforce_budget(&mut self) -> Result<u64> {
        let mut dropped = 0u64;
        if self.max_segments == 0 {
            return Ok(0);
        }
        while self.segs.len() > self.max_segments {
            // max_segments >= 2, so the front is never the write
            // segment (the writer appends to the back, and the deque
            // holds at least three entries here).
            let Some(seg) = self.segs.pop_front() else {
                break;
            };
            // If the reader was partway through this segment its
            // already-consumed events were delivered, not lost — and
            // its in-memory copy must not keep serving deleted events.
            let consumed = if self.reader.as_ref().is_some_and(|r| r.seg_id == seg.id) {
                self.reader.take().map_or(0, |r| r.consumed)
            } else {
                0
            };
            let lost = seg.events - consumed;
            fs::remove_file(&seg.path)?;
            self.queued -= lost;
            dropped += lost;
        }
        Ok(dropped)
    }

    /// Removes the oldest event, or `Ok(None)` when empty. Events come
    /// back in exact arrival order (minus any budget drops).
    pub(crate) fn pop(&mut self) -> Result<Option<QueuedEvent>> {
        loop {
            if self.reader.is_none() {
                if self.segs.is_empty() {
                    return Ok(None);
                }
                if self.segs.len() == 1 && self.writer.is_some() {
                    // Draining has caught up with the write segment.
                    self.seal_writer()?;
                }
                let Some(front) = self.segs.front() else {
                    return Ok(None);
                };
                let seg_id = front.id;
                let bytes = fs::read(&front.path)?;
                let offset = HEADER_LEN.min(bytes.len());
                self.reader = Some(Reader {
                    seg_id,
                    bytes,
                    offset,
                    consumed: 0,
                });
            }
            let Some(reader) = self.reader.as_mut() else {
                return Ok(None);
            };
            self.windows.clear();
            let mut values = Vec::new();
            match self.codec.decode_block_at(
                &reader.bytes,
                reader.offset,
                &mut self.windows,
                &mut values,
            )? {
                Some((node, next)) => {
                    let at = reader.offset;
                    reader.offset = next;
                    reader.consumed += 1;
                    self.queued -= 1;
                    let done = reader.offset >= reader.bytes.len();
                    let Some(&window) = self.windows.first() else {
                        return Err(NetError::Corrupt {
                            offset: at as u64,
                            message: "spill block holds no events".into(),
                        });
                    };
                    if done {
                        self.finish_front_segment()?;
                    }
                    return Ok(Some(QueuedEvent {
                        node,
                        window,
                        values,
                    }));
                }
                None => {
                    // Empty body (header-only file): discard and retry.
                    self.finish_front_segment()?;
                }
            }
        }
    }

    /// Drops the fully drained front segment and its file.
    fn finish_front_segment(&mut self) -> Result<()> {
        self.reader = None;
        if let Some(seg) = self.segs.pop_front() {
            fs::remove_file(&seg.path)?;
        }
        Ok(())
    }

    /// Flushes buffered writes so a crash loses at most the OS-buffered
    /// tail. Called by the sink before long waits and on drop.
    pub(crate) fn flush(&mut self) -> Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }
}

impl Drop for Spill {
    fn drop(&mut self) {
        // Best-effort: persist buffered events for the next process.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_data::WindowSpec;
    use cwsmooth_store::Encoding;

    fn codec() -> BlockCodec {
        BlockCodec::new(Encoding::Exact, 2, WindowSpec { wl: 30, ws: 10 }).unwrap()
    }

    fn event(node: u32, window: u64) -> QueuedEvent {
        let x = node as f64 + window as f64 * 0.01;
        QueuedEvent {
            node,
            window,
            values: vec![x, -x, x * 2.0, 1.0 - x],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwsmooth-spill-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fifo_roundtrip_across_segments() {
        let dir = tmp_dir("fifo");
        let mut spill = Spill::open(&dir, codec(), 4, 0).unwrap();
        for i in 0..11u64 {
            assert_eq!(spill.push(&event((i % 3) as u32, i)).unwrap(), 0);
        }
        assert_eq!(spill.events(), 11);
        assert!(spill.segments() >= 3);
        for i in 0..11u64 {
            let ev = spill.pop().unwrap().expect("event queued");
            assert_eq!(ev.window, i);
            assert_eq!(ev.node, (i % 3) as u32);
            assert_eq!(ev.values, event(ev.node, i).values);
        }
        assert!(spill.pop().unwrap().is_none());
        assert_eq!(spill.events(), 0);
        assert_eq!(spill.segments(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let dir = tmp_dir("interleave");
        let mut spill = Spill::open(&dir, codec(), 3, 0).unwrap();
        let mut expect = VecDeque::new();
        let mut next = 0u64;
        for round in 0..10 {
            for _ in 0..=(round % 4) {
                spill.push(&event(0, next)).unwrap();
                expect.push_back(next);
                next += 1;
            }
            for _ in 0..(round % 3) {
                match spill.pop().unwrap() {
                    Some(ev) => assert_eq!(Some(ev.window), expect.pop_front()),
                    None => assert!(expect.is_empty()),
                }
            }
        }
        while let Some(ev) = spill.pop().unwrap() {
            assert_eq!(Some(ev.window), expect.pop_front());
        }
        assert!(expect.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_drops_oldest_with_exact_accounting() {
        let dir = tmp_dir("budget");
        let mut spill = Spill::open(&dir, codec(), 2, 2).unwrap();
        let mut dropped = 0u64;
        let total = 11u64;
        for i in 0..total {
            dropped += spill.push(&event(0, i)).unwrap();
        }
        assert!(dropped > 0, "budget of 2x2 must drop under 11 events");
        assert!(spill.segments() <= 2);
        assert_eq!(spill.events(), total - dropped);
        // Survivors are the newest suffix, still in order.
        let mut got = Vec::new();
        while let Some(ev) = spill.pop().unwrap() {
            got.push(ev.window);
        }
        let expect: Vec<u64> = (dropped..total).collect();
        assert_eq!(got, expect);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persists_across_reopen_and_cuts_damaged_tail() {
        let dir = tmp_dir("reopen");
        {
            let mut spill = Spill::open(&dir, codec(), 4, 0).unwrap();
            for i in 0..9u64 {
                spill.push(&event(1, i)).unwrap();
            }
            // Dropped here: Drop flushes buffered writes.
        }
        // Damage the newest segment's tail: cut 5 bytes mid-block.
        let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        paths.sort();
        let newest = paths.last().unwrap();
        let len = fs::metadata(newest).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(newest)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let mut spill = Spill::open(&dir, codec(), 4, 0).unwrap();
        assert_eq!(spill.events(), 8, "one half-written event cut");
        for i in 0..8u64 {
            assert_eq!(spill.pop().unwrap().unwrap().window, i);
        }
        assert!(spill.pop().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn geometry_mismatch_is_rejected_at_open() {
        let dir = tmp_dir("geom");
        {
            let mut spill = Spill::open(&dir, codec(), 4, 0).unwrap();
            spill.push(&event(0, 0)).unwrap();
        }
        let other = BlockCodec::new(Encoding::Exact, 3, WindowSpec { wl: 30, ws: 10 }).unwrap();
        assert!(matches!(
            Spill::open(&dir, other, 4, 0),
            Err(NetError::Invalid(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_budgets_are_rejected() {
        let dir = tmp_dir("cfg");
        assert!(Spill::open(&dir, codec(), 0, 0).is_err());
        assert!(Spill::open(&dir, codec(), 4, 1).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
