//! Server side: decodes wire frames into a downstream [`FleetSink`].
//!
//! [`Server::serve`] accepts connections sequentially and replays each
//! connection's data frames into the sink tree — a [`SignatureStore`],
//! a pipeline of operators, anything. The robustness contract:
//!
//! - **Validation first.** The handshake must carry this server's
//!   exact stream geometry, or the client gets a reject frame and the
//!   connection ends — no partially-compatible streams. Data frames
//!   must arrive with consecutive sequence numbers; corrupt or
//!   out-of-order frames end the connection with a documented error
//!   ([`NetError::Corrupt`] / [`NetError::Protocol`]), never a panic
//!   and never a silent skip.
//! - **Acks mean committed.** The server calls
//!   [`NetSink::commit`] (flush, for a store) *before* acknowledging,
//!   so an acked event survives a consumer crash.
//! - **Restarts are normal.** A connection dying mid-stream is counted
//!   and tolerated; the serve loop simply accepts the client's next
//!   connection. Replayed events are absorbed by per-`(node, window)`
//!   dedupe, which can be pre-seeded from an existing store
//!   ([`Server::seed_from_store`]) after a consumer restart.
//! - **Sink errors are fatal.** A failing downstream sink aborts the
//!   serve loop with [`NetError::Sink`], mirroring the in-process
//!   first-error-wins sink contract.

use crate::error::{NetError, Result};
use crate::link::{Accept, Link};
use crate::wire::{self, FrameKind, FrameReader, ReadOutcome};
use cwsmooth_core::error::CoreError;
use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_core::pipeline::{Collect, Publish};
use cwsmooth_obs::{Counter, Observe, Registry, Snapshot};
use cwsmooth_store::codec::BlockCodec;
use cwsmooth_store::SignatureStore;
use std::time::Duration;

/// A [`FleetSink`] with a durability point: [`NetSink::commit`] must
/// make every event delivered so far survive a process crash before it
/// returns. The server commits before acknowledging.
pub trait NetSink: FleetSink {
    /// Flushes delivered events to stable storage. The default is a
    /// no-op, correct for in-memory sinks.
    fn commit(&mut self) -> cwsmooth_core::error::Result<()> {
        Ok(())
    }
}

impl NetSink for SignatureStore {
    fn commit(&mut self) -> cwsmooth_core::error::Result<()> {
        self.flush().map_err(|e| CoreError::Persist(e.to_string()))
    }
}

impl NetSink for Collect {}

impl NetSink for Vec<FleetEvent> {}

/// Commit forwards to the wrapped sink, then publishes its snapshot —
/// so the hub always reflects a *committed* (durable) state, and a
/// serve loop that acks on commit keeps the exporter fresh without any
/// extra plumbing.
impl<S: NetSink + Observe> NetSink for Publish<S> {
    fn commit(&mut self) -> cwsmooth_core::error::Result<()> {
        self.sink_mut().commit()?;
        self.flush();
        Ok(())
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Events between cumulative acks. Must be well below the client's
    /// `max_inflight`, or the client's window can fill while no ack is
    /// yet due. Deduplicated events count toward the cadence (replays
    /// must still be acknowledged).
    pub ack_every: u64,
    /// Upper bound on accepted node ids (rejects runaway streams).
    pub max_nodes: usize,
    /// Stop the serve loop after a connection ends with a bye frame
    /// (useful for run-to-completion examples and tests).
    pub stop_on_bye: bool,
    /// Bound on finishing a frame once its first byte arrived; a peer
    /// stalling mid-frame is a connection fault.
    pub frame_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            ack_every: 32,
            max_nodes: 1 << 20,
            stop_on_bye: false,
            frame_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters exposed by [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Events delivered to the sink.
    pub events: u64,
    /// Events skipped as `(node, window)` replays.
    pub deduped: u64,
    /// Connections that ended with an error (handshake rejects,
    /// corruption, protocol violations, I/O faults).
    pub failed_connections: u64,
    /// Ack frames written.
    pub acks: u64,
}

/// How a connection ended cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnEnd {
    /// The peer closed the stream without a bye (crash or restart).
    Eof,
    /// The peer sent a bye frame: an orderly end of stream.
    Bye,
}

/// Decodes framed events from clients into a [`NetSink`]. One server
/// serves one sink; connections are handled sequentially, which
/// matches the one-producer fleet pipeline and keeps the dedupe floor
/// trivially consistent.
#[derive(Debug)]
pub struct Server {
    codec: BlockCodec,
    cfg: ServerConfig,
    /// Highest window delivered per node — the dedupe floor.
    last_window: Vec<Option<u64>>,
    stats: ServerStats,
    reader: FrameReader,
    frame_buf: Vec<u8>,
    windows: Vec<u64>,
    values: Vec<f64>,
    /// Reused event envelope for sink delivery.
    event: FleetEvent,
    /// Live registry handles ([`Server::attach_metrics`]); `None`
    /// keeps the frame path free of metric stores.
    metrics: Option<ServerMetrics>,
}

/// Live counter handles mirroring [`ServerStats`], bumped inline on the
/// serve thread — the serve loop blocks in [`Server::serve`], so an
/// exporter on another thread reads these instead of waiting for a
/// snapshot the loop can never publish.
#[derive(Debug)]
struct ServerMetrics {
    connections: Counter,
    frames: Counter,
    events: Counter,
    deduped: Counter,
    failed_connections: Counter,
    acks: Counter,
}

impl Server {
    /// A server expecting streams of `codec`'s exact geometry.
    pub fn new(codec: BlockCodec, cfg: ServerConfig) -> Result<Self> {
        if cfg.ack_every == 0 {
            return Err(NetError::Invalid("ack_every must be at least 1".into()));
        }
        if cfg.max_nodes == 0 {
            return Err(NetError::Invalid("max_nodes must be at least 1".into()));
        }
        Ok(Self {
            codec,
            cfg,
            last_window: Vec::new(),
            stats: ServerStats::default(),
            reader: FrameReader::new(),
            frame_buf: Vec::new(),
            windows: Vec::new(),
            values: Vec::new(),
            event: FleetEvent::default(),
            metrics: None,
        })
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Wires the server to a metrics registry: registers live
    /// `stage="server"` counters (`cws_connections_total`,
    /// `cws_frames_total`, `cws_events_total`, `cws_deduped_total`,
    /// `cws_failed_connections_total`, `cws_acks_total`) bumped inline
    /// as frames are served, so a scraper thread sees progress while
    /// [`Server::serve`] blocks. Striped relaxed adds on pre-registered
    /// handles: no lock, no allocation on the frame path.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let labels = &[("stage", "server")];
        self.metrics = Some(ServerMetrics {
            connections: registry.counter("cws_connections_total", labels),
            frames: registry.counter("cws_frames_total", labels),
            events: registry.counter("cws_events_total", labels),
            deduped: registry.counter("cws_deduped_total", labels),
            failed_connections: registry.counter("cws_failed_connections_total", labels),
            acks: registry.counter("cws_acks_total", labels),
        });
    }

    /// Bumps one live counter, if metrics are attached.
    fn bump(&self, pick: impl Fn(&ServerMetrics) -> &Counter) {
        if let Some(m) = &self.metrics {
            pick(m).inc();
        }
    }

    /// Raises the dedupe floor for one node: windows `<= window` from
    /// `node` will be skipped as replays.
    pub fn seed_last_window(&mut self, node: u32, window: u64) -> Result<()> {
        let idx = node as usize;
        if idx >= self.cfg.max_nodes {
            return Err(NetError::Invalid(format!(
                "node {node} exceeds max_nodes {}",
                self.cfg.max_nodes
            )));
        }
        if idx >= self.last_window.len() {
            self.last_window.resize(idx + 1, None);
        }
        let slot = &mut self.last_window[idx];
        if slot.is_none_or(|w| w < window) {
            *slot = Some(window);
        }
        Ok(())
    }

    /// Seeds the dedupe floor from everything already persisted in
    /// `store` — call after a consumer restart so a replaying client's
    /// re-sent events are skipped instead of re-appended.
    pub fn seed_from_store(&mut self, store: &SignatureStore) -> Result<()> {
        let max_nodes = self.cfg.max_nodes;
        let mut overflow: Option<u32> = None;
        store
            .for_each(|node, window, _| {
                let idx = node as usize;
                if idx >= max_nodes {
                    overflow.get_or_insert(node);
                    return;
                }
                if idx >= self.last_window.len() {
                    self.last_window.resize(idx + 1, None);
                }
                let slot = &mut self.last_window[idx];
                if slot.is_none_or(|w| w < window) {
                    *slot = Some(window);
                }
            })
            .map_err(|e| NetError::Invalid(format!("seeding dedupe floor: {e}")))?;
        if let Some(node) = overflow {
            return Err(NetError::Invalid(format!(
                "store holds node {node} beyond max_nodes {max_nodes}"
            )));
        }
        Ok(())
    }

    /// Writes one control frame to the peer.
    fn write_frame(
        &mut self,
        link: &mut dyn Link,
        kind: FrameKind,
        seq: u64,
        payload: &[u8],
    ) -> Result<()> {
        self.frame_buf.clear();
        wire::encode_frame(&mut self.frame_buf, kind, seq, payload)?;
        link.write_all(&self.frame_buf)?;
        link.flush()?;
        Ok(())
    }

    /// Serves one established connection to completion.
    ///
    /// Frames stream into `sink` with per-event dedupe; every
    /// `ack_every` events the sink is committed and a cumulative ack
    /// goes back. Errors: [`NetError::Handshake`] (geometry mismatch,
    /// reject sent), [`NetError::Corrupt`] (damaged frame or block),
    /// [`NetError::Protocol`] (sequence gap, misplaced frame),
    /// [`NetError::Sink`] (downstream failure — fatal), or I/O faults.
    pub fn serve_conn<S: NetSink>(&mut self, link: &mut dyn Link, sink: &mut S) -> Result<ConnEnd> {
        link.set_write_timeout(Some(self.cfg.frame_timeout))?;
        let mut helloed = false;
        let mut prev_seq = 0u64;
        let mut since_ack = 0u64;
        loop {
            // Patient between frames (first_byte: None — an idle
            // producer is fine), strict within one.
            let frame_timeout = self.cfg.frame_timeout;
            let (kind, seq, node) = match self.reader.read_frame(link, None, frame_timeout)? {
                ReadOutcome::Eof => {
                    // Peer gone (crash or restart): keep what was
                    // delivered durable; it cannot be acked now, so
                    // the client will replay the unacked tail and
                    // dedupe will absorb it.
                    sink.commit().map_err(NetError::Sink)?;
                    return Ok(ConnEnd::Eof);
                }
                ReadOutcome::Idle => continue,
                ReadOutcome::Frame(f) => {
                    self.stats.frames += 1;
                    // Field access, not `bump`: `f` still borrows
                    // `self.reader`, so only a disjoint field borrow
                    // of `self.metrics` is allowed here.
                    if let Some(m) = &self.metrics {
                        m.frames.inc();
                    }
                    match f.kind {
                        FrameKind::Hello => {
                            let remote = wire::parse_hello(f.payload)?;
                            if helloed {
                                return Err(NetError::Protocol(
                                    "second hello on one connection".into(),
                                ));
                            }
                            if remote != self.codec {
                                let msg = format!(
                                    "stream geometry mismatch: client sends mode {:?} l={} \
                                         window {}x{}, server expects mode {:?} l={} window {}x{}",
                                    remote.mode(),
                                    remote.l(),
                                    remote.spec().wl,
                                    remote.spec().ws,
                                    self.codec.mode(),
                                    self.codec.l(),
                                    self.codec.spec().wl,
                                    self.codec.spec().ws,
                                );
                                self.write_frame(link, FrameKind::Reject, 0, msg.as_bytes())?;
                                return Err(NetError::Handshake(msg));
                            }
                            (FrameKind::Hello, f.seq, 0u32)
                        }
                        FrameKind::Data => {
                            if !helloed {
                                return Err(NetError::Protocol("data frame before hello".into()));
                            }
                            if f.seq != prev_seq + 1 {
                                return Err(NetError::Protocol(format!(
                                    "data sequence gap: got {}, expected {}",
                                    f.seq,
                                    prev_seq + 1
                                )));
                            }
                            self.windows.clear();
                            self.values.clear();
                            let node = self.codec.decode_block(
                                f.payload,
                                &mut self.windows,
                                &mut self.values,
                            )?;
                            (FrameKind::Data, f.seq, node)
                        }
                        FrameKind::Bye => {
                            if !helloed {
                                return Err(NetError::Protocol("bye before hello".into()));
                            }
                            (FrameKind::Bye, f.seq, 0u32)
                        }
                        FrameKind::Ack | FrameKind::Reject => {
                            return Err(NetError::Protocol(format!(
                                "client sent a server-only {:?} frame",
                                f.kind
                            )));
                        }
                    }
                }
            };
            match kind {
                FrameKind::Hello => {
                    helloed = true;
                    self.write_frame(link, FrameKind::Ack, 0, &[])?;
                    self.stats.acks += 1;
                    self.bump(|m| &m.acks);
                }
                FrameKind::Data => {
                    let delivered = self.deliver_block(sink, node)?;
                    prev_seq = seq;
                    // Replayed (deduped) events still count toward the
                    // cadence: the client needs them acknowledged.
                    since_ack += delivered;
                    if since_ack >= self.cfg.ack_every {
                        sink.commit().map_err(NetError::Sink)?;
                        self.write_frame(link, FrameKind::Ack, prev_seq, &[])?;
                        self.stats.acks += 1;
                        self.bump(|m| &m.acks);
                        since_ack = 0;
                    }
                }
                FrameKind::Bye => {
                    // Commit, acknowledge everything, and end cleanly.
                    sink.commit().map_err(NetError::Sink)?;
                    self.write_frame(link, FrameKind::Ack, prev_seq, &[])?;
                    self.stats.acks += 1;
                    self.bump(|m| &m.acks);
                    return Ok(ConnEnd::Bye);
                }
                _ => {}
            }
        }
    }

    /// Delivers the just-decoded block (in `windows` / `values`) from
    /// `node` to the sink, skipping dedupe-floor replays. Returns
    /// events processed (delivered + deduped) so the ack cadence also
    /// covers replays.
    fn deliver_block<S: NetSink>(&mut self, sink: &mut S, node: u32) -> Result<u64> {
        let idx = node as usize;
        if idx >= self.cfg.max_nodes {
            return Err(NetError::Protocol(format!(
                "node {node} exceeds max_nodes {}",
                self.cfg.max_nodes
            )));
        }
        if idx >= self.last_window.len() {
            self.last_window.resize(idx + 1, None);
        }
        let dim = self.codec.dim();
        let l = self.codec.l();
        let count = self.windows.len();
        if self.values.len() != count * dim {
            return Err(NetError::Corrupt {
                offset: 0,
                message: format!(
                    "block value count {} does not match {count} events of dim {dim}",
                    self.values.len()
                ),
            });
        }
        let mut processed = 0u64;
        for (i, chunk) in self.values.chunks_exact(dim).enumerate() {
            let Some(&window) = self.windows.get(i) else {
                break;
            };
            processed += 1;
            let floor = self.last_window.get_mut(idx);
            let Some(floor) = floor else { break };
            if floor.is_some_and(|w| window <= w) {
                self.stats.deduped += 1;
                self.bump(|m| &m.deduped);
                continue;
            }
            *floor = Some(window);
            self.event.node = idx;
            self.event.window_index = window as usize;
            self.event.signature.re.clear();
            self.event.signature.re.extend_from_slice(&chunk[..l]);
            self.event.signature.im.clear();
            self.event.signature.im.extend_from_slice(&chunk[l..]);
            sink.on_event(&self.event).map_err(NetError::Sink)?;
            self.stats.events += 1;
            self.bump(|m| &m.events);
        }
        Ok(processed)
    }

    /// Accept loop: serves connections into `sink` until the acceptor
    /// closes ([`std::io::ErrorKind::NotConnected`]) or — with
    /// [`ServerConfig::stop_on_bye`] — a client says bye.
    ///
    /// Per-connection faults (corruption, protocol violations, rejects,
    /// I/O) are counted in [`ServerStats::failed_connections`] and
    /// tolerated: a restarting client just reconnects. Only a failing
    /// downstream sink ([`NetError::Sink`]) aborts the loop.
    pub fn serve<S: NetSink>(&mut self, acceptor: &mut dyn Accept, sink: &mut S) -> Result<()> {
        loop {
            let mut link = match acceptor.accept() {
                Ok(l) => l,
                Err(e) if e.kind() == std::io::ErrorKind::NotConnected => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            self.stats.connections += 1;
            self.bump(|m| &m.connections);
            match self.serve_conn(link.as_mut(), sink) {
                Ok(ConnEnd::Bye) if self.cfg.stop_on_bye => return Ok(()),
                Ok(_) => {}
                Err(NetError::Sink(e)) => return Err(NetError::Sink(e)),
                Err(_) => {
                    // This connection only; the client reconnects and
                    // replays, dedupe absorbs the overlap.
                    self.stats.failed_connections += 1;
                    self.bump(|m| &m.failed_connections);
                }
            }
        }
    }
}

/// Snapshot of [`Server::stats`] under `stage="server"` — the same
/// series names as [`Server::attach_metrics`], so either path yields an
/// identical scrape. Do not use both on one server: the registry and
/// the published snapshot would each emit the series.
impl Observe for Server {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "server")];
        out.counter("cws_connections_total", labels, self.stats.connections);
        out.counter("cws_frames_total", labels, self.stats.frames);
        out.counter("cws_events_total", labels, self.stats.events);
        out.counter("cws_deduped_total", labels, self.stats.deduped);
        out.counter(
            "cws_failed_connections_total",
            labels,
            self.stats.failed_connections,
        );
        out.counter("cws_acks_total", labels, self.stats.acks);
    }
}

/// One-call server: accepts and decodes connections into `sink` until
/// the acceptor closes, returning the final counters. Equivalent to
/// [`Server::new`] + [`Server::serve`] + [`Server::stats`].
pub fn serve_into<S: NetSink>(
    acceptor: &mut dyn Accept,
    codec: BlockCodec,
    cfg: ServerConfig,
    sink: &mut S,
) -> Result<ServerStats> {
    let mut server = Server::new(codec, cfg)?;
    server.serve(acceptor, sink)?;
    Ok(server.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosHub};
    use crate::link::Dial;
    use cwsmooth_data::WindowSpec;
    use cwsmooth_store::Encoding;
    use std::time::Duration;

    fn codec() -> BlockCodec {
        BlockCodec::new(Encoding::Exact, 2, WindowSpec { wl: 30, ws: 10 }).unwrap()
    }

    fn write_frame(link: &mut dyn Link, kind: FrameKind, seq: u64, payload: &[u8]) {
        let mut buf = Vec::new();
        wire::encode_frame(&mut buf, kind, seq, payload).unwrap();
        link.write_all(&buf).unwrap();
    }

    fn read_frame_kind(reader: &mut FrameReader, link: &mut dyn Link) -> (FrameKind, u64) {
        match reader
            .read_frame(link, Some(Duration::from_secs(5)), Duration::from_secs(5))
            .unwrap()
        {
            ReadOutcome::Frame(f) => (f.kind, f.seq),
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    fn data_payload(c: &BlockCodec, node: u32, window: u64, scale: f64) -> Vec<u8> {
        let mut out = Vec::new();
        let values: Vec<f64> = (0..c.dim()).map(|i| scale + i as f64).collect();
        c.encode_block(&mut out, node, &[window], &values).unwrap();
        out
    }

    #[test]
    fn happy_path_delivers_acks_and_dedupes() {
        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let cfg = ServerConfig {
            ack_every: 2,
            ..ServerConfig::default()
        };
        let c = codec();
        let server_thread = std::thread::spawn(move || {
            let mut server = Server::new(c, cfg).unwrap();
            let mut events: Vec<FleetEvent> = Vec::new();
            let mut link = acceptor.accept().unwrap();
            let end = server.serve_conn(link.as_mut(), &mut events).unwrap();
            (end, server.stats(), events)
        });
        let mut link = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut reader = FrameReader::new();
        write_frame(link.as_mut(), FrameKind::Hello, 0, &wire::hello_payload(&c));
        assert_eq!(
            read_frame_kind(&mut reader, link.as_mut()),
            (FrameKind::Ack, 0)
        );
        write_frame(
            link.as_mut(),
            FrameKind::Data,
            1,
            &data_payload(&c, 3, 7, 0.5),
        );
        write_frame(
            link.as_mut(),
            FrameKind::Data,
            2,
            &data_payload(&c, 3, 8, 1.5),
        );
        assert_eq!(
            read_frame_kind(&mut reader, link.as_mut()),
            (FrameKind::Ack, 2)
        );
        // A replay of window 8 plus a fresh window 9: the replay is
        // deduped but still acked.
        write_frame(
            link.as_mut(),
            FrameKind::Data,
            3,
            &data_payload(&c, 3, 8, 1.5),
        );
        write_frame(
            link.as_mut(),
            FrameKind::Data,
            4,
            &data_payload(&c, 3, 9, 2.5),
        );
        assert_eq!(
            read_frame_kind(&mut reader, link.as_mut()),
            (FrameKind::Ack, 4)
        );
        write_frame(link.as_mut(), FrameKind::Bye, 4, &[]);
        assert_eq!(
            read_frame_kind(&mut reader, link.as_mut()),
            (FrameKind::Ack, 4)
        );
        drop(link);
        let (end, stats, events) = server_thread.join().unwrap();
        assert_eq!(end, ConnEnd::Bye);
        assert_eq!(stats.events, 3);
        assert_eq!(stats.deduped, 1);
        assert_eq!(stats.frames, 6);
        let got: Vec<(usize, usize)> = events.iter().map(|e| (e.node, e.window_index)).collect();
        assert_eq!(got, vec![(3, 7), (3, 8), (3, 9)]);
        assert_eq!(events[0].signature.re, vec![0.5, 1.5]);
        assert_eq!(events[0].signature.im, vec![2.5, 3.5]);
    }

    #[test]
    fn attached_metrics_and_observe_mirror_stats() {
        use cwsmooth_obs::Value;

        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let cfg = ServerConfig {
            ack_every: 2,
            ..ServerConfig::default()
        };
        let c = codec();
        let registry = Registry::new();
        let server_registry = registry.clone();
        let server_thread = std::thread::spawn(move || {
            let mut server = Server::new(c, cfg).unwrap();
            server.attach_metrics(&server_registry);
            let mut events: Vec<FleetEvent> = Vec::new();
            let mut link = acceptor.accept().unwrap();
            server.serve_conn(link.as_mut(), &mut events).unwrap();
            let mut snap = Snapshot::new();
            server.observe(&mut snap);
            (server.stats(), snap)
        });
        let mut link = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut reader = FrameReader::new();
        write_frame(link.as_mut(), FrameKind::Hello, 0, &wire::hello_payload(&c));
        read_frame_kind(&mut reader, link.as_mut());
        for (seq, window) in [(1u64, 7u64), (2, 8), (3, 8), (4, 9)] {
            write_frame(
                link.as_mut(),
                FrameKind::Data,
                seq,
                &data_payload(&c, 3, window, 0.5),
            );
        }
        read_frame_kind(&mut reader, link.as_mut());
        read_frame_kind(&mut reader, link.as_mut());
        write_frame(link.as_mut(), FrameKind::Bye, 4, &[]);
        read_frame_kind(&mut reader, link.as_mut());
        drop(link);
        let (stats, snap) = server_thread.join().unwrap();

        // Live registry counters mirror stats exactly.
        let mut live = Snapshot::new();
        registry.observe(&mut live);
        let value = |name: &str| {
            live.samples()
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.value.clone())
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(value("cws_frames_total"), Value::Counter(stats.frames));
        assert_eq!(value("cws_events_total"), Value::Counter(stats.events));
        assert_eq!(value("cws_deduped_total"), Value::Counter(stats.deduped));
        assert_eq!(value("cws_acks_total"), Value::Counter(stats.acks));
        assert_eq!(stats.events, 3);
        assert_eq!(stats.deduped, 1);

        // The Observe snapshot carries the same series and values.
        for sample in snap.samples() {
            assert_eq!(
                sample.labels,
                vec![("stage".to_string(), "server".to_string())]
            );
            if let Some(live_sample) = live.samples().iter().find(|s| s.name == sample.name) {
                assert_eq!(live_sample.value, sample.value, "{}", sample.name);
            }
        }
    }

    #[test]
    fn geometry_mismatch_is_rejected_with_a_reject_frame() {
        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let server_codec = codec();
        let server_thread = std::thread::spawn(move || {
            let mut server = Server::new(server_codec, ServerConfig::default()).unwrap();
            let mut sink: Vec<FleetEvent> = Vec::new();
            let mut link = acceptor.accept().unwrap();
            server.serve_conn(link.as_mut(), &mut sink)
        });
        let other = BlockCodec::new(Encoding::Exact, 5, WindowSpec { wl: 30, ws: 10 }).unwrap();
        let mut link = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut reader = FrameReader::new();
        write_frame(
            link.as_mut(),
            FrameKind::Hello,
            0,
            &wire::hello_payload(&other),
        );
        let (kind, _) = read_frame_kind(&mut reader, link.as_mut());
        assert_eq!(kind, FrameKind::Reject);
        let err = server_thread.join().unwrap().unwrap_err();
        assert!(matches!(err, NetError::Handshake(_)), "{err}");
    }

    #[test]
    fn sequence_gap_and_data_before_hello_are_protocol_errors() {
        for (hello_first, seqs) in [(true, vec![1u64, 3]), (false, vec![1])] {
            let hub = ChaosHub::new();
            let mut dialer = hub.dialer(ChaosConfig::default());
            let mut acceptor = hub.acceptor();
            let c = codec();
            let server_thread = std::thread::spawn(move || {
                let mut server = Server::new(c, ServerConfig::default()).unwrap();
                let mut sink: Vec<FleetEvent> = Vec::new();
                let mut link = acceptor.accept().unwrap();
                server.serve_conn(link.as_mut(), &mut sink)
            });
            let mut link = dialer.dial(Duration::from_secs(1)).unwrap();
            let mut reader = FrameReader::new();
            if hello_first {
                write_frame(link.as_mut(), FrameKind::Hello, 0, &wire::hello_payload(&c));
                assert_eq!(
                    read_frame_kind(&mut reader, link.as_mut()),
                    (FrameKind::Ack, 0)
                );
            }
            for seq in seqs {
                write_frame(
                    link.as_mut(),
                    FrameKind::Data,
                    seq,
                    &data_payload(&c, 0, seq, 0.0),
                );
            }
            let err = server_thread.join().unwrap().unwrap_err();
            assert!(matches!(err, NetError::Protocol(_)), "{err}");
        }
    }

    #[test]
    fn corrupt_frame_ends_the_connection_with_corrupt() {
        let hub = ChaosHub::new();
        let mut dialer = hub.dialer(ChaosConfig::default());
        let mut acceptor = hub.acceptor();
        let c = codec();
        let server_thread = std::thread::spawn(move || {
            let mut server = Server::new(c, ServerConfig::default()).unwrap();
            let mut sink: Vec<FleetEvent> = Vec::new();
            let mut link = acceptor.accept().unwrap();
            server.serve_conn(link.as_mut(), &mut sink)
        });
        let mut link = dialer.dial(Duration::from_secs(1)).unwrap();
        let mut reader = FrameReader::new();
        write_frame(link.as_mut(), FrameKind::Hello, 0, &wire::hello_payload(&c));
        assert_eq!(
            read_frame_kind(&mut reader, link.as_mut()),
            (FrameKind::Ack, 0)
        );
        let mut frame = Vec::new();
        wire::encode_frame(&mut frame, FrameKind::Data, 1, &data_payload(&c, 0, 0, 0.0)).unwrap();
        let at = frame.len() / 2;
        frame[at] ^= 0x40;
        link.write_all(&frame).unwrap();
        let err = server_thread.join().unwrap().unwrap_err();
        assert!(matches!(err, NetError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn invalid_configs_and_seeds_are_rejected() {
        let c = codec();
        assert!(Server::new(
            c,
            ServerConfig {
                ack_every: 0,
                ..ServerConfig::default()
            }
        )
        .is_err());
        assert!(Server::new(
            c,
            ServerConfig {
                max_nodes: 0,
                ..ServerConfig::default()
            }
        )
        .is_err());
        let mut server = Server::new(
            c,
            ServerConfig {
                max_nodes: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        server.seed_last_window(3, 10).unwrap();
        assert!(server.seed_last_window(4, 0).is_err());
    }
}
