//! Fault-tolerant cross-process transport for cwsmooth fleet events.
//!
//! This crate carries [`FleetEvent`](cwsmooth_core::fleet::FleetEvent)s
//! between processes — producer fleets on one side, a store-owning
//! consumer on the other — over unix-domain sockets or TCP, using
//! length-prefixed, CRC-32-guarded frames that reuse the store's `.cws`
//! block encoding. The bytes on the wire are the bytes on disk.
//!
//! The layers, bottom up:
//!
//! - [`link`] — the [`Link`] / [`Dial`] / [`Accept`] byte-stream
//!   abstraction, implemented by TCP, unix sockets and the in-memory
//!   chaos transport, so every robustness test exercises the real
//!   client/server code.
//! - [`wire`] — versioned handshake (wire version + the store's
//!   geometry header), framed `.cws` blocks with sequence numbers,
//!   cumulative acks, and CRC-32 on every frame. All damage surfaces
//!   [`NetError::Corrupt`]; nothing panics, nothing is skipped
//!   silently.
//! - [`SocketSink`] — the client: a
//!   [`FleetSink`](cwsmooth_core::fleet::FleetSink) with bounded
//!   connect/write/ack timeouts, reconnect under capped exponential
//!   backoff with jitter, and spill-to-disk degradation while
//!   disconnected (bounded, drop-oldest, exactly accounted in
//!   [`NetStats`]).
//! - [`Server`] — decodes frames into a downstream sink tree, commits
//!   before acknowledging, dedupes `(node, window)` replays, and
//!   tolerates client restarts.
//! - [`chaos`] — a seeded fault-injecting transport ([`ChaosHub`],
//!   [`ChaosLink`]) for the chaos harness: drops, delays, partial
//!   writes, byte flips, resets and process-kill simulation, all
//!   deterministic per seed.
//! - [`metrics`] — a [`MetricsServer`] HTTP exporter answering
//!   `GET /metrics` (Prometheus text) and `GET /metrics.json` from a
//!   background thread, built on the same [`Accept`]/[`Link`] traits.
//!
//! Everything follows the workspace robustness contract: bad input and
//! bad networks yield `Err`, never a panic; queues and buffers are
//! bounded; loss (only under an explicit spill budget) is counted,
//! never silent.

#![warn(missing_docs)]

pub mod chaos;
mod client;
mod error;
mod event;
pub mod link;
pub mod metrics;
mod rng;
mod server;
mod spill;
pub mod wire;

pub use chaos::{ChaosAcceptor, ChaosConfig, ChaosDialer, ChaosHub, ChaosLink};
pub use client::{NetConfig, NetStats, SocketSink};
pub use error::{NetError, Result};
pub use link::{Accept, Dial, Link, TcpAcceptor, TcpDialer};
#[cfg(unix)]
pub use link::{UnixAcceptor, UnixDialer};
pub use metrics::{scrape, MetricsServer};
pub use server::{serve_into, ConnEnd, NetSink, Server, ServerConfig, ServerStats};

// The wire geometry handle is the store's codec; re-export it so users
// of this crate need not depend on cwsmooth-store directly.
pub use cwsmooth_store::codec::BlockCodec;
