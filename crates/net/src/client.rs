//! Robust client sink: [`SocketSink`] ships events to a remote server.
//!
//! `SocketSink` implements [`FleetSink`], so an engine pushes frames
//! into it exactly like into a store or a [`QueueSink`]
//! (cwsmooth_core::transport::QueueSink). Underneath it keeps an
//! at-least-once pipeline with bounded everything:
//!
//! - **Sending.** Events become single-block data frames with
//!   consecutive sequence numbers; up to [`NetConfig::max_inflight`]
//!   ride unacknowledged. The server acks cumulatively after committing
//!   downstream, so an acked event can never be lost by a consumer
//!   crash.
//! - **Disconnection.** Writes and connects have bounded timeouts.
//!   On any connection fault the sink latches nothing: unacked inflight
//!   events requeue for replay, the connection is retried under capped
//!   exponential backoff with jitter, and meanwhile events keep
//!   accumulating — first in a bounded memory buffer, then spilling to
//!   local `.cws` segments ([`crate::spill`]). `on_event` never blocks
//!   on an outage.
//! - **Degradation.** The spill is bounded by
//!   [`NetConfig::max_spill_segments`]; beyond the budget the *oldest*
//!   spilled events are dropped and counted exactly in
//!   [`NetStats::dropped`] — loss is deliberate, measured and visible,
//!   never silent.
//! - **Recovery.** On reconnect the sink drains replay, then spill,
//!   then fresh events — strict arrival order, which preserves the
//!   per-node window monotonicity the store needs. The server dedupes
//!   on `(node, window)`, so replayed duplicates are idempotent.
//! - **Failure.** Unrecoverable conditions (geometry rejected by the
//!   server, spill I/O failure, invalid usage) latch first-error-wins,
//!   exactly like `QueueSink`: the first `on_event` after the fault
//!   returns the original error, later calls a summary.
//!
//! Everything here returns `Err` on bad input or bad luck — panics are
//! reserved for bugs, per the workspace sink contract.

use crate::error::{NetError, Result};
use crate::event::QueuedEvent;
use crate::link::{Dial, Link, TcpDialer};
use crate::rng::SplitMix64;
use crate::spill::Spill;
use crate::wire::{self, FrameKind, FrameReader, ReadOutcome};
use cwsmooth_core::error::CoreError;
use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_obs::{Observe, Snapshot};
use cwsmooth_store::codec::BlockCodec;
use std::collections::VecDeque;
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`SocketSink`]. The defaults suit a LAN hop;
/// every field is public, construct with struct update syntax.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Bound on one connection attempt.
    pub connect_timeout: Duration,
    /// Bound on one frame write.
    pub write_timeout: Duration,
    /// Bound on waiting for an ack (handshake reply, full in-flight
    /// window, shutdown drain). Expiry counts as a connection fault.
    pub ack_timeout: Duration,
    /// Bound for opportunistic (non-blocking-ish) ack polls.
    pub poll_timeout: Duration,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Cap on the exponential reconnect delay (before ±50% jitter).
    pub backoff_max: Duration,
    /// Seed for backoff jitter (deterministic tests).
    pub jitter_seed: u64,
    /// Max unacknowledged data frames on the wire. Must comfortably
    /// exceed the server's `ack_every`, or the window can starve
    /// waiting for an ack the server is not yet due to send.
    pub max_inflight: usize,
    /// Events buffered in memory before spilling to disk.
    pub mem_events: usize,
    /// Events per spill segment file.
    pub spill_segment_events: u64,
    /// Spill budget in segments: `0` = unbounded, else `>= 2`; beyond
    /// it the oldest segment is dropped (and counted).
    pub max_spill_segments: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            ack_timeout: Duration::from_secs(5),
            poll_timeout: Duration::from_millis(1),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x5EED,
            max_inflight: 256,
            mem_events: 1024,
            spill_segment_events: 512,
            max_spill_segments: 0,
        }
    }
}

/// Counters exposed by [`SocketSink::stats`]. All event counts are
/// cumulative over the sink's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Events accepted from the producer.
    pub accepted: u64,
    /// Data frames written (including retransmissions).
    pub sent: u64,
    /// Events acknowledged by the server (committed downstream).
    pub acked: u64,
    /// Events requeued for replay after a connection fault.
    pub retransmitted: u64,
    /// Events written to the disk spill.
    pub spilled: u64,
    /// Events drained back out of the spill.
    pub drained: u64,
    /// Events lost to the spill budget (exact count).
    pub dropped: u64,
    /// Successful connection handshakes.
    pub connects: u64,
    /// Failed connection attempts.
    pub connect_failures: u64,
    /// Connections lost after being established.
    pub disconnects: u64,
    /// Reconnect backoff periods armed (each connect failure or
    /// disconnect arms exactly one).
    pub backoffs: u64,
    /// Events currently pending (memory + spill + replay + in-flight).
    pub queued: u64,
    /// Events currently on the wire awaiting acknowledgement.
    pub inflight: u64,
    /// Cumulative bytes written to spill segments by this sink.
    pub spill_bytes: u64,
    /// Spill segment files currently on disk.
    pub spill_segments: usize,
    /// Whether a connection is currently established.
    pub connected: bool,
}

/// Live connection state.
struct Conn {
    link: Box<dyn Link>,
    reader: FrameReader,
    /// Sequence number for the next data frame (1-based; 0 is hello).
    next_seq: u64,
    /// A bye frame was sent; no more data may follow on this link.
    bye_sent: bool,
}

/// First-error-wins failure latch (mirrors `QueueSink`).
#[derive(Default)]
struct Failure {
    failed: bool,
    first: Option<NetError>,
    message: String,
}

/// A [`FleetSink`] that ships events to a remote [`Server`](crate::Server)
/// with reconnect, replay and spill-to-disk degradation. See the
/// module docs for the full policy.
pub struct SocketSink {
    codec: BlockCodec,
    cfg: NetConfig,
    dial: Box<dyn Dial>,
    conn: Option<Conn>,
    /// Fresh events awaiting a first send (newest at the back).
    mem: VecDeque<QueuedEvent>,
    /// Events to resend after a disconnect (oldest first; strictly
    /// older than everything in the spill).
    replay: VecDeque<QueuedEvent>,
    /// Disk overflow (older than `mem`, newer than `replay`).
    spill: Spill,
    /// Sent-but-unacked events, ascending sequence order.
    inflight: VecDeque<(u64, QueuedEvent)>,
    /// Recycled value buffers.
    pool: Vec<Vec<f64>>,
    rng: SplitMix64,
    backoff_until: Option<Instant>,
    backoff_streak: u32,
    failure: Failure,
    /// Frame encode buffer.
    frame_buf: Vec<u8>,
    /// Block encode buffer.
    block_buf: Vec<u8>,
    stats: NetStats,
}

impl std::fmt::Debug for SocketSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketSink")
            .field("codec", &self.codec)
            .field("connected", &self.conn.is_some())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SocketSink {
    /// A sink dialing through `dial`, spilling under `spill_dir`.
    ///
    /// Spill segments left by a previous process (same directory, same
    /// geometry) are recovered and drain before anything new; a
    /// geometry mismatch is an error.
    pub fn new(
        dial: impl Dial + 'static,
        codec: BlockCodec,
        spill_dir: impl Into<PathBuf>,
        cfg: NetConfig,
    ) -> Result<Self> {
        if cfg.max_inflight == 0 {
            return Err(NetError::Invalid("max_inflight must be at least 1".into()));
        }
        if cfg.mem_events == 0 {
            return Err(NetError::Invalid("mem_events must be at least 1".into()));
        }
        let spill = Spill::open(
            spill_dir,
            codec,
            cfg.spill_segment_events,
            cfg.max_spill_segments,
        )?;
        Ok(Self {
            codec,
            cfg,
            dial: Box::new(dial),
            conn: None,
            mem: VecDeque::new(),
            replay: VecDeque::new(),
            spill,
            inflight: VecDeque::new(),
            pool: Vec::new(),
            rng: SplitMix64::new(cfg.jitter_seed),
            backoff_until: None,
            backoff_streak: 0,
            failure: Failure::default(),
            frame_buf: Vec::new(),
            block_buf: Vec::new(),
            stats: NetStats::default(),
        })
    }

    /// Convenience constructor: TCP to `addr`.
    pub fn tcp(
        addr: impl ToSocketAddrs,
        codec: BlockCodec,
        spill_dir: impl Into<PathBuf>,
        cfg: NetConfig,
    ) -> Result<Self> {
        Self::new(TcpDialer::new(addr)?, codec, spill_dir, cfg)
    }

    /// Current counters (queue depths computed live).
    pub fn stats(&self) -> NetStats {
        let mut stats = self.stats;
        stats.queued = self.mem.len() as u64
            + self.replay.len() as u64
            + self.inflight.len() as u64
            + self.spill.events();
        stats.inflight = self.inflight.len() as u64;
        stats.spill_bytes = self.spill.bytes_written();
        stats.spill_segments = self.spill.segments();
        stats.connected = self.conn.is_some();
        stats
    }

    /// Events pending anywhere in the pipeline.
    fn pending(&self) -> u64 {
        self.stats().queued
    }

    /// Errors that a reconnect can plausibly cure.
    fn is_transient(e: &NetError) -> bool {
        matches!(
            e,
            NetError::Io(_)
                | NetError::Timeout(_)
                | NetError::Corrupt { .. }
                | NetError::Protocol(_)
        )
    }

    /// Latches the first fatal error; later errors are dropped.
    fn latch(&mut self, e: NetError) {
        if !self.failure.failed {
            self.failure.failed = true;
            self.failure.message = e.to_string();
            self.failure.first = Some(e);
        }
    }

    /// First call after a latch returns the original error; later
    /// calls a rendered summary (first-error-wins, like `QueueSink`).
    fn latched(&mut self) -> Result<()> {
        if !self.failure.failed {
            return Ok(());
        }
        Err(self.failure.first.take().unwrap_or_else(|| {
            NetError::Sink(CoreError::Persist(format!(
                "transport permanently failed: {}",
                self.failure.message
            )))
        }))
    }

    fn recycle(&mut self, values: Vec<f64>) {
        if self.pool.len() < 64 {
            self.pool.push(values);
        }
    }

    /// Schedules the next reconnect attempt: capped exponential backoff
    /// with ±50% jitter.
    fn arm_backoff(&mut self) {
        self.stats.backoffs += 1;
        self.backoff_streak = self.backoff_streak.saturating_add(1);
        let doublings = self.backoff_streak.saturating_sub(1).min(16);
        let base = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.cfg.backoff_max);
        let delay = base.mul_f64(0.5 + self.rng.next_f64());
        self.backoff_until = Some(Instant::now() + delay);
    }

    /// Tears down the connection (if any), requeues unacked in-flight
    /// events for replay in order, and arms backoff.
    fn on_disconnect(&mut self) {
        if self.conn.take().is_some() {
            self.stats.disconnects += 1;
        }
        self.stats.retransmitted += self.inflight.len() as u64;
        while let Some((_, ev)) = self.inflight.pop_back() {
            self.replay.push_front(ev);
        }
        self.arm_backoff();
        // Persist the spill tail: if this process dies during the
        // outage, the next one recovers what was flushed.
        if let Err(e) = self.spill.flush() {
            self.latch(e);
        }
    }

    /// One connection attempt including the hello/ack handshake.
    fn attempt_connect(&mut self) -> Result<Conn> {
        let mut link = self.dial.dial(self.cfg.connect_timeout)?;
        link.set_write_timeout(Some(self.cfg.write_timeout))?;
        self.frame_buf.clear();
        wire::encode_frame(
            &mut self.frame_buf,
            FrameKind::Hello,
            0,
            &wire::hello_payload(&self.codec),
        )?;
        link.write_all(&self.frame_buf)?;
        link.flush()?;
        let mut reader = FrameReader::new();
        match reader.read_frame(
            link.as_mut(),
            Some(self.cfg.ack_timeout),
            self.cfg.ack_timeout,
        )? {
            ReadOutcome::Frame(f) if f.kind == FrameKind::Ack && f.seq == 0 => {}
            ReadOutcome::Frame(f) if f.kind == FrameKind::Reject => {
                return Err(NetError::Handshake(
                    String::from_utf8_lossy(f.payload).into_owned(),
                ));
            }
            ReadOutcome::Frame(f) => {
                return Err(NetError::Protocol(format!(
                    "expected handshake ack, got {:?} frame",
                    f.kind
                )));
            }
            ReadOutcome::Idle => {
                return Err(NetError::Timeout("no handshake ack from server".into()));
            }
            ReadOutcome::Eof => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed during handshake",
                )));
            }
        }
        Ok(Conn {
            link,
            reader,
            next_seq: 1,
            bye_sent: false,
        })
    }

    /// Tries to connect once. `Ok(true)` on success, `Ok(false)` after
    /// a transient failure (backoff armed); fatal errors propagate.
    fn try_connect(&mut self) -> Result<bool> {
        match self.attempt_connect() {
            Ok(conn) => {
                self.conn = Some(conn);
                self.backoff_streak = 0;
                self.backoff_until = None;
                self.stats.connects += 1;
                Ok(true)
            }
            Err(e) if Self::is_transient(&e) => {
                self.stats.connect_failures += 1;
                self.arm_backoff();
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Next event due on the wire: replay, then spill, then fresh.
    fn next_to_send(&mut self) -> Result<Option<QueuedEvent>> {
        if let Some(ev) = self.replay.pop_front() {
            return Ok(Some(ev));
        }
        if let Some(ev) = self.spill.pop()? {
            self.stats.drained += 1;
            return Ok(Some(ev));
        }
        Ok(self.mem.pop_front())
    }

    /// Retires in-flight events covered by cumulative ack `seq`.
    fn retire(&mut self, seq: u64) {
        while self.inflight.front().is_some_and(|(s, _)| *s <= seq) {
            if let Some((_, ev)) = self.inflight.pop_front() {
                self.stats.acked += 1;
                self.recycle(ev.values);
            }
        }
    }

    /// Reads at most one server frame. `Ok(true)` means an ack arrived
    /// (retiring the covered in-flight events); `Ok(false)` means the
    /// line was idle. A reject is fatal; anything else unexpected is a
    /// fault of this connection.
    fn poll_acks(&mut self, wait: bool) -> Result<bool> {
        let first = if wait {
            self.cfg.ack_timeout
        } else {
            self.cfg.poll_timeout
        };
        let complete_within = self.cfg.ack_timeout;
        let Some(conn) = self.conn.as_mut() else {
            return Ok(false);
        };
        let acked_seq =
            match conn
                .reader
                .read_frame(conn.link.as_mut(), Some(first), complete_within)?
            {
                ReadOutcome::Idle => return Ok(false),
                ReadOutcome::Eof => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                ReadOutcome::Frame(f) => match f.kind {
                    FrameKind::Ack => f.seq,
                    FrameKind::Reject => {
                        return Err(NetError::Handshake(
                            String::from_utf8_lossy(f.payload).into_owned(),
                        ));
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "unexpected {other:?} frame from server"
                        )));
                    }
                },
            };
        self.retire(acked_seq);
        Ok(true)
    }

    /// Encodes and writes one data frame. The event joins `inflight`
    /// *before* the write, so a failed write replays it instead of
    /// losing it.
    fn send_one(&mut self, ev: QueuedEvent) -> Result<()> {
        self.block_buf.clear();
        let encoded = self.codec.encode_block(
            &mut self.block_buf,
            ev.node,
            std::slice::from_ref(&ev.window),
            &ev.values,
        );
        if let Err(e) = encoded {
            // Geometry mismatch between event and codec: usage error.
            self.replay.push_front(ev);
            return Err(e.into());
        }
        let Some(conn) = self.conn.as_mut() else {
            self.replay.push_front(ev);
            return Err(NetError::Invalid("send without a connection".into()));
        };
        self.frame_buf.clear();
        let seq = conn.next_seq;
        wire::encode_frame(&mut self.frame_buf, FrameKind::Data, seq, &self.block_buf)?;
        conn.next_seq += 1;
        self.inflight.push_back((seq, ev));
        conn.link.write_all(&self.frame_buf)?;
        self.stats.sent += 1;
        // Opportunistic harvest every few sends: without it acks are
        // only read once the window is *full*, and a lossy link that
        // kills connections young starves `retire` forever — the
        // window never fills before the next fault, so replays loop
        // without ever being credited. The poll blocks at most
        // `poll_timeout` and returns as soon as an ack is buffered.
        let stride = (self.cfg.max_inflight / 8).max(1);
        if self.inflight.len().is_multiple_of(stride) {
            self.poll_acks(false)?;
        }
        Ok(())
    }

    /// One unit of connected work: wait for ack room when the window
    /// is full, else move one event onto the wire. `Ok(true)` = made
    /// progress (call again), `Ok(false)` = nothing sendable remains.
    fn drive_sends(&mut self) -> Result<bool> {
        if self.inflight.len() >= self.cfg.max_inflight {
            // Producer backpressure, bounded by ack_timeout: in steady
            // state the server's cumulative acks are already buffered
            // on the socket and this returns immediately.
            if self.poll_acks(true)? {
                return Ok(true);
            }
            return Err(NetError::Timeout(format!(
                "no ack progress within {:?} with a full in-flight window",
                self.cfg.ack_timeout
            )));
        }
        match self.next_to_send()? {
            Some(ev) => {
                self.send_one(ev)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drives the pipeline as far as it can go without blocking on an
    /// outage: connect (unless backing off), then push sendable events
    /// through the in-flight window. Connection faults requeue and arm
    /// backoff; only fatal errors propagate.
    fn pump(&mut self) -> Result<()> {
        loop {
            if self.conn.is_none() {
                if self.replay.is_empty() && self.spill.events() == 0 && self.mem.is_empty() {
                    return Ok(());
                }
                if self
                    .backoff_until
                    .is_some_and(|until| Instant::now() < until)
                {
                    // Outage: keep buffering locally, retry later.
                    return Ok(());
                }
                if !self.try_connect()? {
                    return Ok(());
                }
            }
            match self.drive_sends() {
                Ok(true) => continue,
                Ok(false) => return Ok(()),
                Err(e) if Self::is_transient(&e) => {
                    self.on_disconnect();
                    // Next iteration observes the armed backoff and
                    // returns without blocking the producer.
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Moves memory-queue overflow into the spill, oldest first (the
    /// spill always holds older events than `mem`, so drain order stays
    /// arrival order).
    fn overflow_mem(&mut self) -> Result<()> {
        while self.mem.len() > self.cfg.mem_events {
            let Some(ev) = self.mem.pop_front() else {
                break;
            };
            let dropped = self.spill.push(&ev)?;
            self.stats.spilled += 1;
            self.stats.dropped += dropped;
            self.recycle(ev.values);
        }
        Ok(())
    }

    /// The `on_event` body, in transport error terms.
    fn push_event(&mut self, event: &FleetEvent) -> Result<()> {
        self.latched()?;
        let node = u32::try_from(event.node).map_err(|_| {
            NetError::Invalid(format!("node {} exceeds the u32 wire bound", event.node))
        })?;
        let values = self.pool.pop().unwrap_or_default();
        self.mem.push_back(QueuedEvent::fill(node, event, values));
        self.stats.accepted += 1;
        if let Err(e) = self.pump() {
            self.latch(e);
        } else if let Err(e) = self.overflow_mem() {
            self.latch(e);
        }
        self.latched()
    }

    /// Sends the stream-closing bye frame once per connection.
    fn send_bye(&mut self) -> Result<()> {
        let Some(conn) = self.conn.as_mut() else {
            return Ok(());
        };
        if conn.bye_sent {
            return Ok(());
        }
        self.frame_buf.clear();
        wire::encode_frame(
            &mut self.frame_buf,
            FrameKind::Bye,
            conn.next_seq.saturating_sub(1),
            &[],
        )?;
        conn.link.write_all(&self.frame_buf)?;
        conn.link.flush()?;
        conn.bye_sent = true;
        Ok(())
    }

    /// One shutdown-drain step while connected: fill the window, send
    /// bye once only unacked events remain, then wait for ack progress.
    fn drain_step(&mut self) -> Result<()> {
        loop {
            if self.inflight.len() >= self.cfg.max_inflight {
                break;
            }
            match self.next_to_send()? {
                Some(ev) => self.send_one(ev)?,
                None => break,
            }
        }
        if self.inflight.is_empty() {
            return Ok(());
        }
        let sendable_left =
            !self.replay.is_empty() || self.spill.events() > 0 || !self.mem.is_empty();
        if !sendable_left {
            // Only unacked events remain: solicit the final cumulative
            // ack (the server acks everything and closes on bye).
            self.send_bye()?;
        }
        if self.poll_acks(true)? {
            return Ok(());
        }
        Err(NetError::Timeout(format!(
            "no ack progress within {:?} during shutdown drain",
            self.cfg.ack_timeout
        )))
    }

    fn finish_inner(&mut self, deadline: Instant) -> Result<()> {
        loop {
            self.latched()?;
            if self.pending() == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout(format!(
                    "shutdown drain incomplete: {} events still queued \
                     (spilled events persist on disk for the next sink)",
                    self.pending()
                )));
            }
            if self.conn.is_none() {
                if let Some(until) = self.backoff_until {
                    if now < until {
                        let nap = (until - now)
                            .min(Duration::from_millis(20))
                            .min(deadline - now);
                        std::thread::sleep(nap);
                        continue;
                    }
                }
                match self.try_connect() {
                    Ok(_) => {}
                    Err(e) => self.latch(e),
                }
                continue;
            }
            if let Err(e) = self.drain_step() {
                if Self::is_transient(&e) {
                    self.on_disconnect();
                } else {
                    self.latch(e);
                }
            }
        }
        let _ = self.send_bye();
        Ok(())
    }

    /// Drains every pending event — reconnecting with backoff as
    /// needed — until the server has acknowledged all of them, closes
    /// the stream, and returns final stats.
    ///
    /// `Err` when `timeout` expires first or a fatal error latched.
    /// Either way spilled events persist on disk and a future sink on
    /// the same spill directory will drain them; events still in the
    /// memory queues are lost with the process (their count is visible
    /// in [`NetStats::queued`]).
    pub fn finish(mut self, timeout: Duration) -> (NetStats, Result<()>) {
        let deadline = Instant::now() + timeout;
        let result = self.finish_inner(deadline);
        (self.stats(), result)
    }
}

impl FleetSink for SocketSink {
    fn on_event(&mut self, event: &FleetEvent) -> cwsmooth_core::error::Result<()> {
        self.push_event(event).map_err(CoreError::from)
    }
}

/// Snapshot-style export of [`SocketSink::stats`] under
/// `stage="socket"` — publish through a
/// [`cwsmooth_obs::MetricsHub`] (e.g. via
/// `cwsmooth_core::pipeline::Publish`) to surface transport health on
/// `GET /metrics`. Delegates to the [`Observe`] impl on [`NetStats`].
impl Observe for SocketSink {
    fn observe(&self, out: &mut Snapshot) {
        self.stats().observe(out);
    }
}

/// The same `stage="socket"` series from a stats value alone — lets the
/// final counters returned by [`SocketSink::finish`] (which consumes
/// the sink) be published as a last snapshot. Reconnect behaviour is
/// readable directly: `cws_net_reconnects_total` counts
/// re-establishments after the first connect,
/// `cws_net_backoffs_total` the backoff periods armed.
impl Observe for NetStats {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "socket")];
        out.counter("cws_net_accepted_total", labels, self.accepted);
        out.counter("cws_net_sent_total", labels, self.sent);
        out.counter("cws_net_acked_total", labels, self.acked);
        out.counter("cws_net_retransmitted_total", labels, self.retransmitted);
        out.counter("cws_net_spilled_total", labels, self.spilled);
        out.counter("cws_net_drained_total", labels, self.drained);
        out.counter("cws_net_dropped_total", labels, self.dropped);
        out.counter("cws_net_connects_total", labels, self.connects);
        out.counter(
            "cws_net_reconnects_total",
            labels,
            self.connects.saturating_sub(1),
        );
        out.counter(
            "cws_net_connect_failures_total",
            labels,
            self.connect_failures,
        );
        out.counter("cws_net_disconnects_total", labels, self.disconnects);
        out.counter("cws_net_backoffs_total", labels, self.backoffs);
        out.counter("cws_net_spill_bytes_total", labels, self.spill_bytes);
        out.gauge("cws_net_queued", labels, self.queued as f64);
        out.gauge("cws_net_inflight", labels, self.inflight as f64);
        out.gauge("cws_net_spill_segments", labels, self.spill_segments as f64);
        out.gauge(
            "cws_net_connected",
            labels,
            if self.connected { 1.0 } else { 0.0 },
        );
    }
}

impl Drop for SocketSink {
    fn drop(&mut self) {
        // Best-effort durability: fresh (never-sent) events are newer
        // than everything in the spill, so appending them preserves
        // drain order for the next process. Sent-but-unacked events are
        // NOT re-spilled — behind newer events they would trip the
        // server's dedupe floor; a clean shutdown should use `finish`.
        while let Some(ev) = self.mem.pop_front() {
            if self.spill.push(&ev).is_err() {
                break;
            }
        }
        let _ = self.spill.flush();
        let _ = self.send_bye();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosHub};
    use cwsmooth_core::CsSignature;
    use cwsmooth_data::WindowSpec;
    use cwsmooth_store::Encoding;

    fn codec() -> BlockCodec {
        BlockCodec::new(Encoding::Exact, 2, WindowSpec { wl: 30, ws: 10 }).unwrap()
    }

    fn fleet_event(node: usize, window: usize) -> FleetEvent {
        let x = node as f64 + window as f64 * 0.01;
        FleetEvent {
            node,
            window_index: window,
            signature: CsSignature {
                re: vec![x, -x],
                im: vec![0.5 * x, 1.0 - x],
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cwsmooth-client-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let hub = ChaosHub::new();
        let dir = tmp_dir("cfg");
        let bad_inflight = NetConfig {
            max_inflight: 0,
            ..NetConfig::default()
        };
        assert!(SocketSink::new(
            hub.dialer(ChaosConfig::default()),
            codec(),
            &dir,
            bad_inflight
        )
        .is_err());
        let bad_mem = NetConfig {
            mem_events: 0,
            ..NetConfig::default()
        };
        assert!(
            SocketSink::new(hub.dialer(ChaosConfig::default()), codec(), &dir, bad_mem).is_err()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffers_then_spills_while_server_unreachable() {
        let hub = ChaosHub::new();
        hub.close();
        let dir = tmp_dir("offline");
        let cfg = NetConfig {
            mem_events: 2,
            spill_segment_events: 3,
            connect_timeout: Duration::from_millis(50),
            backoff_base: Duration::from_secs(5),
            backoff_max: Duration::from_secs(5),
            ..NetConfig::default()
        };
        let mut sink =
            SocketSink::new(hub.dialer(ChaosConfig::default()), codec(), &dir, cfg).unwrap();
        for i in 0..10usize {
            sink.on_event(&fleet_event(i % 3, i / 3)).unwrap();
        }
        let stats = sink.stats();
        assert_eq!(stats.accepted, 10);
        assert_eq!(stats.queued, 10, "nothing lost while unreachable");
        assert_eq!(stats.spilled, 8, "all but mem_events spilled");
        assert!(stats.connect_failures >= 1);
        assert!(!stats.connected);
        assert_eq!(stats.dropped, 0);
        drop(sink);
        // A fresh sink on the same directory recovers the spill.
        let sink2 =
            SocketSink::new(hub.dialer(ChaosConfig::default()), codec(), &dir, cfg).unwrap();
        assert_eq!(sink2.stats().queued, 10, "drop persisted the memory tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_node_is_invalid() {
        let hub = ChaosHub::new();
        hub.close();
        let dir = tmp_dir("node");
        let mut sink = SocketSink::new(
            hub.dialer(ChaosConfig::default()),
            codec(),
            &dir,
            NetConfig::default(),
        )
        .unwrap();
        let err = sink
            .push_event(&fleet_event(u32::MAX as usize + 1, 0))
            .unwrap_err();
        assert!(matches!(err, NetError::Invalid(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
