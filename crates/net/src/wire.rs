//! `.cws` wire framing: length-prefixed, CRC-32-guarded frames.
//!
//! A connection is a byte stream of *frames*. Every frame is guarded by
//! the same CRC-32 the on-disk `.cws` format uses, so any damage —
//! flipped bytes, truncation mid-frame, implausible field values —
//! surfaces [`NetError::Corrupt`], never a panic or a silent skip.
//!
//! ```text
//! frame   := magic[4]="CWSF" kind:u8 _:[u8;3]
//!            seq:u64 payload_len:u32              (20-byte header)
//!            payload[payload_len]
//!            crc:u32                              (over header + payload)
//!
//! hello   := version:u16 cws_file_header[32]      (kind 1, seq 0)
//! data    := one .cws block                       (kind 2, seq 1,2,3,...)
//! ack     := (empty; seq = highest data seq       (kind 3)
//!             processed and committed)
//! bye     := (empty; seq = last data seq sent)    (kind 4)
//! reject  := utf-8 reason                         (kind 5)
//! ```
//!
//! The handshake reuses the store's versioned 32-byte file header
//! (magic, format version, encoding mode, `l`, window spec — see
//! [`BlockCodec`]) wrapped with a wire protocol version, so both ends
//! agree on geometry before any data flows. Data frames carry whole
//! `.cws` blocks — the bytes on the wire are the bytes a store writes.
//! Sequence numbers are per-connection and strictly consecutive;
//! cumulative acks plus server-side `(node, window)` dedupe make replay
//! after a reconnect idempotent.

use crate::error::{NetError, Result};
use crate::link::Link;
use cwsmooth_store::codec::{self, BlockCodec};
use std::time::Duration;

/// Frame magic ("CWSF" on the wire).
pub const FRAME_MAGIC: [u8; 4] = *b"CWSF";
/// Wire protocol version carried in the hello payload.
pub const WIRE_VERSION: u16 = 1;
/// Fixed frame header length (magic, kind, pad, seq, payload length).
pub const FRAME_HEADER_LEN: usize = 20;
/// Largest accepted frame payload. A plausibility bound: the CRC catches
/// accidental damage, but a damaged length field must not size an
/// allocation before the CRC can be checked.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;
/// Hello payload length: wire version + `.cws` file header.
pub const HELLO_LEN: usize = 2 + codec::HEADER_LEN;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server stream opener: wire version + geometry header.
    Hello,
    /// Client → server: one `.cws` block of signature events.
    Data,
    /// Server → client: cumulative acknowledgement (`seq` = highest
    /// data sequence processed and committed downstream).
    Ack,
    /// Client → server: clean end of stream (`seq` = last data seq).
    Bye,
    /// Server → client: the stream is unacceptable (geometry mismatch);
    /// payload is a UTF-8 reason. Reconnecting cannot help.
    Reject,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Data => 2,
            FrameKind::Ack => 3,
            FrameKind::Bye => 4,
            FrameKind::Reject => 5,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::Ack),
            4 => Some(FrameKind::Bye),
            5 => Some(FrameKind::Reject),
            _ => None,
        }
    }
}

/// A parsed frame borrowing its payload from the read buffer.
#[derive(Debug)]
pub struct FrameView<'a> {
    /// Frame type.
    pub kind: FrameKind,
    /// Sequence / ack number (meaning depends on `kind`).
    pub seq: u64,
    /// Payload bytes (CRC already verified).
    pub payload: &'a [u8],
}

/// Appends one encoded frame to `out`. Errors only on an oversized
/// payload (a caller bug, not a data condition).
pub fn encode_frame(out: &mut Vec<u8>, kind: FrameKind, seq: u64, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(NetError::Invalid(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte bound",
            payload.len()
        )));
    }
    let start = out.len();
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind.code());
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = codec::crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Validated frame header fields (before payload and CRC are read).
struct FrameHeader {
    kind: FrameKind,
    seq: u64,
    payload_len: usize,
}

/// Validates the 20 fixed header bytes at stream offset `offset`.
fn parse_frame_header(h: &[u8], offset: u64) -> Result<FrameHeader> {
    let corrupt = |at: u64, message: String| NetError::Corrupt {
        offset: offset + at,
        message,
    };
    if h.len() < FRAME_HEADER_LEN {
        return Err(corrupt(
            h.len() as u64,
            format!(
                "frame header truncated ({} of {FRAME_HEADER_LEN} bytes)",
                h.len()
            ),
        ));
    }
    if h[..4] != FRAME_MAGIC {
        return Err(corrupt(0, "bad frame magic".into()));
    }
    let kind = FrameKind::from_code(h[4])
        .ok_or_else(|| corrupt(4, format!("unknown frame kind {}", h[4])))?;
    if h[5..8] != [0, 0, 0] {
        return Err(corrupt(5, "nonzero frame padding".into()));
    }
    // lint:allow(no-panic-paths): statically infallible — an 8-byte
    // slice always converts to [u8; 8] (length checked above).
    let seq = u64::from_le_bytes(h[8..16].try_into().unwrap());
    // lint:allow(no-panic-paths): statically infallible — a 4-byte
    // slice always converts to [u8; 4] (length checked above).
    let payload_len = u32::from_le_bytes(h[16..20].try_into().unwrap()) as usize;
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(corrupt(
            16,
            format!("payload length {payload_len} exceeds the {MAX_FRAME_PAYLOAD}-byte bound"),
        ));
    }
    Ok(FrameHeader {
        kind,
        seq,
        payload_len,
    })
}

/// Parses the frame starting at byte `at` of `bytes`. Returns
/// `Ok(None)` at a clean end of stream (`at == bytes.len()`); anything
/// between a frame boundary and a full valid frame is
/// [`NetError::Corrupt`]. On success also returns the offset of the
/// next frame.
pub fn parse_frame(bytes: &[u8], at: usize) -> Result<Option<(FrameView<'_>, usize)>> {
    if at == bytes.len() {
        return Ok(None);
    }
    let header = parse_frame_header(
        &bytes[at..(at + FRAME_HEADER_LEN).min(bytes.len())],
        at as u64,
    )?;
    let total = FRAME_HEADER_LEN + header.payload_len + 4;
    let avail = bytes.len() - at;
    if avail < total {
        return Err(NetError::Corrupt {
            offset: bytes.len() as u64,
            message: format!("frame truncated ({avail} of {total} bytes)"),
        });
    }
    let frame = &bytes[at..at + total];
    let stored = u32::from_le_bytes([
        frame[total - 4],
        frame[total - 3],
        frame[total - 2],
        frame[total - 1],
    ]);
    let actual = codec::crc32(&frame[..total - 4]);
    if stored != actual {
        return Err(NetError::Corrupt {
            offset: at as u64 + total as u64 - 4,
            message: format!("frame CRC mismatch (stored {stored:08x}, computed {actual:08x})"),
        });
    }
    Ok(Some((
        FrameView {
            kind: header.kind,
            seq: header.seq,
            payload: &frame[FRAME_HEADER_LEN..total - 4],
        },
        at + total,
    )))
}

/// Outcome of one [`FrameReader::read_frame`] call.
#[derive(Debug)]
pub enum ReadOutcome<'a> {
    /// A complete, CRC-verified frame.
    Frame(FrameView<'a>),
    /// The peer closed the stream at a frame boundary.
    Eof,
    /// The first-byte timeout elapsed with no data (only when a
    /// first-byte timeout was requested).
    Idle,
}

/// Incremental frame reader over a [`Link`], reusing one buffer.
///
/// Validation is shared with [`parse_frame`]: the same header checks,
/// the same payload bound, the same CRC. End-of-stream anywhere except
/// a frame boundary is [`NetError::Corrupt`]; a read timeout *after*
/// the first byte of a frame is [`NetError::Timeout`] (a stalled peer
/// mid-frame is a connection fault, not idleness).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Cumulative bytes consumed, for error offsets.
    consumed: u64,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards any partially-read frame and resets the stream offset.
    ///
    /// Call this when switching the reader to a *new* connection: a
    /// previous connection that died mid-frame leaves a stale prefix in
    /// the buffer, and parsing the new peer's bytes against it would
    /// reject every frame the new connection sends.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.consumed = 0;
    }

    /// Reads exactly `buf.len()` bytes. EOF before the first byte is
    /// [`Fill::Eof`]; a timeout before the first byte is [`Fill::Idle`]
    /// when `allow_idle` (else [`NetError::Timeout`]); EOF or a timeout
    /// *after* the first byte is always an error.
    fn read_full(
        link: &mut dyn Link,
        buf: &mut [u8],
        offset: u64,
        complete_within: Duration,
        allow_idle: bool,
    ) -> Result<Fill> {
        let mut got = 0usize;
        while got < buf.len() {
            match link.read(&mut buf[got..]) {
                Ok(0) => {
                    if got == 0 {
                        return Ok(Fill::Eof);
                    }
                    return Err(NetError::Corrupt {
                        offset: offset + got as u64,
                        message: format!("stream ended mid-frame ({got} of {} bytes)", buf.len()),
                    });
                }
                Ok(n) => {
                    if got == 0 {
                        // First byte landed: the rest of the frame must
                        // follow promptly, however patient the caller
                        // was about idleness.
                        link.set_read_timeout(Some(complete_within))?;
                    }
                    got += n;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if got == 0 && allow_idle {
                        return Ok(Fill::Idle);
                    }
                    return Err(NetError::Timeout(format!(
                        "peer stalled mid-frame ({got} of {} bytes)",
                        buf.len()
                    )));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(Fill::Full)
    }

    /// Reads the next frame. `first_byte` bounds the wait for the
    /// frame's first byte (`None` blocks indefinitely);
    /// `complete_within` bounds the rest of the frame once started.
    pub fn read_frame(
        &mut self,
        link: &mut dyn Link,
        first_byte: Option<Duration>,
        complete_within: Duration,
    ) -> Result<ReadOutcome<'_>> {
        link.set_read_timeout(first_byte)?;
        let offset = self.consumed;
        self.buf.clear();
        self.buf.resize(FRAME_HEADER_LEN, 0);
        let filled = Self::read_full(
            link,
            &mut self.buf[..],
            offset,
            complete_within,
            first_byte.is_some(),
        );
        match filled? {
            Fill::Full => {}
            Fill::Eof => return Ok(ReadOutcome::Eof),
            Fill::Idle => return Ok(ReadOutcome::Idle),
        }
        let header = parse_frame_header(&self.buf, offset)?;
        let total = FRAME_HEADER_LEN + header.payload_len + 4;
        self.buf.resize(total, 0);
        let (_, tail) = self.buf.split_at_mut(FRAME_HEADER_LEN);
        match Self::read_full(
            link,
            tail,
            offset + FRAME_HEADER_LEN as u64,
            complete_within,
            false,
        )? {
            Fill::Full => {}
            Fill::Eof | Fill::Idle => {
                return Err(NetError::Corrupt {
                    offset: offset + FRAME_HEADER_LEN as u64,
                    message: "stream ended between frame header and payload".into(),
                });
            }
        }
        let stored = u32::from_le_bytes([
            self.buf[total - 4],
            self.buf[total - 3],
            self.buf[total - 2],
            self.buf[total - 1],
        ]);
        let actual = codec::crc32(&self.buf[..total - 4]);
        if stored != actual {
            return Err(NetError::Corrupt {
                offset: offset + total as u64 - 4,
                message: format!("frame CRC mismatch (stored {stored:08x}, computed {actual:08x})"),
            });
        }
        self.consumed = offset + total as u64;
        Ok(ReadOutcome::Frame(FrameView {
            kind: header.kind,
            seq: header.seq,
            payload: &self.buf[FRAME_HEADER_LEN..total - 4],
        }))
    }
}

/// Result of filling a fixed-size buffer from a link.
enum Fill {
    /// Buffer completely filled.
    Full,
    /// Peer closed before the first byte.
    Eof,
    /// First-byte timeout elapsed with the link still open.
    Idle,
}

/// Builds the hello payload: wire version + geometry header.
pub fn hello_payload(codec: &BlockCodec) -> Vec<u8> {
    let mut out = Vec::with_capacity(HELLO_LEN);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&codec.header_bytes());
    out
}

/// Parses and validates a hello payload into the sender's geometry.
pub fn parse_hello(payload: &[u8]) -> Result<BlockCodec> {
    if payload.len() != HELLO_LEN {
        return Err(NetError::Corrupt {
            offset: 0,
            message: format!(
                "hello payload is {} bytes, expected {HELLO_LEN}",
                payload.len()
            ),
        });
    }
    let version = u16::from_le_bytes([payload[0], payload[1]]);
    if version != WIRE_VERSION {
        return Err(NetError::Handshake(format!(
            "peer speaks wire version {version}, this build speaks {WIRE_VERSION}"
        )));
    }
    Ok(BlockCodec::parse_header(&payload[2..])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_data::WindowSpec;
    use cwsmooth_store::Encoding;

    fn codec() -> BlockCodec {
        BlockCodec::new(Encoding::Exact, 2, WindowSpec { wl: 30, ws: 10 }).unwrap()
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        let mut bytes = Vec::new();
        let payloads: [(FrameKind, u64, Vec<u8>); 4] = [
            (FrameKind::Hello, 0, hello_payload(&codec())),
            (FrameKind::Data, 1, vec![7u8; 33]),
            (FrameKind::Ack, 1, Vec::new()),
            (FrameKind::Bye, 1, Vec::new()),
        ];
        for (kind, seq, payload) in &payloads {
            encode_frame(&mut bytes, *kind, *seq, payload).unwrap();
        }
        let mut at = 0usize;
        for (kind, seq, payload) in &payloads {
            let (frame, next) = parse_frame(&bytes, at).unwrap().unwrap();
            assert_eq!(frame.kind, *kind);
            assert_eq!(frame.seq, *seq);
            assert_eq!(frame.payload, &payload[..]);
            at = next;
        }
        assert!(parse_frame(&bytes, at).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn hello_roundtrip_and_version_gate() {
        let c = codec();
        let payload = hello_payload(&c);
        assert_eq!(payload.len(), HELLO_LEN);
        assert_eq!(parse_hello(&payload).unwrap(), c);
        let mut wrong = payload.clone();
        wrong[0] = 99;
        assert!(matches!(parse_hello(&wrong), Err(NetError::Handshake(_))));
        assert!(parse_hello(&payload[..HELLO_LEN - 1]).is_err());
    }

    #[test]
    fn oversized_payload_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, FrameKind::Data, 1, &[1, 2, 3]).unwrap();
        // Claim a preposterous payload length and fix up the CRC: the
        // bound must trip on the field value itself.
        bytes[16..20].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        let err = parse_frame(&bytes, 0).unwrap_err();
        assert!(matches!(err, NetError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn encode_rejects_oversized_payload() {
        let mut bytes = Vec::new();
        let huge = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        assert!(encode_frame(&mut bytes, FrameKind::Data, 1, &huge).is_err());
    }
}
