//! Tiny deterministic RNG for backoff jitter and chaos fault schedules.
//!
//! SplitMix64 (Steele, Lea, Flood 2014): one multiply-xorshift chain,
//! statistically fine for jitter and fault sampling, and — unlike the
//! workspace `rand` shim — dependency-free, so the transport crate stays
//! std-only.

/// SplitMix64 stream: every `next_*` call advances one step.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53-bit mantissa).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform in `0..n` (`0` when `n == 0`).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Modulo bias is irrelevant at fault-sampling fidelity.
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn floats_are_unit_interval_and_chance_extremes_hold() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
            assert!(r.below(5) < 5);
            assert_eq!(r.below(0), 0);
        }
    }
}
