//! Exhaustive corruption fuzzing for the `.cws` wire framing.
//!
//! The wire contract (ISSUE 8, satellite c): every single-bit flip and
//! every truncation of a framed stream must surface a [`NetError`] from
//! the decoder — never a panic, and never a silently skipped or
//! altered frame. These loops are exhaustive over the stream, not
//! sampled: each of the `8 * len` possible bit flips and each of the
//! `len` possible truncation points is tried.

use cwsmooth_data::WindowSpec;
use cwsmooth_net::wire::{encode_frame, parse_frame, parse_hello, FrameKind, FRAME_HEADER_LEN};
use cwsmooth_net::{BlockCodec, NetError};
use cwsmooth_store::Encoding;

fn codec() -> BlockCodec {
    BlockCodec::new(Encoding::Exact, 2, WindowSpec { wl: 30, ws: 10 }).unwrap()
}

/// A realistic multi-frame stream: hello, two data frames, an ack and
/// a bye — every frame kind that carries distinct payload shapes.
fn sample_stream() -> (Vec<u8>, usize) {
    let c = codec();
    let mut block = Vec::new();
    c.encode_block(
        &mut block,
        7,
        &[11, 12],
        &[0.25, -1.5, 3.0, 0.125, 2.0, -0.5, 1.5, 0.75],
    )
    .unwrap();
    let mut stream = Vec::new();
    encode_frame(
        &mut stream,
        FrameKind::Hello,
        0,
        &cwsmooth_net::wire::hello_payload(&c),
    )
    .unwrap();
    encode_frame(&mut stream, FrameKind::Data, 1, &block).unwrap();
    encode_frame(&mut stream, FrameKind::Data, 2, &block).unwrap();
    encode_frame(&mut stream, FrameKind::Ack, 2, &[]).unwrap();
    encode_frame(&mut stream, FrameKind::Bye, 2, &[]).unwrap();
    (stream, 5)
}

/// Walks a byte stream with [`parse_frame`], returning either the list
/// of `(kind, seq, payload)` tuples or the first decode error.
fn decode_all(bytes: &[u8]) -> Result<Vec<(FrameKind, u64, Vec<u8>)>, NetError> {
    let mut frames = Vec::new();
    let mut at = 0;
    while let Some((frame, next)) = parse_frame(bytes, at)? {
        frames.push((frame.kind, frame.seq, frame.payload.to_vec()));
        assert!(next > at, "parser must make progress");
        at = next;
    }
    Ok(frames)
}

#[test]
fn pristine_stream_decodes_fully() {
    let (stream, frames) = sample_stream();
    let decoded = decode_all(&stream).unwrap();
    assert_eq!(decoded.len(), frames);
    assert_eq!(decoded[1].0, FrameKind::Data);
    assert_eq!(decoded[4], (FrameKind::Bye, 2, Vec::new()));
}

/// Every one of the `8 * len` single-bit flips must produce a decode
/// error. No flip may panic, and no flip may yield a "successful"
/// decode — the CRC covers header and payload alike, and the header
/// fields (magic, kind, padding, length) are each validated besides.
#[test]
fn every_single_bit_flip_is_detected() {
    let (stream, _) = sample_stream();
    for byte in 0..stream.len() {
        for bit in 0..8 {
            let mut damaged = stream.clone();
            damaged[byte] ^= 1 << bit;
            let err = match decode_all(&damaged) {
                Err(e) => e,
                Ok(frames) => panic!(
                    "flip of bit {bit} in byte {byte} decoded {} frames silently",
                    frames.len()
                ),
            };
            match err {
                NetError::Corrupt { .. } => {}
                other => panic!("flip of bit {bit} in byte {byte} gave {other}, not Corrupt"),
            }
        }
    }
}

/// Every truncation point must either be a clean frame boundary (the
/// prefix decodes to fewer whole frames) or surface `Corrupt` — a
/// partial frame is damage, not a shorter message.
#[test]
fn every_truncation_is_a_boundary_or_corrupt() {
    let (stream, total) = sample_stream();
    // Recover the true boundary offsets from a clean parse.
    let mut boundaries = vec![0usize];
    let mut at = 0;
    while let Some((_, next)) = parse_frame(&stream, at).unwrap() {
        boundaries.push(next);
        at = next;
    }
    assert_eq!(boundaries.len(), total + 1);

    for cut in 0..stream.len() {
        let prefix = &stream[..cut];
        match decode_all(prefix) {
            Ok(frames) => {
                assert!(
                    boundaries.contains(&cut),
                    "truncation at {cut} decoded {} frames but is not a frame boundary",
                    frames.len()
                );
                // At boundary k the prefix holds exactly the first k
                // frames: the boundaries strictly below `cut` are 0
                // and the ends of frames 1..k-1 — k in total.
                assert_eq!(
                    frames.len(),
                    boundaries.iter().filter(|&&b| b < cut).count()
                );
            }
            Err(NetError::Corrupt { .. }) => {
                assert!(
                    !boundaries.contains(&cut),
                    "truncation at clean boundary {cut} reported Corrupt"
                );
            }
            Err(other) => panic!("truncation at {cut} gave {other}, not Corrupt"),
        }
    }
}

/// Flipping bits in a hello payload must never panic in
/// [`parse_hello`]: every outcome is `Ok` (flip landed in a dimension
/// we cannot distinguish — caught later by geometry equality), a
/// `Handshake` version error, or a `Corrupt`/`Invalid` header error.
#[test]
fn hello_payload_bit_flips_never_panic() {
    let c = codec();
    let hello = cwsmooth_net::wire::hello_payload(&c);
    for byte in 0..hello.len() {
        for bit in 0..8 {
            let mut damaged = hello.clone();
            damaged[byte] ^= 1 << bit;
            match parse_hello(&damaged) {
                Ok(parsed) => {
                    // A flip that still parses must not be a silent
                    // no-op: the parsed geometry differs, so the
                    // server's equality check rejects the session.
                    assert_ne!(parsed, c, "flip of bit {bit} in byte {byte} was invisible");
                }
                Err(NetError::Corrupt { .. })
                | Err(NetError::Handshake(_))
                | Err(NetError::Invalid(_)) => {}
                Err(other) => {
                    panic!("hello flip of bit {bit} in byte {byte} gave {other}")
                }
            }
        }
    }
}

/// Truncated hello payloads are always `Corrupt`, never a panic or an
/// out-of-bounds read.
#[test]
fn hello_truncations_are_corrupt() {
    let c = codec();
    let hello = cwsmooth_net::wire::hello_payload(&c);
    for cut in 0..hello.len() {
        match parse_hello(&hello[..cut]) {
            Err(NetError::Corrupt { .. }) => {}
            Ok(_) => panic!("truncated hello ({cut} bytes) parsed"),
            Err(other) => panic!("truncated hello ({cut} bytes) gave {other}"),
        }
    }
}

/// Oversized length fields must be rejected before any allocation: a
/// header claiming a payload beyond `MAX_FRAME_PAYLOAD` is `Corrupt`
/// even though the CRC bytes are unreachable.
#[test]
fn oversized_length_is_rejected_without_allocation() {
    let mut frame = Vec::new();
    encode_frame(&mut frame, FrameKind::Ack, 9, &[]).unwrap();
    // Patch payload_len (bytes 16..20 of the header) to a huge value.
    let huge = (u32::MAX).to_le_bytes();
    frame[16..FRAME_HEADER_LEN].copy_from_slice(&huge);
    match parse_frame(&frame, 0) {
        Err(NetError::Corrupt { .. }) => {}
        other => panic!("oversized length gave {other:?}"),
    }
}
