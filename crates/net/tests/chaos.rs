//! Chaos harness: kill-and-restart integration tests over the seeded
//! fault-injecting [`ChaosHub`] transport.
//!
//! Every test drives the *real* [`SocketSink`] client and [`Server`]
//! against an in-memory duplex that injects drops, byte flips, partial
//! writes, resets and delays on a deterministic per-seed schedule, and
//! asserts the two transport guarantees end to end:
//!
//! 1. **Zero acknowledged-block loss** — every event the client
//!    reported delivered (`dropped == 0`, `finish` returned `Ok`) is
//!    present in the consumer's store, exactly once.
//! 2. **Byte identity** — the store the remote pipeline produced holds
//!    the same block bytes, in the same order, as a store fed the same
//!    events synchronously in-process. Segment *boundaries* may differ
//!    after a consumer restart (recovery starts a fresh segment), so
//!    identity is checked over the concatenated block bytes with the
//!    32-byte file headers stripped.
//!
//! The full sweep runs `CHAOS_SEEDS` seeds (default 16); CI sets
//! `CHAOS_SEEDS=8` for a fast subset. Seed values are identical
//! prefixes, so a CI failure always reproduces locally.

use std::path::Path;
use std::time::Duration;

use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_core::CsSignature;
use cwsmooth_data::WindowSpec;
use cwsmooth_net::{
    BlockCodec, ChaosConfig, ChaosHub, NetConfig, NetError, Server, ServerConfig, SocketSink,
};
use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};

const L: usize = 2;
const SPEC: WindowSpec = WindowSpec { wl: 30, ws: 10 };
const DEFAULT_SEEDS: u64 = 16;

fn seed_count() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEEDS)
}

fn codec() -> BlockCodec {
    BlockCodec::new(Encoding::Exact, L, SPEC).unwrap()
}

/// `block_events = 1` makes every push a complete on-disk block, so
/// block bytes are a deterministic function of the push sequence.
fn store_cfg() -> StoreConfig {
    StoreConfig::default()
        .with_encoding(Encoding::Exact)
        .with_block_events(1)
        .with_segment_events(64)
}

fn open_store(dir: &Path) -> SignatureStore {
    SignatureStore::open(dir, SPEC, L, store_cfg()).unwrap()
}

/// Deterministic event for `(node, window)`.
fn event(node: usize, window: usize) -> FleetEvent {
    let base = node as f64 + window as f64 * 0.001;
    FleetEvent {
        node,
        window_index: window,
        signature: CsSignature {
            re: vec![base, -base],
            im: vec![base * 0.5, base * 2.0],
        },
    }
}

/// The full feed, node-major interleaved: for each window, every node.
fn feed(nodes: usize, windows: usize) -> Vec<FleetEvent> {
    let mut out = Vec::with_capacity(nodes * windows);
    for w in 0..windows {
        for n in 0..nodes {
            out.push(event(n, w));
        }
    }
    out
}

/// Concatenated block bytes of every segment in id order, 32-byte file
/// headers stripped — invariant under segment-boundary placement.
fn fingerprint(dir: &Path) -> Vec<u8> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "cws"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let bytes = std::fs::read(&p).unwrap();
        assert!(
            bytes.len() >= 32,
            "segment {} shorter than its header",
            p.display()
        );
        out.extend_from_slice(&bytes[32..]);
    }
    out
}

/// Feeds `events` straight into a store — the sync in-process baseline.
fn baseline(dir: &Path, events: &[FleetEvent]) -> Vec<u8> {
    let mut store = open_store(dir);
    for e in events {
        store.on_event(e).unwrap();
    }
    store.flush().unwrap();
    drop(store);
    fingerprint(dir)
}

/// Fast-reconnect client config for the chaos tests. `max_inflight`
/// must stay well above the server's `ack_every` or the in-flight
/// window fills before the first ack can arrive.
fn client_cfg() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_secs(1),
        ack_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(40),
        max_inflight: 64,
        mem_events: 64,
        ..NetConfig::default()
    }
}

/// Frequent acks keep the chaos runs snappy on a single CPU.
fn server_cfg() -> ServerConfig {
    ServerConfig {
        ack_every: 8,
        ..ServerConfig::default()
    }
}

/// Spawns a serve loop over `hub`, owning `store`. Returns the store
/// (flushed) and the serve result when joined.
fn spawn_server(
    hub: &ChaosHub,
    mut server: Server,
    mut store: SignatureStore,
) -> std::thread::JoinHandle<(Result<(), NetError>, SignatureStore)> {
    let mut acceptor = hub.acceptor();
    std::thread::spawn(move || {
        let result = server.serve(&mut acceptor, &mut store);
        let flush = store.flush().map_err(NetError::from);
        (result.and(flush), store)
    })
}

/// One full pipeline run under per-seed fault injection: every event
/// must land exactly once and the store must be byte-identical to the
/// sync baseline, regardless of drops, flips, partial writes, resets
/// and delays on the way.
#[test]
fn faulty_link_pipeline_is_lossless_and_byte_identical() {
    let events = feed(12, 25);
    let tmp = tempdir::scratch("chaos-faulty");
    let want = baseline(&tmp.join("baseline"), &events);

    for seed in 0..seed_count() {
        let hub = ChaosHub::new();
        let server = Server::new(codec(), server_cfg()).unwrap();
        let store_dir = tmp.join(format!("store-{seed}"));
        let handle = spawn_server(&hub, server, open_store(&store_dir));

        let chaos = ChaosConfig {
            seed: seed.wrapping_mul(0x9E37).wrapping_add(1),
            drop_rate: 0.01,
            flip_rate: 0.01,
            partial_rate: 0.03,
            reset_rate: 0.01,
            max_delay: Duration::from_micros(200),
        };
        let spill_dir = tmp.join(format!("spill-{seed}"));
        let mut sink =
            SocketSink::new(hub.dialer(chaos), codec(), &spill_dir, client_cfg()).unwrap();
        for e in &events {
            sink.on_event(e).unwrap();
        }
        let (stats, result) = sink.finish(Duration::from_secs(60));
        result.unwrap_or_else(|e| panic!("seed {seed}: finish failed: {e} (stats: {stats:?})"));
        assert_eq!(stats.dropped, 0, "seed {seed}: events dropped");
        assert_eq!(stats.accepted, events.len() as u64, "seed {seed}");
        // `acked` counts retired in-flight entries; a retransmitted
        // copy of an already-acked event can be credited twice, so
        // this is a floor, not an equality.
        assert!(
            stats.acked >= events.len() as u64,
            "seed {seed}: unacked events"
        );

        hub.close();
        hub.kill_connections();
        let (served, store) = handle.join().unwrap();
        served.unwrap_or_else(|e| panic!("seed {seed}: serve failed: {e}"));
        assert_eq!(store.events(), events.len() as u64, "seed {seed}");
        drop(store);
        assert_eq!(
            fingerprint(&store_dir),
            want,
            "seed {seed}: remote store diverged from the sync baseline"
        );
    }
}

/// Kill the consumer process mid-stream (connections die like SIGKILL,
/// the store is reopened from disk, dedupe floors are re-seeded from
/// it) and assert the restarted pipeline converges to byte identity
/// with zero acknowledged loss.
#[test]
fn consumer_kill_and_restart_loses_nothing() {
    let events = feed(8, 30);
    let half = events.len() / 2;
    let tmp = tempdir::scratch("chaos-consumer-kill");
    let want = baseline(&tmp.join("baseline"), &events);

    let hub = ChaosHub::new();
    let store_dir = tmp.join("store");
    let server = Server::new(codec(), server_cfg()).unwrap();
    let handle = spawn_server(&hub, server, open_store(&store_dir));

    let spill_dir = tmp.join("spill");
    let mut sink = SocketSink::new(
        hub.dialer(ChaosConfig::default()),
        codec(),
        &spill_dir,
        client_cfg(),
    )
    .unwrap();
    for e in &events[..half] {
        sink.on_event(e).unwrap();
    }

    // SIGKILL the consumer: connections die instantly, nothing else
    // gets committed, and the first incarnation's store is dropped.
    hub.close();
    hub.kill_connections();
    let (served, store) = handle.join().unwrap();
    served.unwrap();
    let committed = store.events();
    assert!(committed <= half as u64);
    drop(store);

    // Restart: reopen the store from disk, re-seed the dedupe floors
    // from what actually survived, reopen the listener.
    let store = open_store(&store_dir);
    let mut server = Server::new(codec(), server_cfg()).unwrap();
    server.seed_from_store(&store).unwrap();
    hub.reopen();
    let handle = spawn_server(&hub, server, store);

    // The same client keeps pushing; unacked events retransmit and the
    // re-seeded floors dedupe whatever had already been committed.
    for e in &events[half..] {
        sink.on_event(e).unwrap();
    }
    let (stats, result) = sink.finish(Duration::from_secs(60));
    result.unwrap();
    assert_eq!(stats.dropped, 0);
    assert!(stats.acked >= events.len() as u64);
    assert!(stats.disconnects >= 1, "the kill must have been observed");

    hub.close();
    hub.kill_connections();
    let (served, store) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(store.events(), events.len() as u64);
    drop(store);
    assert_eq!(fingerprint(&store_dir), want);
}

/// Kill the producer process mid-stream while the server is down: its
/// spill directory survives, a fresh client recovers it, and the
/// restarted pipeline converges to byte identity.
#[test]
fn producer_kill_and_restart_recovers_the_spill() {
    let events = feed(6, 20);
    let half = events.len() / 2;
    let tmp = tempdir::scratch("chaos-producer-kill");
    let want = baseline(&tmp.join("baseline"), &events);

    // Server down from the start: everything the first incarnation
    // accepts lands in memory, then spills on drop.
    let hub = ChaosHub::new();
    hub.close();
    let spill_dir = tmp.join("spill");
    let mut cfg = client_cfg();
    cfg.mem_events = 4;
    cfg.spill_segment_events = 8;
    let mut sink =
        SocketSink::new(hub.dialer(ChaosConfig::default()), codec(), &spill_dir, cfg).unwrap();
    for e in &events[..half] {
        sink.on_event(e).unwrap();
    }
    let before = sink.stats();
    assert_eq!(before.dropped, 0);
    drop(sink); // "kill": the in-memory queue is spilled to disk

    // Server comes up; a fresh producer on the same spill directory
    // recovers the backlog and pushes the remainder.
    let store_dir = tmp.join("store");
    let server = Server::new(codec(), server_cfg()).unwrap();
    hub.reopen();
    let handle = spawn_server(&hub, server, open_store(&store_dir));

    let mut sink =
        SocketSink::new(hub.dialer(ChaosConfig::default()), codec(), &spill_dir, cfg).unwrap();
    assert_eq!(
        sink.stats().queued,
        half as u64,
        "spill recovery must resurface the first incarnation's backlog"
    );
    for e in &events[half..] {
        sink.on_event(e).unwrap();
    }
    let (stats, result) = sink.finish(Duration::from_secs(60));
    result.unwrap();
    assert_eq!(stats.dropped, 0);

    hub.close();
    hub.kill_connections();
    let (served, store) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(store.events(), events.len() as u64);
    drop(store);
    assert_eq!(fingerprint(&store_dir), want);
}

/// A bounded spill under a long outage drops exactly the oldest whole
/// segments, counts every drop, and delivers exactly the surviving
/// suffix once the server returns.
#[test]
fn bounded_spill_drops_oldest_and_accounts_exactly() {
    let tmp = tempdir::scratch("chaos-spill-budget");
    let hub = ChaosHub::new();
    hub.close();

    let mut cfg = client_cfg();
    cfg.mem_events = 4;
    cfg.spill_segment_events = 5;
    cfg.max_spill_segments = 2; // at most 10 spilled events survive
    let spill_dir = tmp.join("spill");
    let mut sink =
        SocketSink::new(hub.dialer(ChaosConfig::default()), codec(), &spill_dir, cfg).unwrap();

    let total = 40usize;
    for w in 0..total {
        sink.on_event(&event(0, w)).unwrap();
    }
    let mid = sink.stats();
    assert!(mid.dropped > 0, "the budget must have been exceeded");
    assert_eq!(
        mid.queued + mid.dropped,
        total as u64,
        "every accepted event is either queued or counted dropped"
    );

    let store_dir = tmp.join("store");
    let server = Server::new(codec(), server_cfg()).unwrap();
    hub.reopen();
    let handle = spawn_server(&hub, server, open_store(&store_dir));
    let (stats, result) = sink.finish(Duration::from_secs(60));
    result.unwrap();
    assert_eq!(stats.acked + stats.dropped, total as u64);

    hub.close();
    let (served, store) = handle.join().unwrap();
    served.unwrap();
    assert_eq!(store.events(), total as u64 - stats.dropped);

    // Drop-oldest means the survivors are exactly the newest windows —
    // a contiguous suffix, never a gap in the middle.
    let mut windows = Vec::new();
    store
        .for_each(|node, window, _| {
            assert_eq!(node, 0);
            windows.push(window);
        })
        .unwrap();
    windows.sort_unstable();
    let expect: Vec<u64> = (stats.dropped..total as u64).collect();
    assert_eq!(windows, expect);
}

/// A geometry mismatch is fatal: the server rejects the handshake, the
/// client latches the failure, and every later push reports it instead
/// of spilling data that could never be delivered.
#[test]
fn geometry_mismatch_latches_the_client() {
    let tmp = tempdir::scratch("chaos-geometry");
    let hub = ChaosHub::new();
    let server_codec = BlockCodec::new(Encoding::Exact, L + 3, SPEC).unwrap();
    let server = Server::new(server_codec, server_cfg()).unwrap();
    let store_dir = tmp.join("store");
    let store = SignatureStore::open(&store_dir, SPEC, L + 3, store_cfg()).unwrap();
    let handle = spawn_server(&hub, server, store);

    let mut sink = SocketSink::new(
        hub.dialer(ChaosConfig::default()),
        codec(),
        tmp.join("spill"),
        client_cfg(),
    )
    .unwrap();
    let first = sink.on_event(&event(0, 0));
    let second = sink.on_event(&event(0, 1));
    assert!(first.is_err() || second.is_err(), "mismatch must surface");
    // Once latched, the error repeats permanently.
    let third = sink.on_event(&event(0, 2));
    assert!(third.is_err());

    hub.close();
    hub.kill_connections();
    let (_served, store) = handle.join().unwrap();
    assert_eq!(store.events(), 0, "no mismatched event may be committed");
}

/// Minimal self-cleaning scratch directories under `target/`.
mod tempdir {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub fn scratch(tag: &str) -> PathBuf {
        // ordering: Relaxed — a unique counter, no synchronization.
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cwsmooth-net-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
