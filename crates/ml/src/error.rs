//! Error type for the ML substrate.

use std::fmt;

/// Errors produced while fitting or applying models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Features/labels disagree in length, or the input is empty.
    Shape(String),
    /// Bad hyper-parameters.
    Config(String),
    /// The model was used before fitting.
    NotFitted,
    /// The feature matrix contains NaN or infinite values.
    NonFinite(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Shape(m) => write!(f, "shape error: {m}"),
            MlError::Config(m) => write!(f, "configuration error: {m}"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::NonFinite(m) => write!(f, "non-finite input: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience alias for the ML substrate.
pub type Result<T> = std::result::Result<T, MlError>;
