//! Per-event streaming inference: a trained random forest as a
//! [`FleetSink`].
//!
//! The paper's fault-classification workload (Sec. IV-B1) runs a random
//! forest over CS signatures; [`StreamingDetector`] moves that forest
//! *into* the ingest pipeline, classifying every completed-window event
//! as it is delivered — no feature matrices, no event ownership. Per
//! event it flattens the borrowed signature into a reused buffer
//! ([`CsSignature::features_into`]), counts tree votes into a reused
//! buffer ([`RandomForestClassifier::predict_votes_row`]) and updates
//! per-node verdict state, so the steady-state path never touches the
//! heap (pinned by the workspace counting-allocator test).
//!
//! Verdict state tracks, per node, the current class, its *run* (number
//! of consecutive windows with that class) and the forest's vote margin.
//! A node alarms when a non-healthy class persists for
//! [`DetectorConfig::min_run`] windows — single-window blips from an
//! unlucky vote don't page anyone; sustained faults do.
//!
//! [`CsSignature::features_into`]: cwsmooth_core::cs::CsSignature::features_into

use crate::forest::RandomForestClassifier;
use cwsmooth_core::error::{CoreError, Result as CoreResult};
use cwsmooth_core::fleet::{FleetEvent, FleetSink};
use cwsmooth_obs::{Observe, Snapshot};

use crate::error::{MlError, Result};

/// Alarm policy for a [`StreamingDetector`].
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// The class id meaning "nothing wrong" (conventionally 0).
    pub healthy_class: usize,
    /// Consecutive non-healthy windows of one class before the node
    /// alarms (>= 1; 1 alarms on the first faulty verdict).
    pub min_run: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            healthy_class: 0,
            min_run: 2,
        }
    }
}

/// The rolling verdict state of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeVerdict {
    /// Class predicted for the node's most recent window.
    pub class: usize,
    /// Consecutive windows (including the latest) predicting `class`.
    pub run: usize,
    /// Vote margin of the latest prediction: `(top − runner_up) / trees`,
    /// in `[0, 1]` — 1.0 means a unanimous forest.
    pub margin: f64,
    /// Window index of the latest classified event.
    pub window_index: usize,
    /// `true` while a non-healthy run of at least
    /// [`DetectorConfig::min_run`] windows is ongoing.
    pub alarmed: bool,
    /// Events classified for this node so far.
    pub events: u64,
}

/// A [`FleetSink`] that classifies every event with a trained
/// [`RandomForestClassifier`] and tracks per-node verdict runs.
///
/// The forest's feature width must equal the event feature dimension
/// (`2·l` for an `l`-block signature); the first mismatching event
/// surfaces a shape error through the ingest call.
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    forest: RandomForestClassifier,
    cfg: DetectorConfig,
    nodes: Vec<NodeVerdict>,
    /// Reused `[re..., im...]` flattening of the current signature.
    features: Vec<f64>,
    /// Reused per-class vote counts.
    votes: Vec<u32>,
    /// Events classified per class (length `n_classes`).
    class_counts: Vec<u64>,
    events: u64,
    alarms: u64,
    margin_sum: f64,
}

impl StreamingDetector {
    /// Wraps a fitted forest. Errors when the forest is unfitted or the
    /// configuration is inconsistent (`min_run == 0`, or a
    /// `healthy_class` the forest never saw).
    pub fn new(forest: RandomForestClassifier, cfg: DetectorConfig) -> Result<Self> {
        let n_classes = forest.n_classes();
        if n_classes == 0 {
            return Err(MlError::NotFitted);
        }
        if cfg.min_run == 0 {
            return Err(MlError::Config("min_run must be >= 1".into()));
        }
        if cfg.healthy_class >= n_classes {
            return Err(MlError::Config(format!(
                "healthy_class {} out of range (forest has {n_classes} classes)",
                cfg.healthy_class
            )));
        }
        Ok(Self {
            forest,
            cfg,
            nodes: Vec::new(),
            features: Vec::new(),
            votes: vec![0; n_classes],
            class_counts: vec![0; n_classes],
            events: 0,
            alarms: 0,
            margin_sum: 0.0,
        })
    }

    /// Pre-sizes the per-node verdict table so the first event of each
    /// node allocates nothing (optional; the table also grows lazily).
    pub fn reserve_nodes(&mut self, nodes: usize) {
        if nodes > self.nodes.len() {
            self.nodes.resize(nodes, NodeVerdict::default());
        }
    }

    /// The wrapped forest.
    pub fn forest(&self) -> &RandomForestClassifier {
        &self.forest
    }

    /// Consumes the detector, returning the forest.
    pub fn into_forest(self) -> RandomForestClassifier {
        self.forest
    }

    /// The alarm policy.
    pub fn config(&self) -> DetectorConfig {
        self.cfg
    }

    /// The latest verdict for `node`, or `None` before its first event.
    pub fn verdict(&self, node: usize) -> Option<&NodeVerdict> {
        self.nodes.get(node).filter(|v| v.events > 0)
    }

    /// Nodes currently in the alarmed state, ascending.
    pub fn alarmed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.alarmed)
            .map(|(n, _)| n)
    }

    /// Events classified so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Alarm *transitions* so far (a node entering the alarmed state;
    /// a long fault counts once until the node recovers).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Events classified per class, indexed by class id.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    /// Mean vote margin across all classified events (0 before any).
    pub fn mean_margin(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.margin_sum / self.events as f64
        }
    }
}

/// Snapshot of the detector's verdict state under `stage="detector"`:
/// lifetime event/alarm-transition counters, per-class verdict counters
/// (`cws_detector_class_total{class="<id>"}`), the number of nodes
/// currently alarmed, and the mean vote margin.
impl Observe for StreamingDetector {
    fn observe(&self, out: &mut Snapshot) {
        let labels = &[("stage", "detector")];
        out.counter("cws_detector_events_total", labels, self.events);
        out.counter("cws_detector_alarms_total", labels, self.alarms);
        for (class, count) in self.class_counts.iter().enumerate() {
            out.counter(
                "cws_detector_class_total",
                &[("stage", "detector"), ("class", &class.to_string())],
                *count,
            );
        }
        out.gauge(
            "cws_detector_alarmed_nodes",
            labels,
            self.alarmed_nodes().count() as f64,
        );
        out.gauge("cws_detector_mean_margin", labels, self.mean_margin());
    }
}

impl FleetSink for StreamingDetector {
    fn on_event(&mut self, event: &FleetEvent) -> CoreResult<()> {
        event.signature.features_into(&mut self.features);
        let class = self
            .forest
            .predict_votes_row(&self.features, &mut self.votes)
            .map_err(|e| CoreError::Shape(format!("streaming detector: {e}")))?;
        // Margin from the vote histogram: top minus runner-up.
        let mut top = 0u32;
        let mut second = 0u32;
        for &v in &self.votes {
            if v > top {
                second = top;
                top = v;
            } else if v > second {
                second = v;
            }
        }
        let margin = (top - second) as f64 / self.forest.trees().len() as f64;

        if event.node >= self.nodes.len() {
            self.nodes.resize(event.node + 1, NodeVerdict::default());
        }
        let st = &mut self.nodes[event.node];
        st.run = if st.events > 0 && st.class == class {
            st.run + 1
        } else {
            1
        };
        st.class = class;
        st.margin = margin;
        st.window_index = event.window_index;
        st.events += 1;
        let alarmed = class != self.cfg.healthy_class && st.run >= self.cfg.min_run;
        if alarmed && !st.alarmed {
            self.alarms += 1;
        }
        st.alarmed = alarmed;

        self.events += 1;
        self.margin_sum += margin;
        self.class_counts[class] += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::small_forest_config;
    use cwsmooth_core::cs::CsSignature;
    use cwsmooth_linalg::Matrix;

    /// A forest that maps `re[0] > 0.5` to class 1, else class 0, on
    /// 2-block (4-feature) signatures.
    fn trained_forest() -> RandomForestClassifier {
        let x = Matrix::from_fn(80, 4, |r, c| {
            let hot = r % 2 == 1;
            let jitter = ((r * 31 + c * 7) % 100) as f64 / 1000.0;
            match c {
                0 => (if hot { 0.8 } else { 0.2 }) + jitter,
                1 => 0.5 + jitter,
                _ => jitter,
            }
        });
        let y: Vec<usize> = (0..80).map(|r| r % 2).collect();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(5, true));
        rf.fit(&x, &y).unwrap();
        rf
    }

    fn event(node: usize, window_index: usize, hot: bool) -> FleetEvent {
        let base = if hot { 0.8 } else { 0.2 };
        FleetEvent {
            node,
            window_index,
            signature: CsSignature {
                re: vec![base + 0.01, 0.52],
                im: vec![0.003, 0.004],
            },
        }
    }

    #[test]
    fn detector_is_send() {
        // The off-thread transport (`cwsmooth_core::transport::QueueSink`)
        // moves the detector onto a consumer thread; this pins the
        // `Send` bound so a future `Rc`/raw-pointer field can't silently
        // take that ability away.
        fn assert_send<T: Send>() {}
        assert_send::<StreamingDetector>();
    }

    #[test]
    fn observe_snapshots_verdicts_alarms_and_classes() {
        use cwsmooth_obs::Value;

        let cfg = DetectorConfig {
            healthy_class: 0,
            min_run: 1,
        };
        let mut det = StreamingDetector::new(trained_forest(), cfg).unwrap();
        for w in 0..3 {
            det.on_event(&event(0, w, false)).unwrap();
        }
        for w in 0..2 {
            det.on_event(&event(1, w, true)).unwrap();
        }
        let mut snap = Snapshot::new();
        det.observe(&mut snap);
        let value = |name: &str, class: Option<&str>| {
            snap.samples()
                .iter()
                .find(|s| {
                    s.name == name
                        && class
                            .is_none_or(|c| s.labels.iter().any(|(k, v)| k == "class" && v == c))
                })
                .map(|s| s.value.clone())
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(value("cws_detector_events_total", None), Value::Counter(5));
        // min_run 1: node 1 alarmed on its first hot window and stayed
        // alarmed — one transition.
        assert_eq!(value("cws_detector_alarms_total", None), Value::Counter(1));
        assert_eq!(value("cws_detector_alarmed_nodes", None), Value::Gauge(1.0));
        assert_eq!(
            value("cws_detector_class_total", Some("0")),
            Value::Counter(3)
        );
        assert_eq!(
            value("cws_detector_class_total", Some("1")),
            Value::Counter(2)
        );
        let Value::Gauge(margin) = value("cws_detector_mean_margin", None) else {
            panic!("mean_margin must be a gauge");
        };
        assert!((0.0..=1.0).contains(&margin) && margin > 0.0);
    }

    #[test]
    fn construction_validates_forest_and_config() {
        let unfitted = RandomForestClassifier::new(0);
        assert!(StreamingDetector::new(unfitted, DetectorConfig::default()).is_err());
        let rf = trained_forest();
        assert!(StreamingDetector::new(
            rf.clone(),
            DetectorConfig {
                healthy_class: 0,
                min_run: 0
            }
        )
        .is_err());
        assert!(StreamingDetector::new(
            rf.clone(),
            DetectorConfig {
                healthy_class: 9,
                min_run: 1
            }
        )
        .is_err());
        let det = StreamingDetector::new(rf, DetectorConfig::default()).unwrap();
        assert_eq!(det.events(), 0);
        assert_eq!(det.mean_margin(), 0.0);
        assert!(det.verdict(0).is_none());
    }

    #[test]
    fn runs_alarms_and_recovery() {
        let cfg = DetectorConfig {
            healthy_class: 0,
            min_run: 3,
        };
        let mut det = StreamingDetector::new(trained_forest(), cfg).unwrap();
        det.reserve_nodes(4);
        // Two healthy windows, then a sustained fault on node 2.
        for w in 0..2 {
            det.on_event(&event(2, w, false)).unwrap();
        }
        assert_eq!(det.verdict(2).unwrap().class, 0);
        assert_eq!(det.verdict(2).unwrap().run, 2);
        assert!(!det.verdict(2).unwrap().alarmed);

        for w in 2..4 {
            det.on_event(&event(2, w, true)).unwrap();
        }
        // Two faulty windows: run 2 < min_run 3, not alarmed yet.
        assert_eq!(det.verdict(2).unwrap().class, 1);
        assert_eq!(det.verdict(2).unwrap().run, 2);
        assert!(!det.verdict(2).unwrap().alarmed);
        assert_eq!(det.alarms(), 0);

        det.on_event(&event(2, 4, true)).unwrap();
        let v = *det.verdict(2).unwrap();
        assert!(v.alarmed);
        assert_eq!(v.run, 3);
        assert_eq!(v.window_index, 4);
        assert_eq!(det.alarms(), 1);
        assert_eq!(det.alarmed_nodes().collect::<Vec<_>>(), vec![2]);

        // Staying faulty does not re-count the alarm.
        det.on_event(&event(2, 5, true)).unwrap();
        assert_eq!(det.alarms(), 1);

        // Recovery clears the alarm; a later fault alarms again.
        for w in 6..9 {
            det.on_event(&event(2, w, false)).unwrap();
        }
        assert!(!det.verdict(2).unwrap().alarmed);
        for w in 9..12 {
            det.on_event(&event(2, w, true)).unwrap();
        }
        assert_eq!(det.alarms(), 2);

        // Per-class accounting and margins.
        assert_eq!(det.events(), 12);
        assert_eq!(det.class_counts().iter().sum::<u64>(), 12);
        assert!(det.mean_margin() > 0.5, "margin {}", det.mean_margin());
        // Other nodes remain unseen.
        assert!(det.verdict(0).is_none());
        assert!(det.verdict(40).is_none());
    }

    #[test]
    fn dimension_mismatch_surfaces_shape_error() {
        let mut det = StreamingDetector::new(trained_forest(), DetectorConfig::default()).unwrap();
        let bad = FleetEvent {
            node: 0,
            window_index: 0,
            signature: CsSignature {
                re: vec![0.1],
                im: vec![0.0],
            },
        };
        assert!(det.on_event(&bad).is_err());
        assert_eq!(det.events(), 0);
    }
}
