//! Cross-validation: shuffling, K-fold and stratified K-fold splits.
//!
//! The paper shuffles each feature-set dataset and applies 5-fold
//! cross-validation with a *stratified* K-fold strategy (Sec. IV-A1):
//! folds preserve per-class proportions, four folds train and one tests,
//! rotating through all combinations.

use crate::error::{MlError, Result};
use crate::forest::{RandomForestClassifier, RandomForestRegressor};
use crate::metrics;
use cwsmooth_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One train/test split: indices into the original dataset.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training sample indices.
    pub train: Vec<usize>,
    /// Test sample indices.
    pub test: Vec<usize>,
}

/// Fisher-Yates shuffle of `0..n` with a seeded RNG.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Plain K-fold: splits `0..n` (shuffled) into `k` near-equal test folds.
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<Fold>> {
    if k < 2 {
        return Err(MlError::Config("k must be >= 2".into()));
    }
    if n < k {
        return Err(MlError::Shape(format!(
            "cannot make {k} folds from {n} samples"
        )));
    }
    let order = shuffled_indices(n, seed);
    fold_from_buckets(&order, k, n)
}

/// Stratified K-fold: per-class round-robin assignment so every fold keeps
/// (approximately) the global class proportions.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Result<Vec<Fold>> {
    if k < 2 {
        return Err(MlError::Config("k must be >= 2".into()));
    }
    let n = labels.len();
    if n < k {
        return Err(MlError::Shape(format!(
            "cannot make {k} folds from {n} samples"
        )));
    }
    let order = shuffled_indices(n, seed);
    // Group shuffled indices by class, preserving shuffled order.
    let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for &i in &order {
        per_class[labels[i]].push(i);
    }
    // Round-robin each class's samples across folds.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next_bucket = 0usize;
    for class_samples in per_class {
        for i in class_samples {
            buckets[next_bucket].push(i);
            next_bucket = (next_bucket + 1) % k;
        }
    }
    buckets_to_folds(buckets, n)
}

fn fold_from_buckets(order: &[usize], k: usize, n: usize) -> Result<Vec<Fold>> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, &i) in order.iter().enumerate() {
        buckets[pos % k].push(i);
    }
    buckets_to_folds(buckets, n)
}

fn buckets_to_folds(buckets: Vec<Vec<usize>>, n: usize) -> Result<Vec<Fold>> {
    let k = buckets.len();
    let mut folds = Vec::with_capacity(k);
    for test_idx in 0..k {
        let test = buckets[test_idx].clone();
        if test.is_empty() {
            return Err(MlError::Shape("a fold came out empty".into()));
        }
        let mut train = Vec::with_capacity(n - test.len());
        for (b, bucket) in buckets.iter().enumerate() {
            if b != test_idx {
                train.extend_from_slice(bucket);
            }
        }
        folds.push(Fold { train, test });
    }
    Ok(folds)
}

/// Gathers the rows of `x` selected by `idx` into a new matrix.
pub fn gather_rows(x: &Matrix, idx: &[usize]) -> Matrix {
    let mut data = Vec::with_capacity(idx.len() * x.cols());
    for &i in idx {
        data.extend_from_slice(x.row(i));
    }
    Matrix::from_vec(idx.len(), x.cols(), data).expect("gather shape")
}

fn gather<T: Copy>(y: &[T], idx: &[usize]) -> Vec<T> {
    idx.iter().map(|&i| y[i]).collect()
}

/// Summary of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CvReport {
    /// Score per fold (weighted F1 or `1 − NRMSE`).
    pub fold_scores: Vec<f64>,
    /// Accuracy per fold (classification runs only, empty for regression).
    pub fold_accuracies: Vec<f64>,
    /// Wall-clock seconds spent fitting + predicting, summed over folds.
    pub elapsed_seconds: f64,
}

impl CvReport {
    /// Mean score across folds.
    pub fn mean_score(&self) -> f64 {
        self.fold_scores.iter().sum::<f64>() / self.fold_scores.len() as f64
    }

    /// Mean accuracy across folds; 0.0 when no accuracies were recorded
    /// (regression runs).
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }
}

/// Runs stratified K-fold cross-validation of a random-forest classifier,
/// scoring each fold with the weighted F1 (the paper's protocol).
pub fn cross_validate_forest_classifier(
    x: &Matrix,
    y: &[usize],
    k: usize,
    seed: u64,
    make_model: impl Fn(u64) -> RandomForestClassifier,
) -> Result<CvReport> {
    if x.rows() != y.len() {
        return Err(MlError::Shape("features/labels length mismatch".into()));
    }
    let folds = stratified_kfold(y, k, seed)?;
    let start = std::time::Instant::now();
    let mut scores = Vec::with_capacity(k);
    let mut accuracies = Vec::with_capacity(k);
    for (f, fold) in folds.iter().enumerate() {
        let xt = gather_rows(x, &fold.train);
        let yt = gather(y, &fold.train);
        let xs = gather_rows(x, &fold.test);
        let ys = gather(y, &fold.test);
        let mut model = make_model(seed.wrapping_add(f as u64));
        model.fit(&xt, &yt)?;
        let pred = model.predict(&xs)?;
        scores.push(metrics::f1_score(&ys, &pred)?);
        accuracies.push(metrics::accuracy_score(&ys, &pred)?);
    }
    Ok(CvReport {
        fold_scores: scores,
        fold_accuracies: accuracies,
        elapsed_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Runs K-fold cross-validation of a random-forest regressor, scoring each
/// fold with `1 − NRMSE`.
pub fn cross_validate_forest_regressor(
    x: &Matrix,
    y: &[f64],
    k: usize,
    seed: u64,
    make_model: impl Fn(u64) -> RandomForestRegressor,
) -> Result<CvReport> {
    if x.rows() != y.len() {
        return Err(MlError::Shape("features/targets length mismatch".into()));
    }
    let folds = kfold(y.len(), k, seed)?;
    let start = std::time::Instant::now();
    let mut scores = Vec::with_capacity(k);
    for (f, fold) in folds.iter().enumerate() {
        let xt = gather_rows(x, &fold.train);
        let yt = gather(y, &fold.train);
        let xs = gather_rows(x, &fold.test);
        let ys = gather(y, &fold.test);
        let mut model = make_model(seed.wrapping_add(f as u64));
        model.fit(&xt, &yt)?;
        let pred = model.predict(&xs)?;
        scores.push(metrics::ml_score_regression(&ys, &pred)?);
    }
    Ok(CvReport {
        fold_scores: scores,
        fold_accuracies: Vec::new(),
        elapsed_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Runs stratified K-fold cross-validation of an MLP classifier (the
/// paper's secondary model), scoring each fold with the weighted F1.
pub fn cross_validate_mlp_classifier(
    x: &Matrix,
    y: &[usize],
    k: usize,
    seed: u64,
    make_model: impl Fn(u64) -> crate::mlp::MlpClassifier,
) -> Result<CvReport> {
    if x.rows() != y.len() {
        return Err(MlError::Shape("features/labels length mismatch".into()));
    }
    let folds = stratified_kfold(y, k, seed)?;
    let start = std::time::Instant::now();
    let mut scores = Vec::with_capacity(k);
    let mut accuracies = Vec::with_capacity(k);
    for (f, fold) in folds.iter().enumerate() {
        let xt = gather_rows(x, &fold.train);
        let yt = gather(y, &fold.train);
        let xs = gather_rows(x, &fold.test);
        let ys = gather(y, &fold.test);
        let mut model = make_model(seed.wrapping_add(f as u64));
        model.fit(&xt, &yt)?;
        let pred = model.predict(&xs)?;
        scores.push(metrics::f1_score(&ys, &pred)?);
        accuracies.push(metrics::accuracy_score(&ys, &pred)?);
    }
    Ok(CvReport {
        fold_scores: scores,
        fold_accuracies: accuracies,
        elapsed_seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::small_forest_config;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let a = shuffled_indices(100, 5);
        let b = shuffled_indices(100, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, shuffled_indices(100, 6));
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = kfold(23, 5, 1).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for fold in &folds {
            for &i in &fold.test {
                seen[i] += 1;
            }
            // train/test are disjoint and cover all samples
            let mut all: Vec<usize> = fold.train.iter().chain(&fold.test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..23).collect::<Vec<_>>());
        }
        // each sample is in exactly one test fold
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn stratified_preserves_proportions() {
        // 40 of class 0, 10 of class 1.
        let labels: Vec<usize> = (0..50).map(|i| usize::from(i >= 40)).collect();
        let folds = stratified_kfold(&labels, 5, 3).unwrap();
        for fold in &folds {
            let c1 = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(fold.test.len(), 10);
            assert_eq!(c1, 2, "fold should hold 2 of the 10 class-1 samples");
        }
    }

    #[test]
    fn rejects_bad_k() {
        assert!(kfold(10, 1, 0).is_err());
        assert!(kfold(3, 5, 0).is_err());
        assert!(stratified_kfold(&[0, 1], 5, 0).is_err());
    }

    #[test]
    fn forest_cv_on_separable_data() {
        let x = Matrix::from_fn(100, 2, |r, c| {
            ((r / 50) as f64) * 4.0 + (c as f64) * 0.1 + ((r % 50) as f64) * 0.001
        });
        let y: Vec<usize> = (0..100).map(|r| r / 50).collect();
        let report = cross_validate_forest_classifier(&x, &y, 5, 42, |s| {
            RandomForestClassifier::with_config(small_forest_config(s, true))
        })
        .unwrap();
        assert_eq!(report.fold_scores.len(), 5);
        assert!(report.mean_score() > 0.99, "score {}", report.mean_score());
        assert!(report.elapsed_seconds >= 0.0);
    }

    #[test]
    fn regressor_cv_on_linear_data() {
        let x = Matrix::from_fn(80, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..80).map(|r| 2.0 * r as f64 + 5.0).collect();
        let report = cross_validate_forest_regressor(&x, &y, 5, 42, |s| {
            RandomForestRegressor::with_config(small_forest_config(s, false))
        })
        .unwrap();
        assert!(report.mean_score() > 0.9, "score {}", report.mean_score());
    }

    #[test]
    fn mlp_cv_on_separable_data() {
        use crate::mlp::{MlpClassifier, MlpConfig};
        let x = Matrix::from_fn(100, 2, |r, c| {
            ((r / 50) as f64) * 4.0 + (c as f64) * 0.1 + ((r % 50) as f64) * 0.001
        });
        let y: Vec<usize> = (0..100).map(|r| r / 50).collect();
        let report = cross_validate_mlp_classifier(&x, &y, 5, 11, |s| {
            MlpClassifier::with_config(MlpConfig {
                hidden: vec![16, 16],
                max_epochs: 120,
                seed: s,
                ..MlpConfig::default()
            })
        })
        .unwrap();
        assert!(report.mean_score() > 0.95, "score {}", report.mean_score());
    }

    #[test]
    fn gather_rows_selects() {
        let x = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]).unwrap();
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }
}
