//! From-scratch machine-learning substrate for the `cwsmooth` workspace.
//!
//! The paper evaluates signature methods through scikit-learn models
//! (Sec. IV-A1): a random forest with 50 estimators using Gini impurity,
//! and — for the cross-architecture experiment — a multi-layer perceptron
//! with two hidden layers of 100 ReLU neurons. No ML crates are in the
//! approved dependency set, so the full stack is implemented here:
//!
//! * [`tree`] — CART decision trees (Gini impurity for classification,
//!   variance reduction for regression) with per-split random feature
//!   subsampling and two split engines ([`tree::SplitAlgo`]): an exact
//!   pre-sorted splitter and an opt-in ≤256-bin histogram fast path.
//! * [`forest`] — bagged random forests (classifier and regressor) with
//!   weight-based bootstrap (no per-tree matrix copies), trees trained in
//!   parallel with rayon and row-parallel prediction.
//! * [`mlp`] — a multi-layer perceptron with ReLU activations, softmax or
//!   linear heads, Adam optimization and built-in feature standardization.
//! * [`streaming`] — [`streaming::StreamingDetector`]: a fitted forest as
//!   a fleet-event sink, classifying each completed-window signature in
//!   place (no feature matrices) and tracking per-node verdict runs.
//! * [`cv`] — shuffling, K-fold and stratified K-fold cross-validation.
//! * [`metrics`] — confusion matrices, precision/recall/F1 (macro and
//!   weighted), accuracy, RMSE and the paper's `1 − NRMSE` "ML score".
//!
//! Conventions: feature matrices are [`cwsmooth_linalg::Matrix`] values
//! with **rows = samples**, **columns = features** (note: transposed with
//! respect to the sensor-matrix convention). All randomness flows through
//! explicit seeds for reproducibility.

#![warn(missing_docs)]

pub mod cv;
pub mod error;
pub mod forest;
pub mod metrics;
pub mod mlp;
pub mod streaming;
pub mod tree;

pub use error::{MlError, Result};
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use mlp::{MlpClassifier, MlpRegressor};
pub use streaming::{DetectorConfig, NodeVerdict, StreamingDetector};
pub use tree::{SplitAlgo, TreeArena};
