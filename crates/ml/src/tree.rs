//! CART decision trees: the building block of the random forests.
//!
//! Splits minimize Gini impurity (classification) or within-node variance
//! (regression). Feature subsampling happens *per split* (like
//! scikit-learn), which is what decorrelates forest members beyond bagging.
//!
//! Two split engines are available through [`SplitAlgo`]:
//!
//! * **Exact** (default) — evaluates every boundary between distinct
//!   feature values. Sample indices are argsorted once per feature (shared
//!   across a whole forest via `SplitIndex`); each tree then either
//!   *maintains* per-node sorted order by stable in-place partitioning as
//!   nodes split (cheap when most features are scanned at each split, e.g.
//!   regression's `MaxFeatures::All`), or — when per-split feature
//!   subsampling makes maintaining all `d` sorted columns more expensive
//!   than re-sorting `k` of them — gathers and sorts the sampled features
//!   per node using order-preserving `u64` key mappings of the `f64`
//!   values (much faster than comparison sorts through `partial_cmp`).
//!   The engine picks per tree via a cost model (`d ≤ k·log2(m)`); the
//!   two paths agree exactly for classification (integer-exact Gini
//!   statistics) and for regression up to floating-point summation order
//!   inside runs of tied feature values.
//! * **Histogram** — quantizes each feature to at most 256 `u8` bins once
//!   per forest and scans bin boundaries instead of sorting. Large nodes
//!   accumulate dense per-bin statistics (with the classic subtraction
//!   trick: the larger child's histogram is `parent − sibling` when every
//!   feature is scanned per split); small nodes fall back to a sparse
//!   sorted-code scan. Thresholds are midpoints between adjacent bin
//!   edges, so trees are approximate but close; fitting is much faster on
//!   wide/tall data.
//!
//! Bootstrap resampling is expressed as per-sample `u32` weights (see
//! [`crate::forest`]) threaded through every leaf statistic and split
//! scan — no per-tree copy of the training matrix is ever materialized.
//! All node scratch (class counts, bin accumulators, index buffers) lives
//! in a reusable [`TreeArena`], so steady-state node expansion performs no
//! heap allocation.

use crate::error::{MlError, Result};
use cwsmooth_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Split quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Variance reduction / mean squared error (regression).
    Mse,
}

/// How many features are examined at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (scikit-learn's regression default).
    All,
    /// `ceil(sqrt(d))` features (scikit-learn's classification default).
    Sqrt,
    /// A fixed count (clamped to `d`).
    Exact(usize),
}

impl MaxFeatures {
    fn resolve(self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Exact(k) => k.clamp(1, d),
        }
        .max(1)
    }
}

/// Which engine evaluates candidate splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitAlgo {
    /// Exact boundary evaluation between every pair of distinct feature
    /// values — identical thresholds and predictions to classic CART.
    #[default]
    Exact,
    /// LightGBM-style binned evaluation: each feature is quantized to at
    /// most `max_bins` (≤ 256) bins once per forest; nodes scan bins
    /// instead of sorting. Opt-in fast path, approximate thresholds.
    Histogram {
        /// Maximum bins per feature, clamped to `2..=256`.
        max_bins: u16,
    },
}

impl SplitAlgo {
    /// The histogram engine with its default of 64 bins.
    ///
    /// 64 is the LightGBM-GPU-style default (63 bins there): forests grown
    /// to full depth keep re-splitting inside earlier bins, so coarse
    /// global quantization costs far less accuracy than it would for
    /// shallow boosted trees, while roughly halving fit time against a
    /// 256-bin setup. Use `SplitAlgo::Histogram { max_bins: 256 }` for the
    /// finest quantization.
    pub fn histogram() -> Self {
        SplitAlgo::Histogram { max_bins: 64 }
    }

    fn max_bins(self) -> usize {
        match self {
            SplitAlgo::Exact => 0,
            SplitAlgo::Histogram { max_bins } => (max_bins as usize).clamp(2, 256),
        }
    }
}

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (`None` = grow until pure).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Per-split feature subsampling.
    pub max_features: MaxFeatures,
    /// Split quality criterion.
    pub criterion: Criterion,
    /// Split engine (exact or binned histogram).
    pub split_algo: SplitAlgo,
}

impl TreeConfig {
    /// scikit-learn-like defaults for classification.
    pub fn classification() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            criterion: Criterion::Gini,
            split_algo: SplitAlgo::Exact,
        }
    }

    /// scikit-learn-like defaults for regression.
    pub fn regression() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            criterion: Criterion::Mse,
            split_algo: SplitAlgo::Exact,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class id for classification trees, mean target for regression.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted CART tree.
///
/// For classification the leaf value is the majority class id (as `f64`);
/// for regression it is the mean target of the leaf's samples.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    criterion: Criterion,
    /// Impurity-based feature importances (mean decrease in impurity),
    /// normalized to sum to 1 (all zeros for a single-leaf tree).
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on `x` (rows = samples) and targets `y`.
    ///
    /// For classification pass class ids as `f64` (`0.0, 1.0, ...`) and
    /// `Criterion::Gini`; `n_classes` must cover every id. For regression
    /// pass `Criterion::Mse` and any targets (`n_classes` is ignored).
    /// All feature values must be finite (`MlError::NonFinite` otherwise).
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let mut arena = TreeArena::new();
        Self::fit_with_arena(&mut arena, x, y, n_classes, config, rng)
    }

    /// Like [`DecisionTree::fit`], but reuses a caller-owned [`TreeArena`]
    /// so repeated fits of same-shaped data perform no per-node heap
    /// allocations once the arena is warm.
    pub fn fit_with_arena(
        arena: &mut TreeArena,
        x: &Matrix,
        y: &[f64],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        validate_fit_inputs(x, y, n_classes, config)?;
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFinite(
                "feature matrix contains NaN or infinite values".into(),
            ));
        }
        let mut index = std::mem::take(&mut arena.own_index);
        index.build_into(x, config.split_algo);
        let tree = Self::fit_inner(
            arena,
            &index,
            x,
            y,
            SampleWeights::Unit,
            n_classes,
            config,
            rng,
        );
        arena.own_index = index;
        tree
    }

    /// Engine entry point shared with the forest: inputs are pre-validated
    /// and the per-feature `SplitIndex` is already built.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fit_inner(
        arena: &mut TreeArena,
        index: &SplitIndex,
        x: &Matrix,
        y: &[f64],
        w: SampleWeights<'_>,
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let n = x.rows();
        let d = x.cols();

        // Active sample ids (weight > 0), ascending.
        arena.members.clear();
        match w {
            SampleWeights::Unit => arena.members.extend(0..n as u32),
            SampleWeights::Counts(c) => arena
                .members
                .extend((0..n as u32).filter(|&i| c[i as usize] > 0)),
        }
        let m = arena.members.len();
        if m == 0 {
            return Err(MlError::Shape("no samples with positive weight".into()));
        }
        let total_weight: u64 = arena.members.iter().map(|&i| w.of(i)).sum();

        let k = config.max_features.resolve(d);
        // The packed histogram format stores `code ≪ 24 | class ≪ 16 |
        // weight` in a u32: fall back to the exact engine in the (rare)
        // configurations it cannot represent.
        let max_mult = match w {
            SampleWeights::Unit => 1,
            SampleWeights::Counts(c) => c.iter().copied().max().unwrap_or(0) as u64,
        };
        let hist_ok = n_classes <= 255 && max_mult < (1 << 16);
        let engine = match config.split_algo {
            SplitAlgo::Histogram { .. } if !hist_ok => Engine::ExactGather,
            SplitAlgo::Exact => Engine::ExactSorted, // refined below
            algo @ SplitAlgo::Histogram { .. } => Engine::Hist {
                max_bins: algo.max_bins(),
                subtract: k == d,
            },
        };
        let engine = if engine == Engine::ExactSorted {
            // Maintaining all `d` sorted columns costs O(d·m) per level;
            // re-sorting the `k` sampled features costs O(k·m·log m).
            // Pick the cheaper strategy per tree.
            if d as f64 <= k as f64 * (m.max(2) as f64).log2() {
                Engine::ExactSorted
            } else {
                Engine::ExactGather
            }
        } else {
            engine
        };

        // Size every buffer up front: node expansion must not reallocate.
        arena.nodes.clear();
        arena.nodes.reserve(2 * m + 1);
        arena.importances.clear();
        arena.importances.resize(d, 0.0);
        arena.goes_left.resize(n, false);
        arena.part_scratch.resize(m, 0);
        arena.cls_left.clear();
        arena.cls_left.resize(n_classes.max(1), 0);
        arena.cls_right.clear();
        arena.cls_right.resize(n_classes.max(1), 0);
        arena.node_cls.clear();
        arena.node_cls.resize(n_classes.max(1), 0);
        if let Engine::Hist { max_bins, .. } = engine {
            arena.code_w.clear();
            arena.code_w.resize(max_bins, 0);
            arena.touched.clear();
            arena.touched.reserve(max_bins);
            arena
                .scratch_slab
                .ensure(config.criterion, 1, max_bins, n_classes.max(1));
            arena.scratch_slab.zero();
            if config.criterion == Criterion::Gini {
                arena.packed_scratch.clear();
                arena.packed_scratch.resize(m, 0);
                arena.payload.clear();
                match w {
                    SampleWeights::Unit => {
                        arena
                            .payload
                            .extend(y.iter().map(|&v| ((v as u32) << 16) | 1));
                    }
                    SampleWeights::Counts(c) => {
                        arena
                            .payload
                            .extend(y.iter().zip(c).map(|(&v, &wi)| ((v as u32) << 16) | wi));
                    }
                }
            }
        }
        arena.items.reserve(m);
        arena.mark.clear();
        arena.mark.resize(n, 0);
        arena.epoch = 0;
        arena.feat_buf.clear();
        arena.feat_buf.extend(0..d);

        if engine == Engine::ExactSorted {
            // Per-tree sorted columns: filter the forest-wide argsort down
            // to the active samples, preserving order.
            arena.sorted.clear();
            arena.sorted.reserve(d * m);
            for f in 0..d {
                let col = &index.sorted[f * n..(f + 1) * n];
                match w {
                    SampleWeights::Unit => arena.sorted.extend_from_slice(col),
                    SampleWeights::Counts(c) => arena
                        .sorted
                        .extend(col.iter().copied().filter(|&i| c[i as usize] > 0)),
                }
            }
        }

        let mut builder = Builder {
            x,
            y,
            w,
            n_classes,
            config: *config,
            index,
            d,
            m,
            k,
            total_weight: total_weight as f64,
            engine,
            node_sum: 0.0,
            node_sq: 0.0,
            gini_pairs: max_mult < (1 << 16) && n_classes <= 0xffff,
            arena: &mut *arena,
        };
        let root_slab = builder.root_slab();
        builder.build(0, m, 0, root_slab, rng);

        let total: f64 = arena.importances.iter().sum();
        if total > 0.0 {
            arena.importances.iter_mut().for_each(|v| *v /= total);
        }
        Ok(DecisionTree {
            nodes: arena.nodes.clone(),
            n_features: d,
            criterion: config.criterion,
            importances: arena.importances.clone(),
        })
    }

    /// Impurity-based feature importances (mean decrease in impurity,
    /// weighted by node size), normalized to sum to 1. All zeros when the
    /// tree is a single leaf.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Predicts the raw leaf value for one sample.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.n_features);
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predicts raw leaf values for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.n_features {
            return Err(MlError::Shape(format!(
                "tree expects {} features, got {}",
                self.n_features,
                x.cols()
            )));
        }
        Ok((0..x.rows()).map(|r| self.predict_one(x.row(r))).collect())
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// `(feature, threshold)` of every split node in node order, with
    /// leaves reported as `None` — a stable structural fingerprint used by
    /// parity tests and model inspection.
    pub fn node_summaries(&self) -> Vec<Option<(usize, f64)>> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { .. } => None,
                Node::Split {
                    feature, threshold, ..
                } => Some((*feature, *threshold)),
            })
            .collect()
    }

    /// Leaf values in node order (split nodes reported as `None`).
    pub fn leaf_values(&self) -> Vec<Option<f64>> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { value } => Some(*value),
                Node::Split { .. } => None,
            })
            .collect()
    }

    /// Maximum depth of the fitted tree (0 = a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_at(nodes, *left as usize).max(depth_at(nodes, *right as usize))
                }
            }
        }
        depth_at(&self.nodes, 0)
    }

    /// Criterion the tree was trained with.
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }
}

fn validate_fit_inputs(x: &Matrix, y: &[f64], n_classes: usize, config: &TreeConfig) -> Result<()> {
    if x.rows() == 0 {
        return Err(MlError::Shape("empty training set".into()));
    }
    if x.rows() != y.len() {
        return Err(MlError::Shape(format!(
            "{} samples but {} targets",
            x.rows(),
            y.len()
        )));
    }
    if config.criterion == Criterion::Gini {
        if n_classes == 0 {
            return Err(MlError::Config("n_classes must be >= 1 for Gini".into()));
        }
        for &v in y {
            if v < 0.0 || v.fract() != 0.0 || v as usize >= n_classes {
                return Err(MlError::Shape(format!(
                    "class label {v} outside 0..{n_classes}"
                )));
            }
        }
    }
    if config.min_samples_split < 2 || config.min_samples_leaf < 1 {
        return Err(MlError::Config(
            "min_samples_split >= 2 and min_samples_leaf >= 1 required".into(),
        ));
    }
    Ok(())
}

/// Per-sample bootstrap weights: `Unit` for a plain fit, `Counts` for
/// weight-based bagging (the count of times each sample was drawn).
#[derive(Clone, Copy)]
pub(crate) enum SampleWeights<'a> {
    /// Every sample counts once.
    Unit,
    /// `counts[i]` = multiplicity of sample `i` (0 = not drawn).
    Counts(&'a [u32]),
}

impl SampleWeights<'_> {
    #[inline]
    fn of(&self, id: u32) -> u64 {
        match self {
            SampleWeights::Unit => 1,
            SampleWeights::Counts(c) => c[id as usize] as u64,
        }
    }
}

const SIGN: u64 = 1 << 63;

/// Order-preserving map from finite `f64` to `u64`: integer comparison of
/// keys is `total_cmp` of values (with `-0.0` canonicalized to `+0.0`).
#[inline]
fn key_of(v: f64) -> u64 {
    let b = (v + 0.0).to_bits(); // +0.0 canonicalizes -0.0
    if b & SIGN != 0 {
        !b
    } else {
        b | SIGN
    }
}

/// Inverse of [`key_of`].
#[inline]
fn val_of(k: u64) -> f64 {
    if k & SIGN != 0 {
        f64::from_bits(k & !SIGN)
    } else {
        f64::from_bits(!k)
    }
}

/// Midpoint threshold between two adjacent sorted values, guarded against
/// infinities from extreme inputs.
fn midpoint(a: f64, b: f64) -> f64 {
    let m = a + (b - a) / 2.0;
    if m.is_finite() {
        m
    } else {
        a
    }
}

/// Derives at most `max_bins` equal-population bin boundaries from one
/// feature's sorted value keys. Pushes the upper edge key of every bin but
/// the last into `edges` and the midpoint thresholds into `split_vals`;
/// returns the bin count. Whole runs of equal values stay in one bin, and
/// when the distinct-value count fits in `max_bins` every distinct value
/// gets its own bin (the histogram degenerates to the exact thresholds).
fn bin_edges(
    keys: &[u64],
    max_bins: usize,
    edges: &mut Vec<u64>,
    split_vals: &mut Vec<f64>,
) -> u32 {
    // Threshold strictly below the right bin's smallest value: midpoint()
    // can round up to `b` for adjacent floats, which would make
    // value-based predict routing disagree with the code-based training
    // partition, so fall back to the left value in that case.
    fn bin_threshold(a: f64, b: f64) -> f64 {
        let m = midpoint(a, b);
        if m >= b {
            a
        } else {
            m
        }
    }
    edges.clear();
    let n = keys.len();
    let mut uniq = 1usize;
    for p in 1..n {
        if keys[p] != keys[p - 1] {
            uniq += 1;
        }
    }
    if uniq <= max_bins {
        for p in 1..n {
            if keys[p] != keys[p - 1] {
                edges.push(keys[p - 1]);
                split_vals.push(bin_threshold(val_of(keys[p - 1]), val_of(keys[p])));
            }
        }
        return edges.len() as u32 + 1;
    }
    // Greedy fill: each bin absorbs whole runs until it reaches the target
    // share of the remaining samples, so the bin count stays ≤ max_bins.
    let mut code = 0usize;
    let mut bin_count = 0usize;
    let mut remaining = n;
    let mut target = remaining.div_ceil(max_bins);
    let mut p = 0usize;
    while p < n {
        let run_start = p;
        let key = keys[p];
        while p < n && keys[p] == key {
            p += 1;
        }
        bin_count += p - run_start;
        remaining -= p - run_start;
        if bin_count >= target && p < n && code < max_bins - 1 {
            edges.push(key);
            split_vals.push(bin_threshold(val_of(key), val_of(keys[p])));
            code += 1;
            bin_count = 0;
            target = remaining.div_ceil(max_bins - code);
        }
    }
    code as u32 + 1
}

/// Spreadsort: distribute by the top 8 significant bits of the key range
/// into 256 buckets (one counting pass + one scatter), then
/// comparison-sort each small bucket. Distribution-sensitive but never
/// worse than pdqsort by more than the two linear passes; ~3x faster on
/// the roughly uniform columns split indices are built from.
fn spread_sort_by_key<T: Copy + Ord>(data: &mut [T], tmp: &mut Vec<T>, key: impl Fn(&T) -> u64) {
    let n = data.len();
    if n < 64 {
        data.sort_unstable();
        return;
    }
    let mut min = u64::MAX;
    let mut max = 0u64;
    for v in data.iter() {
        let k = key(v);
        min = min.min(k);
        max = max.max(k);
    }
    if min == max {
        data.sort_unstable(); // all keys equal; order by full value
        return;
    }
    let range = max - min;
    let shift = (64 - range.leading_zeros() as u64).saturating_sub(8);
    let mut counts = [0u32; 257];
    for v in data.iter() {
        counts[(((key(v) - min) >> shift) + 1) as usize] += 1;
    }
    for b in 1..257 {
        counts[b] += counts[b - 1];
    }
    tmp.clear();
    tmp.resize(n, data[0]);
    for v in data.iter() {
        let b = ((key(v) - min) >> shift) as usize;
        tmp[counts[b] as usize] = *v;
        counts[b] += 1;
    }
    // counts[b] now holds each bucket's END offset.
    let mut start = 0usize;
    for &end in counts.iter().take(256) {
        let end = end as usize;
        if end - start > 1 {
            tmp[start..end].sort_unstable();
        }
        start = end;
    }
    data.copy_from_slice(tmp);
}

fn gini_of(counts: &[u64], n: u64) -> f64 {
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

/// Per-feature split index shared across every tree of a forest: the
/// argsorted sample order (exact engine) or the ≤256-bin quantization
/// (histogram engine), built once per training matrix.
#[derive(Debug, Default)]
pub(crate) struct SplitIndex {
    algo: SplitAlgo,
    n: usize,
    d: usize,
    /// Exact: ids sorted ascending by value, feature-major (`d·n`).
    sorted: Vec<u32>,
    /// Histogram: bin code per (feature, sample), feature-major (`d·n`).
    codes: Vec<u8>,
    /// Histogram: number of bins per feature.
    n_bins: Vec<u32>,
    /// Histogram: thresholds between adjacent bins, flattened; the
    /// boundary after bin `b` of feature `f` is
    /// `split_vals[split_off[f] + b]` (`n_bins[f] − 1` entries per feature).
    split_vals: Vec<f64>,
    /// Per-feature offsets into `split_vals` (`d + 1` entries).
    split_off: Vec<usize>,
    /// Sort scratch, reused across features.
    key_buf: Vec<(u64, u32)>,
    /// Bare-key sort scratch for histogram binning.
    hist_key_buf: Vec<u64>,
    /// Unsorted per-sample keys of the feature being binned.
    raw_key_buf: Vec<u64>,
    /// Spreadsort scatter scratch.
    sort_tmp_pairs: Vec<(u64, u32)>,
    /// Per-feature upper-edge keys (≤ 255) for binary-search code
    /// assignment.
    edge_buf: Vec<u64>,
}

impl SplitIndex {
    pub(crate) fn build(x: &Matrix, algo: SplitAlgo) -> Self {
        let mut s = Self::default();
        s.build_into(x, algo);
        s
    }

    fn build_into(&mut self, x: &Matrix, algo: SplitAlgo) {
        let n = x.rows();
        let d = x.cols();
        self.algo = algo;
        self.n = n;
        self.d = d;
        // LightGBM-style `min_data_in_bin`: a bin should average at least
        // MIN_DATA_IN_BIN samples, so small datasets get proportionally
        // fewer bins (quantization that changes nothing is pure overhead).
        let max_bins = match algo.max_bins() {
            0 => 0,
            mb => (n / MIN_DATA_IN_BIN).clamp(2, mb),
        };
        let hist = max_bins > 0;

        if hist {
            self.codes.clear();
            self.codes.resize(d * n, 0);
            self.n_bins.clear();
            self.n_bins.resize(d, 0);
            self.split_vals.clear();
            self.split_off.clear();
            self.split_off.reserve(d + 1);
            self.sorted.clear();
        } else {
            self.sorted.clear();
            self.sorted.resize(d * n, 0);
            self.codes.clear();
            self.n_bins.clear();
            self.split_vals.clear();
            self.split_off.clear();
        }

        if hist {
            // Binning needs only the sorted *values*: sort bare u64 keys
            // (much faster than an argsort), derive bin edges, then assign
            // each sample's code by binary search over ≤255 edge keys.
            let mut raw = std::mem::take(&mut self.raw_key_buf);
            let mut keys = std::mem::take(&mut self.hist_key_buf);
            let mut edges = std::mem::take(&mut self.edge_buf);
            for f in 0..d {
                // One strided pass over the matrix column; the sorted copy
                // and the per-sample code assignment both reuse it.
                raw.clear();
                raw.extend((0..n).map(|i| key_of(x.get(i, f))));
                keys.clear();
                keys.extend_from_slice(&raw);
                keys.sort_unstable();
                self.split_off.push(self.split_vals.len());
                let bins = bin_edges(&keys, max_bins, &mut edges, &mut self.split_vals);
                self.n_bins[f] = bins;
                let codes = &mut self.codes[f * n..(f + 1) * n];
                for (c, &key) in codes.iter_mut().zip(raw.iter()) {
                    // Number of edge keys strictly below this value's key.
                    *c = edges.partition_point(|&e| e < key) as u8;
                }
            }
            self.split_off.push(self.split_vals.len());
            self.raw_key_buf = raw;
            self.hist_key_buf = keys;
            self.edge_buf = edges;
        } else {
            let mut keys = std::mem::take(&mut self.key_buf);
            for f in 0..d {
                keys.clear();
                keys.extend((0..n).map(|i| (key_of(x.get(i, f)), i as u32)));
                // (key, id) sort: deterministic tie order by sample id.
                spread_sort_by_key(&mut keys, &mut self.sort_tmp_pairs, |&(k, _)| k);
                for (dst, &(_, id)) in self.sorted[f * n..(f + 1) * n].iter_mut().zip(keys.iter()) {
                    *dst = id;
                }
            }
            self.key_buf = keys;
        }
    }

    #[inline]
    fn feature_codes(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n..(f + 1) * self.n]
    }

    #[inline]
    fn feature_splits(&self, f: usize) -> &[f64] {
        &self.split_vals[self.split_off[f]..self.split_off[f + 1]]
    }
}

/// Dense per-node histogram statistics for one set of feature slots.
#[derive(Debug, Default)]
struct HistSlab {
    /// Gini: weighted count per (slot, bin, class). Mse: weight per
    /// (slot, bin).
    cnt: Vec<u32>,
    /// Mse only: `Σ w·y` per (slot, bin). Per-bin squared sums are never
    /// needed: variance gains reduce to a score of weights and sums plus
    /// the node-level moments from `node_stats`.
    sum: Vec<f64>,
}

impl HistSlab {
    fn ensure(&mut self, criterion: Criterion, slots: usize, bins: usize, nc: usize) {
        match criterion {
            Criterion::Gini => {
                self.cnt.resize(slots * bins * nc, 0);
                self.sum.clear();
            }
            Criterion::Mse => {
                self.cnt.resize(slots * bins, 0);
                self.sum.resize(slots * bins, 0.0);
            }
        }
    }

    fn zero(&mut self) {
        self.cnt.fill(0);
        self.sum.fill(0.0);
    }

    fn subtract(&mut self, other: &HistSlab) {
        for (a, b) in self.cnt.iter_mut().zip(&other.cnt) {
            *a -= b;
        }
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a -= b;
        }
    }
}

/// Reusable fitting workspace: node buffers, per-tree sorted columns,
/// histogram slabs and the standalone-fit `SplitIndex`. Reusing an arena
/// across fits of same-shaped data makes node expansion allocation-free.
#[derive(Debug, Default)]
pub struct TreeArena {
    nodes: Vec<Node>,
    importances: Vec<f64>,
    /// Node membership, recursively partitioned (legacy swap order).
    members: Vec<u32>,
    /// Exact-sorted engine: per-feature sorted ids (`d·m`), maintained by
    /// stable partitioning as nodes split.
    sorted: Vec<u32>,
    /// Right-half scratch for the stable partition.
    part_scratch: Vec<u32>,
    /// Per-sample split side for the chosen split (indexed by sample id).
    goes_left: Vec<bool>,
    /// Feature ids, partially shuffled at each split.
    feat_buf: Vec<usize>,
    /// Gather-sort scratch for exact-gather and sparse-histogram scans.
    items: Vec<ScanItem>,
    /// Compact `(value key, class≪16 | weight)` records for exact Gini
    /// scans (16 bytes vs the 24-byte `ScanItem`).
    pairs: Vec<(u64, u32)>,
    /// Per-sample node marks for the filtered-column scan (`mark[id] ==
    /// epoch` ⇔ sample belongs to the node currently being split).
    mark: Vec<u32>,
    epoch: u32,
    /// Per-class weighted counts (left / right of the scan point).
    cls_left: Vec<u64>,
    cls_right: Vec<u64>,
    /// Weighted class counts of the node being split (feature-independent,
    /// computed once per node and reused by every feature scan).
    node_cls: Vec<u64>,
    /// Histogram engine: per-code node weight, all-zero between scans.
    code_w: Vec<u32>,
    /// Histogram engine: codes present in the node (the entries of
    /// `code_w` / the scratch slab that must be re-zeroed).
    touched: Vec<u32>,
    /// Histogram Gini: packed `code≪24 | class≪16 | weight` items.
    packed: Vec<u32>,
    packed_scratch: Vec<u32>,
    /// Counting-sort offsets (≤ 257).
    code_counts: Vec<u32>,
    /// Histogram Gini: per-sample `class≪16 | weight` payloads, combined
    /// once per tree (one f64→int conversion per sample per fit instead
    /// of one per item per scan).
    payload: Vec<u32>,
    /// The current node's payloads, gathered once per node.
    node_payload: Vec<u32>,
    /// Dense histogram slab pool (subtract mode) + scratch (sampled mode).
    slabs: Vec<HistSlab>,
    free_slabs: Vec<usize>,
    scratch_slab: HistSlab,
    /// Split index owned by standalone (non-forest) fits.
    own_index: SplitIndex,
}

impl TreeArena {
    /// Creates an empty arena; buffers grow on first use and are retained.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ScanItem {
    /// Order-preserving `u64` value key (exact) or bin code (histogram).
    key: u64,
    y: f64,
    w: u32,
}

/// Nodes with at least this many distinct samples keep a dense all-feature
/// histogram slab alive for the parent−sibling subtraction trick; per-
/// feature dense scratch accumulation engages whenever the node is at
/// least as large as that feature's bin count.
const HIST_DENSE_MIN: usize = 512;

/// A node covering at least `1/FILTER_SCAN_FACTOR` of all samples scans
/// the forest-shared sorted column with a membership filter instead of
/// re-sorting its own values.
const FILTER_SCAN_FACTOR: usize = 4;

/// Minimum average samples per histogram bin (LightGBM's
/// `min_data_in_bin` default): caps the effective bin count at `n / 3`.
const MIN_DATA_IN_BIN: usize = 3;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Pre-sorted columns maintained by aligned stable partitioning.
    ExactSorted,
    /// Per-node gather + u64-key sort of the sampled features.
    ExactGather,
    /// Binned histogram scan.
    Hist { max_bins: usize, subtract: bool },
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    /// Histogram engine: the last bin going left (partition by code).
    bin: Option<u8>,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    w: SampleWeights<'a>,
    n_classes: usize,
    config: TreeConfig,
    index: &'a SplitIndex,
    d: usize,
    m: usize,
    k: usize,
    total_weight: f64,
    engine: Engine,
    /// Weighted target sum / sum of squares of the current node (Mse),
    /// refreshed by `node_stats` and reused by the histogram scans.
    node_sum: f64,
    node_sq: f64,
    /// Whether exact Gini scans may use the compact pair records
    /// (multiplicities fit u16, class ids fit the payload).
    gini_pairs: bool,
    arena: &'a mut TreeArena,
}

impl<'a> Builder<'a> {
    /// Dense histogram for the root node (subtract mode only).
    fn root_slab(&mut self) -> Option<usize> {
        let Engine::Hist { subtract: true, .. } = self.engine else {
            return None;
        };
        if self.m < HIST_DENSE_MIN {
            return None;
        }
        let s = self.take_slab();
        self.accumulate_all(s, 0, self.m);
        Some(s)
    }

    fn take_slab(&mut self) -> usize {
        let Engine::Hist { max_bins, .. } = self.engine else {
            unreachable!("slabs are a histogram-engine resource");
        };
        let id = self.arena.free_slabs.pop().unwrap_or_else(|| {
            self.arena.slabs.push(HistSlab::default());
            self.arena.slabs.len() - 1
        });
        let slab = &mut self.arena.slabs[id];
        slab.ensure(self.config.criterion, self.d, max_bins, self.n_classes);
        slab.zero();
        id
    }

    fn free_slab(&mut self, id: usize) {
        self.arena.free_slabs.push(id);
    }

    /// Accumulates the dense histograms of members[lo..hi] for all `d`
    /// features into slab `s`.
    fn accumulate_all(&mut self, s: usize, lo: usize, hi: usize) {
        let Engine::Hist { max_bins, .. } = self.engine else {
            unreachable!();
        };
        let TreeArena { slabs, members, .. } = &mut *self.arena;
        let slab = &mut slabs[s];
        let members = &members[lo..hi];
        for f in 0..self.d {
            let codes = self.index.feature_codes(f);
            match self.config.criterion {
                Criterion::Gini => {
                    let nc = self.n_classes;
                    let region = &mut slab.cnt[f * max_bins * nc..(f + 1) * max_bins * nc];
                    for &id in members {
                        let code = codes[id as usize] as usize;
                        region[code * nc + self.y[id as usize] as usize] += self.w.of(id) as u32;
                    }
                }
                Criterion::Mse => {
                    let base = f * max_bins;
                    for &id in members {
                        let code = codes[id as usize] as usize;
                        let wi = self.w.of(id);
                        let yv = self.y[id as usize];
                        slab.cnt[base + code] += wi as u32;
                        slab.sum[base + code] += wi as f64 * yv;
                    }
                }
            }
        }
    }

    /// Builds the subtree over members[lo..hi]; `slab` (if any) holds this
    /// node's dense histograms and is returned to the pool before exit.
    fn build(
        &mut self,
        lo: usize,
        hi: usize,
        depth: usize,
        slab: Option<usize>,
        rng: &mut impl Rng,
    ) -> u32 {
        let node_id = self.arena.nodes.len() as u32;
        self.arena.nodes.push(Node::Leaf { value: 0.0 });

        let (wn, leaf_value, pure) = self.node_stats(lo, hi);
        let stop = wn < self.config.min_samples_split as u64
            || self.config.max_depth.is_some_and(|d| depth >= d)
            || pure;
        if stop {
            self.arena.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
            if let Some(s) = slab {
                self.free_slab(s);
            }
            return node_id;
        }

        let best = self.find_best_split(lo, hi, wn, slab, rng);
        let Some(best) = best else {
            self.arena.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
            if let Some(s) = slab {
                self.free_slab(s);
            }
            return node_id;
        };

        // Partition the membership list in place (same swap order as
        // classic CART). Only the exact-sorted engine needs the per-sample
        // `goes_left` marks afterwards (to keep the sorted columns
        // aligned); the other engines test the predicate inline.
        let mut lt = lo;
        {
            let TreeArena {
                members, goes_left, ..
            } = &mut *self.arena;
            match best.bin {
                Some(bin) => {
                    let codes = self.index.feature_codes(best.feature);
                    for i in lo..hi {
                        if codes[members[i] as usize] <= bin {
                            members.swap(i, lt);
                            lt += 1;
                        }
                    }
                }
                None if self.engine == Engine::ExactSorted => {
                    for &id in &members[lo..hi] {
                        goes_left[id as usize] =
                            self.x.get(id as usize, best.feature) <= best.threshold;
                    }
                    for i in lo..hi {
                        if goes_left[members[i] as usize] {
                            members.swap(i, lt);
                            lt += 1;
                        }
                    }
                }
                None => {
                    for i in lo..hi {
                        if self.x.get(members[i] as usize, best.feature) <= best.threshold {
                            members.swap(i, lt);
                            lt += 1;
                        }
                    }
                }
            }
        }
        if lt == lo || lt == hi {
            // Numerical degeneracy; fall back to a leaf.
            self.arena.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
            if let Some(s) = slab {
                self.free_slab(s);
            }
            return node_id;
        }
        self.arena.importances[best.feature] += (wn as f64 / self.total_weight) * best.gain;

        if self.engine == Engine::ExactSorted {
            self.partition_sorted(lo, lt, hi);
        }
        let (left_slab, right_slab) = self.child_slabs(lo, lt, hi, slab);

        let left = self.build(lo, lt, depth + 1, left_slab, rng);
        let right = self.build(lt, hi, depth + 1, right_slab, rng);
        self.arena.nodes[node_id as usize] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        node_id
    }

    /// Stable in-place partition of every feature's sorted segment
    /// [lo, hi) around the `goes_left` marks: sorted order is preserved on
    /// both sides, keeping all `d` columns aligned with the node ranges.
    fn partition_sorted(&mut self, lo: usize, lt: usize, hi: usize) {
        let TreeArena {
            sorted,
            part_scratch,
            goes_left,
            ..
        } = &mut *self.arena;
        for f in 0..self.d {
            let seg = &mut sorted[f * self.m + lo..f * self.m + hi];
            let mut write = 0usize;
            let mut spill = 0usize;
            for p in 0..seg.len() {
                let id = seg[p];
                if goes_left[id as usize] {
                    seg[write] = id;
                    write += 1;
                } else {
                    part_scratch[spill] = id;
                    spill += 1;
                }
            }
            debug_assert_eq!(write, lt - lo);
            seg[write..].copy_from_slice(&part_scratch[..spill]);
        }
    }

    /// Decides how each child obtains its dense histograms (subtract mode):
    /// the smaller child is accumulated, the larger reuses the parent slab
    /// via `parent − sibling`; children below the dense threshold use the
    /// sparse path instead.
    fn child_slabs(
        &mut self,
        lo: usize,
        lt: usize,
        hi: usize,
        slab: Option<usize>,
    ) -> (Option<usize>, Option<usize>) {
        let Some(s) = slab else {
            return (None, None);
        };
        let Engine::Hist { max_bins, .. } = self.engine else {
            unreachable!();
        };
        let left_ids = lt - lo;
        let right_ids = hi - lt;
        let left_dense = left_ids >= HIST_DENSE_MIN;
        let right_dense = right_ids >= HIST_DENSE_MIN;
        // Approximate per-feature cost of the subtraction itself.
        let stats = match self.config.criterion {
            Criterion::Gini => self.n_classes,
            Criterion::Mse => 3,
        };
        let subtract_cost = max_bins * stats;

        if left_dense && right_dense {
            let t = self.take_slab();
            if left_ids <= right_ids {
                self.accumulate_all(t, lo, lt);
                self.subtract_slab(s, t);
                (Some(t), Some(s))
            } else {
                self.accumulate_all(t, lt, hi);
                self.subtract_slab(s, t);
                (Some(s), Some(t))
            }
        } else if left_dense || right_dense {
            let (dense_lo, dense_hi, small_lo, small_hi) = if left_dense {
                (lo, lt, lt, hi)
            } else {
                (lt, hi, lo, lt)
            };
            let small_ids = small_hi - small_lo;
            if small_ids + subtract_cost < dense_hi - dense_lo {
                // parent − sibling is cheaper than re-accumulating.
                let t = self.take_slab();
                self.accumulate_all(t, small_lo, small_hi);
                self.subtract_slab(s, t);
                self.free_slab(t);
            } else {
                self.arena.slabs[s].zero();
                self.accumulate_all(s, dense_lo, dense_hi);
            }
            if left_dense {
                (Some(s), None)
            } else {
                (None, Some(s))
            }
        } else {
            self.free_slab(s);
            (None, None)
        }
    }

    fn subtract_slab(&mut self, dst: usize, src: usize) {
        let (a, b) = if dst < src {
            let (head, tail) = self.arena.slabs.split_at_mut(src);
            (&mut head[dst], &tail[0])
        } else {
            let (head, tail) = self.arena.slabs.split_at_mut(dst);
            (&mut tail[0], &head[src])
        };
        a.subtract(b);
    }

    /// Weighted size, leaf value and purity of members[lo..hi]. Also
    /// refreshes the node's feature-independent split statistics: weighted
    /// class counts (`node_cls`, Gini) or target moments (Mse), which the
    /// split scans reuse instead of recomputing per feature.
    fn node_stats(&mut self, lo: usize, hi: usize) -> (u64, f64, bool) {
        let TreeArena {
            members, node_cls, ..
        } = &mut *self.arena;
        let members = &members[lo..hi];
        let first_y = self.y[members[0] as usize];
        let mut pure = true;
        let mut wn = 0u64;
        match self.config.criterion {
            Criterion::Gini => {
                node_cls.fill(0);
                for &id in members {
                    let wi = self.w.of(id);
                    wn += wi;
                    let yv = self.y[id as usize];
                    node_cls[yv as usize] += wi;
                    pure &= yv == first_y;
                }
                let leaf = node_cls
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(cls, _)| cls as f64)
                    .unwrap_or(0.0);
                (wn, leaf, pure)
            }
            Criterion::Mse => {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for &id in members {
                    let wi = self.w.of(id);
                    wn += wi;
                    let yv = self.y[id as usize];
                    let wf = wi as f64;
                    sum += match self.w {
                        SampleWeights::Unit => yv,
                        SampleWeights::Counts(_) => wf * yv,
                    };
                    sq += wf * (yv * yv);
                    pure &= yv == first_y;
                }
                self.node_sum = sum;
                self.node_sq = sq;
                (wn, sum / wn as f64, pure)
            }
        }
    }

    fn find_best_split(
        &mut self,
        lo: usize,
        hi: usize,
        wn: u64,
        slab: Option<usize>,
        rng: &mut impl Rng,
    ) -> Option<BestSplit> {
        // Random feature subset without replacement (partial shuffle).
        let mut feats = std::mem::take(&mut self.arena.feat_buf);
        let (sampled, _) = feats.partial_shuffle(rng, self.k);
        // Large nodes under the gather engine scan the forest-shared
        // sorted columns, filtering by node membership marks, instead of
        // re-sorting — O(n) streaming beats O(m log m) sorting when the
        // node covers a decent fraction of the samples.
        let filter_scan = self.engine == Engine::ExactGather
            && !self.index.sorted.is_empty()
            && (hi - lo) * FILTER_SCAN_FACTOR >= self.index.n;
        if filter_scan {
            let TreeArena {
                members,
                mark,
                epoch,
                ..
            } = &mut *self.arena;
            *epoch += 1;
            for &id in &members[lo..hi] {
                mark[id as usize] = *epoch;
            }
        }
        if matches!(self.engine, Engine::Hist { .. })
            && self.config.criterion == Criterion::Gini
            && slab.is_none()
        {
            // Gather the node's `class≪16 | weight` payloads once; every
            // sampled feature's scan reads them sequentially instead of
            // re-chasing the per-sample indirection.
            let TreeArena {
                members,
                payload,
                node_payload,
                ..
            } = &mut *self.arena;
            node_payload.clear();
            node_payload.extend(members[lo..hi].iter().map(|&id| payload[id as usize]));
        }
        let mut best: Option<BestSplit> = None;
        for &f in sampled.iter() {
            let cand = match self.engine {
                Engine::ExactSorted | Engine::ExactGather => {
                    self.scan_exact(f, lo, hi, wn, filter_scan)
                }
                Engine::Hist { .. } => self.scan_hist(f, lo, hi, wn, slab),
            };
            if let Some(cand) = cand {
                if best.as_ref().is_none_or(|b| cand.gain > b.gain) {
                    best = Some(cand);
                }
            }
        }
        self.arena.feat_buf = feats;
        best
    }

    /// Exact scan of one feature: fills `items` in ascending value order
    /// (from the maintained sorted segment, the filtered shared column, or
    /// a per-node key sort), then runs the boundary scan kernel.
    fn scan_exact(
        &mut self,
        f: usize,
        lo: usize,
        hi: usize,
        wn: u64,
        filter_scan: bool,
    ) -> Option<BestSplit> {
        let TreeArena {
            sorted,
            members,
            items,
            pairs,
            mark,
            epoch,
            cls_left,
            cls_right,
            node_cls,
            ..
        } = &mut *self.arena;
        let min_leaf = self.config.min_samples_leaf as u64;

        if self.config.criterion == Criterion::Gini && self.gini_pairs {
            // Gini values fit 16-byte `(key, class≪16 | weight)` pairs —
            // half the sort traffic of the generic `ScanItem` records.
            // Tie order inside equal keys differs from a key-only sort,
            // but every Gini statistic is integer-exact over the tied run,
            // so the resulting splits are bit-identical.
            let pack = |id: u32| {
                (
                    key_of(self.x.get(id as usize, f)),
                    ((self.y[id as usize] as u32) << 16) | self.w.of(id) as u32,
                )
            };
            pairs.clear();
            match self.engine {
                Engine::ExactSorted => {
                    let seg = &sorted[f * self.m + lo..f * self.m + hi];
                    pairs.extend(seg.iter().map(|&id| pack(id)));
                }
                Engine::ExactGather if filter_scan => {
                    let col = &self.index.sorted[f * self.index.n..(f + 1) * self.index.n];
                    pairs.extend(
                        col.iter()
                            .filter(|&&id| mark[id as usize] == *epoch)
                            .map(|&id| pack(id)),
                    );
                }
                _ => {
                    pairs.extend(members[lo..hi].iter().map(|&id| pack(id)));
                    pairs.sort_unstable();
                }
            }
            if pairs[0].0 == pairs[pairs.len() - 1].0 {
                return None; // constant feature
            }
            return scan_gini(
                pairs
                    .iter()
                    .map(|&(k, p)| (val_of(k), (p >> 16) as usize, (p & 0xffff) as u64)),
                wn,
                min_leaf,
                node_cls,
                cls_left,
                cls_right,
            )
            .map(|(threshold, gain)| BestSplit {
                feature: f,
                threshold,
                gain,
                bin: None,
            });
        }

        items.clear();
        match self.engine {
            Engine::ExactSorted => {
                let seg = &sorted[f * self.m + lo..f * self.m + hi];
                items.extend(seg.iter().map(|&id| ScanItem {
                    key: key_of(self.x.get(id as usize, f)),
                    y: self.y[id as usize],
                    w: self.w.of(id) as u32,
                }));
            }
            Engine::ExactGather if filter_scan => {
                let col = &self.index.sorted[f * self.index.n..(f + 1) * self.index.n];
                items.extend(
                    col.iter()
                        .filter(|&&id| mark[id as usize] == *epoch)
                        .map(|&id| ScanItem {
                            key: key_of(self.x.get(id as usize, f)),
                            y: self.y[id as usize],
                            w: self.w.of(id) as u32,
                        }),
                );
            }
            _ => {
                items.extend(members[lo..hi].iter().map(|&id| ScanItem {
                    key: key_of(self.x.get(id as usize, f)),
                    y: self.y[id as usize],
                    w: self.w.of(id) as u32,
                }));
                items.sort_unstable_by_key(|it| it.key);
            }
        }
        if items[0].key == items[items.len() - 1].key {
            return None; // constant feature
        }
        match self.config.criterion {
            Criterion::Gini => scan_gini(
                items
                    .iter()
                    .map(|it| (val_of(it.key), it.y as usize, it.w as u64)),
                wn,
                min_leaf,
                node_cls,
                cls_left,
                cls_right,
            ),
            Criterion::Mse => scan_mse(
                items.iter().map(|it| (val_of(it.key), it.y, it.w as u64)),
                wn,
                min_leaf,
            ),
        }
        .map(|(threshold, gain)| BestSplit {
            feature: f,
            threshold,
            gain,
            bin: None,
        })
    }

    /// Histogram scan: dense all-feature slab (subtract mode) or
    /// touched-codes scratch accumulation.
    fn scan_hist(
        &mut self,
        f: usize,
        lo: usize,
        hi: usize,
        wn: u64,
        slab: Option<usize>,
    ) -> Option<BestSplit> {
        let Engine::Hist { max_bins, .. } = self.engine else {
            unreachable!();
        };
        let bins = self.index.n_bins[f] as usize;
        if bins < 2 {
            return None; // globally constant feature
        }
        let splits = self.index.feature_splits(f);
        let min_leaf = self.config.min_samples_leaf as u64;
        let nc = self.n_classes;

        if let Some(s) = slab {
            // Dense histograms already accumulated for every feature.
            let TreeArena {
                slabs,
                cls_left,
                cls_right,
                node_cls,
                ..
            } = &mut *self.arena;
            let slab = &slabs[s];
            let res = match self.config.criterion {
                Criterion::Gini => {
                    let base = f * max_bins * nc;
                    scan_gini_bins(
                        &slab.cnt[base..base + bins * nc],
                        nc,
                        wn,
                        min_leaf,
                        node_cls,
                        cls_left,
                        cls_right,
                    )
                }
                Criterion::Mse => {
                    let base = f * max_bins;
                    scan_mse_bins(
                        &slab.cnt[base..base + bins],
                        &slab.sum[base..base + bins],
                        wn,
                        min_leaf,
                        self.node_sum,
                        self.node_sq,
                    )
                }
            };
            return res.map(|(bin, gain)| BestSplit {
                feature: f,
                threshold: splits[bin as usize],
                gain,
                bin: Some(bin),
            });
        }

        let codes = self.index.feature_codes(f);
        let result = match self.config.criterion {
            Criterion::Gini => {
                // Pack each sample into one u32 — `code ≪ 24 | class ≪ 16
                // | weight` — order by code (stable counting sort for
                // larger nodes, integer sort for tiny ones), then scan
                // with one class update per *item*: no per-code class
                // loops, no wide records. Bootstrap multiplicities always
                // fit u16 (at most ~log n / log log n in practice; the
                // forest constructs them itself).
                let TreeArena {
                    members,
                    packed,
                    packed_scratch,
                    code_counts,
                    cls_left,
                    node_cls,
                    node_payload,
                    ..
                } = &mut *self.arena;
                let node = &members[lo..hi];
                let node_payload: &[u32] = node_payload;
                debug_assert_eq!(node_payload.len(), node.len());
                let pack = |j: usize| {
                    debug_assert!(
                        self.w.of(node[j]) < 1 << 16,
                        "sample multiplicity exceeds u16"
                    );
                    ((codes[node[j] as usize] as u32) << 24) | node_payload[j]
                };
                let items: &[u32] = if node.len() * 4 >= bins {
                    // Stable counting sort by the code byte: one fused
                    // pack+count pass over the member list, then a scatter
                    // that reads only the packed records.
                    code_counts.clear();
                    code_counts.resize(bins + 1, 0);
                    packed.clear();
                    packed.extend((0..node.len()).map(|j| {
                        let p = pack(j);
                        code_counts[(p >> 24) as usize + 1] += 1;
                        p
                    }));
                    for b in 1..=bins {
                        code_counts[b] += code_counts[b - 1];
                    }
                    // `packed_scratch` is pre-sized by `fit_inner`; the
                    // scatter overwrites exactly the first m slots, so no
                    // per-scan clear or zero-fill is needed.
                    let sorted_items = &mut packed_scratch[..packed.len()];
                    for &p in packed.iter() {
                        let c = (p >> 24) as usize;
                        sorted_items[code_counts[c] as usize] = p;
                        code_counts[c] += 1;
                    }
                    &sorted_items[..]
                } else {
                    packed.clear();
                    packed.extend((0..node.len()).map(pack));
                    packed.sort_unstable();
                    &packed[..]
                };
                if items[0] >> 24 == items[items.len() - 1] >> 24 {
                    None // constant within the node
                } else {
                    scan_gini_packed(items, wn, min_leaf, node_cls, cls_left)
                }
            }
            Criterion::Mse => {
                // Per-code weight and Σw·y accumulation over the touched
                // codes only, then an ascending scan; re-zero exactly what
                // was touched.
                let TreeArena {
                    members,
                    scratch_slab,
                    code_w,
                    touched,
                    ..
                } = &mut *self.arena;
                let node = &members[lo..hi];
                touched.clear();
                for &id in node {
                    let c = codes[id as usize] as usize;
                    if code_w[c] == 0 {
                        touched.push(c as u32);
                    }
                    let wi = self.w.of(id);
                    code_w[c] += wi as u32;
                    scratch_slab.sum[c] += wi as f64 * self.y[id as usize];
                }
                let result = if touched.len() < 2 {
                    None // constant within the node
                } else {
                    touched.sort_unstable();
                    scan_mse_touched(
                        &scratch_slab.sum,
                        code_w,
                        touched,
                        wn,
                        min_leaf,
                        self.node_sum,
                        self.node_sq,
                    )
                };
                for &c in touched.iter() {
                    let c = c as usize;
                    code_w[c] = 0;
                    scratch_slab.sum[c] = 0.0;
                }
                result
            }
        };
        result.map(|(bin, gain)| BestSplit {
            feature: f,
            threshold: splits[bin as usize],
            gain,
            bin: Some(bin),
        })
    }
}

/// Exact Gini scan over `(value, class, weight)` triples in ascending value
/// order. Weighted increments reproduce the classic per-duplicate updates
/// bit-for-bit (all intermediates are exact small integers in `f64`), and
/// the node's class counts are integer-exact regardless of how they were
/// accumulated, so seeding from the feature-independent `node_cls` is also
/// bit-identical to the classic per-feature counting pass.
fn scan_gini(
    iter: impl Iterator<Item = (f64, usize, u64)>,
    wn: u64,
    min_leaf: u64,
    node_cls: &[u64],
    left: &mut [u64],
    right: &mut [u64],
) -> Option<(f64, f64)> {
    left.fill(0);
    right.copy_from_slice(node_cls);
    let parent_gini = gini_of(right, wn);
    let mut sum_sq_left = 0.0f64;
    let mut sum_sq_right: f64 = right.iter().map(|&c| (c * c) as f64).sum();
    let mut best_gain = 0.0;
    let mut best_threshold = None;
    let mut left_w = 0u64;
    let mut prev_val = f64::NAN;
    let mut first = true;
    for (v, y, w) in iter {
        if !first && v != prev_val && left_w >= min_leaf && wn - left_w >= min_leaf {
            let nl = left_w as f64;
            let nr = (wn - left_w) as f64;
            let gini_l = 1.0 - sum_sq_left / (nl * nl);
            let gini_r = 1.0 - sum_sq_right / (nr * nr);
            let weighted = (nl * gini_l + nr * gini_r) / wn as f64;
            let gain = parent_gini - weighted;
            if gain > best_gain {
                best_gain = gain;
                best_threshold = Some(midpoint(prev_val, v));
            }
        }
        let c = y;
        sum_sq_left += (2 * left[c] * w + w * w) as f64;
        sum_sq_right -= (2 * right[c] * w - w * w) as f64;
        left[c] += w;
        right[c] -= w;
        left_w += w;
        prev_val = v;
        first = false;
    }
    best_threshold.map(|t| (t, best_gain))
}

/// Exact variance-reduction scan over `(value, target, weight)` triples in
/// ascending value order.
///
/// Weighted targets are accumulated by *repeated addition* (`w` adds of
/// `y`), not one `w·y` multiply: this reproduces the duplicate-expansion
/// fold of classic bootstrap bit-for-bit, so exactly-tied candidate gains
/// (common in small nodes, where many features induce the same partition)
/// break toward the same winner.
fn scan_mse(
    iter: impl Iterator<Item = (f64, f64, u64)> + Clone,
    wn: u64,
    min_leaf: u64,
) -> Option<(f64, f64)> {
    let mut total_sum = 0.0f64;
    let mut total_sq = 0.0f64;
    for (_, y, w) in iter.clone() {
        let yy = y * y;
        for _ in 0..w {
            total_sum += y;
            total_sq += yy;
        }
    }
    let n = wn as f64;
    let parent_var = total_sq / n - (total_sum / n).powi(2);
    let mut best_gain = 0.0;
    let mut best_threshold = None;
    let mut sum_l = 0.0f64;
    let mut sq_l = 0.0f64;
    let mut left_w = 0u64;
    let mut prev_val = f64::NAN;
    let mut first = true;
    for (v, y, w) in iter {
        if !first && v != prev_val && left_w >= min_leaf && wn - left_w >= min_leaf {
            let nl = left_w as f64;
            let nr = (wn - left_w) as f64;
            let sum_r = total_sum - sum_l;
            let sq_r = total_sq - sq_l;
            let var_l = (sq_l / nl - (sum_l / nl).powi(2)).max(0.0);
            let var_r = (sq_r / nr - (sum_r / nr).powi(2)).max(0.0);
            let weighted = (nl * var_l + nr * var_r) / n;
            let gain = parent_var - weighted;
            if gain > best_gain {
                best_gain = gain;
                best_threshold = Some(midpoint(prev_val, v));
            }
        }
        let yy = y * y;
        for _ in 0..w {
            sum_l += y;
            sq_l += yy;
        }
        left_w += w;
        prev_val = v;
        first = false;
    }
    best_threshold.map(|t| (t, best_gain))
}

/// Packed histogram Gini scan over `code≪24 | class≪16 | weight` items in
/// ascending code order: one class update per item, reduced-objective
/// (`score = Σc_l²/n_l + Σc_r²/n_r`, monotone in the Gini gain) boundary
/// evaluation at each code change.
fn scan_gini_packed(
    packed: &[u32],
    wn: u64,
    min_leaf: u64,
    node_cls: &[u64],
    left: &mut [u64],
) -> Option<(u8, f64)> {
    left.fill(0);
    let sum_sq_parent: u64 = node_cls.iter().map(|&c| c * c).sum();
    // Everything stays in integers. Only the left side is tracked per
    // item; the right-hand Σc² is reconstructed at boundary evaluations
    // from `Σc²_r = Σc²_parent − 2·cross + Σc²_l` with
    // `cross = Σ node_c·left_c`, which costs one multiply per item
    // instead of a second count array with its own updates.
    let mut ssl = 0u64;
    let mut cross = 0u64;
    let mut left_w = 0u64;
    let mut best = None;
    let mut prev_code = packed[0] >> 24;
    if wn <= 4000 {
        // With a modest node weight the score comparisons are exact
        // integer cross-multiplications: score = ssl/n_l + ssr/n_r as a
        // fraction; numerators ≤ wn³ and cross products ≤ wn⁵ < 2⁶⁴.
        // Zero-gain baseline: parent score is Σc²/wn.
        let mut b_num = sum_sq_parent;
        let mut b_den = wn;
        for &p in packed {
            let code = p >> 24;
            if code != prev_code && left_w >= min_leaf && wn - left_w >= min_leaf {
                let nl = left_w;
                let nr = wn - left_w;
                let ssr = sum_sq_parent + ssl - 2 * cross;
                let num = ssl * nr + ssr * nl;
                let den = nl * nr;
                if num * b_den > b_num * den {
                    b_num = num;
                    b_den = den;
                    best = Some(prev_code as u8);
                }
            }
            let cls = ((p >> 16) & 0xff) as usize;
            let w = (p & 0xffff) as u64;
            let l = left[cls];
            ssl += 2 * l * w + w * w;
            cross += node_cls[cls] * w;
            left[cls] = l + w;
            left_w += w;
            prev_code = code;
        }
        return best.map(|bin| {
            let score = b_num as f64 / b_den as f64;
            (bin, (score - sum_sq_parent as f64 / wn as f64) / wn as f64)
        });
    }
    // Zero-gain baseline: only boundaries that strictly improve count.
    let mut best_score = sum_sq_parent as f64 / wn as f64;
    for &p in packed {
        let code = p >> 24;
        if code != prev_code && left_w >= min_leaf && wn - left_w >= min_leaf {
            let ssr = sum_sq_parent + ssl - 2 * cross;
            let score = ssl as f64 / left_w as f64 + ssr as f64 / (wn - left_w) as f64;
            if score > best_score {
                best_score = score;
                best = Some(prev_code as u8);
            }
        }
        let cls = ((p >> 16) & 0xff) as usize;
        let w = (p & 0xffff) as u64;
        let l = left[cls];
        ssl += 2 * l * w + w * w;
        cross += node_cls[cls] * w;
        left[cls] = l + w;
        left_w += w;
        prev_code = code;
    }
    // Impurity gain of the winner (for importances):
    // gain = (score − Σc²/wn) / wn.
    best.map(|bin| {
        (
            bin,
            (best_score - sum_sq_parent as f64 / wn as f64) / wn as f64,
        )
    })
}

/// Touched-codes histogram variance scan with the reduced objective
/// `score = S_l²/n_l + S_r²/n_r` (monotone in the variance gain).
fn scan_mse_touched(
    sum: &[f64],
    code_w: &[u32],
    touched: &[u32],
    wn: u64,
    min_leaf: u64,
    node_sum: f64,
    node_sq: f64,
) -> Option<(u8, f64)> {
    let n = wn as f64;
    let mut sum_l = 0.0f64;
    let mut left_w = 0u64;
    let mut best = None;
    let mut best_score = node_sum * node_sum / n;
    for &tc in touched.iter().take(touched.len() - 1) {
        let c = tc as usize;
        sum_l += sum[c];
        left_w += code_w[c] as u64;
        if left_w < min_leaf || wn - left_w < min_leaf {
            continue;
        }
        let sum_r = node_sum - sum_l;
        let score = sum_l * sum_l / left_w as f64 + sum_r * sum_r / (wn - left_w) as f64;
        if score > best_score {
            best_score = score;
            best = Some(tc as u8);
        }
    }
    best.map(|bin| {
        let parent_var = node_sq / n - (node_sum / n).powi(2);
        let weighted = (node_sq - best_score) / n;
        (bin, parent_var - weighted)
    })
}

/// Dense histogram Gini scan over `bins` contiguous per-bin class counts
/// (subtract-mode slabs), reduced-objective evaluation.
fn scan_gini_bins(
    cnt: &[u32],
    nc: usize,
    wn: u64,
    min_leaf: u64,
    node_cls: &[u64],
    left: &mut [u64],
    right: &mut [u64],
) -> Option<(u8, f64)> {
    let bins = cnt.len() / nc;
    left.fill(0);
    right.copy_from_slice(node_cls);
    let sum_sq_parent: f64 = node_cls.iter().map(|&c| (c * c) as f64).sum();
    let mut ssl = 0.0f64;
    let mut ssr = sum_sq_parent;
    let mut left_w = 0u64;
    let mut best = None;
    let mut best_score = sum_sq_parent / wn as f64;
    for b in 0..bins - 1 {
        let mut bin_w = 0u64;
        for (cls, (l, r)) in left.iter_mut().zip(right.iter_mut()).enumerate() {
            let wcls = cnt[b * nc + cls] as u64;
            if wcls > 0 {
                ssl += (2 * *l * wcls + wcls * wcls) as f64;
                ssr -= (2 * *r * wcls - wcls * wcls) as f64;
                *l += wcls;
                *r -= wcls;
                bin_w += wcls;
            }
        }
        left_w += bin_w;
        // Evaluate only after non-empty bins: an empty bin's boundary
        // yields the identical partition with a later threshold.
        if bin_w == 0 || left_w < min_leaf || wn - left_w < min_leaf || left_w == wn {
            continue;
        }
        let score = ssl / left_w as f64 + ssr / (wn - left_w) as f64;
        if score > best_score {
            best_score = score;
            best = Some(b as u8);
        }
    }
    best.map(|bin| (bin, (best_score - sum_sq_parent / wn as f64) / wn as f64))
}

/// Dense histogram variance scan over per-bin `(weight, Σwy)` slabs.
fn scan_mse_bins(
    cnt: &[u32],
    sum: &[f64],
    wn: u64,
    min_leaf: u64,
    node_sum: f64,
    node_sq: f64,
) -> Option<(u8, f64)> {
    let bins = cnt.len();
    let n = wn as f64;
    let mut sum_l = 0.0f64;
    let mut left_w = 0u64;
    let mut best = None;
    let mut best_score = node_sum * node_sum / n;
    for b in 0..bins - 1 {
        let bin_w = cnt[b] as u64;
        sum_l += sum[b];
        left_w += bin_w;
        if bin_w == 0 || left_w < min_leaf || wn - left_w < min_leaf || left_w == wn {
            continue;
        }
        let sum_r = node_sum - sum_l;
        let score = sum_l * sum_l / left_w as f64 + sum_r * sum_r / (wn - left_w) as f64;
        if score > best_score {
            best_score = score;
            best = Some(b as u8);
        }
    }
    best.map(|bin| {
        let parent_var = node_sq / n - (node_sum / n).powi(2);
        let weighted = (node_sq - best_score) / n;
        (bin, parent_var - weighted)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Two well-separated blobs in 2-D.
    fn blobs() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = (i % 10) as f64 * 0.01;
            if i % 2 == 0 {
                rows.push([0.0 + j, 1.0 - j]);
                y.push(0.0);
            } else {
                rows.push([5.0 + j, -4.0 + j]);
                y.push(1.0);
            }
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn classifies_separable_data_perfectly() {
        let (x, y) = blobs();
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        assert_eq!(pred, y);
        // A single split suffices.
        assert!(tree.depth() <= 2, "depth={}", tree.depth());
    }

    #[test]
    fn classifies_separable_data_with_histogram_engine() {
        let (x, y) = blobs();
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            split_algo: SplitAlgo::histogram(),
            ..TreeConfig::classification()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        assert_eq!(tree.predict(&x).unwrap(), y);
    }

    #[test]
    fn regression_fits_step_function() {
        let x = Matrix::from_fn(50, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..50).map(|r| if r < 25 { 1.0 } else { 9.0 }).collect();
        let tree = DecisionTree::fit(&x, &y, 0, &TreeConfig::regression(), &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn regression_fits_step_function_with_histogram_engine() {
        // 150 samples quantize to 50 three-sample bins (min_data_in_bin),
        // and the step boundary at 75 falls on a bin edge, so the fit is
        // still exact.
        let x = Matrix::from_fn(150, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..150).map(|r| if r < 75 { 1.0 } else { 9.0 }).collect();
        let cfg = TreeConfig {
            split_algo: SplitAlgo::histogram(),
            ..TreeConfig::regression()
        };
        let tree = DecisionTree::fit(&x, &y, 0, &cfg, &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn coarse_histogram_bins_still_learn() {
        // 8 bins on 200 distinct values: thresholds are approximate but a
        // clean step target is easily recovered.
        let x = Matrix::from_fn(200, 1, |r, _| r as f64 / 3.0);
        let y: Vec<f64> = (0..200).map(|r| if r < 100 { -2.0 } else { 2.0 }).collect();
        let cfg = TreeConfig {
            split_algo: SplitAlgo::Histogram { max_bins: 8 },
            ..TreeConfig::regression()
        };
        let tree = DecisionTree::fit(&x, &y, 0, &cfg, &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn max_depth_limits_growth() {
        let x = Matrix::from_fn(64, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..64).map(|r| (r % 2) as f64).collect();
        let cfg = TreeConfig {
            max_depth: Some(3),
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_fn(20, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..20).map(|r| if r < 1 { 1.0 } else { 0.0 }).collect();
        let cfg = TreeConfig {
            min_samples_leaf: 5,
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        // The only useful split (x <= 0.5) violates min_samples_leaf, so the
        // tree may instead split at >= 5 samples per side or stay a leaf; in
        // all cases every leaf must hold >= 5 training samples, which we can
        // check indirectly: no split threshold below 4.5 or above 14.5.
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        for idx in 0..tree.node_count() {
            if let Node::Split { threshold, .. } = &tree.nodes[idx] {
                assert!(*threshold >= 4.0 && *threshold <= 15.0);
            }
        }
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::filled(10, 3, 1.0);
        let y: Vec<f64> = (0..10).map(|r| (r % 2) as f64).collect();
        for algo in [SplitAlgo::Exact, SplitAlgo::histogram()] {
            let cfg = TreeConfig {
                max_features: MaxFeatures::All,
                split_algo: algo,
                ..TreeConfig::classification()
            };
            let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
            assert_eq!(tree.node_count(), 1);
            assert_eq!(tree.depth(), 0);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let x = Matrix::zeros(4, 2);
        let cfg = TreeConfig::classification();
        assert!(DecisionTree::fit(&x, &[0.0; 3], 2, &cfg, &mut rng()).is_err());
        assert!(DecisionTree::fit(&Matrix::zeros(0, 2), &[], 2, &cfg, &mut rng()).is_err());
        // label out of range
        assert!(DecisionTree::fit(&x, &[0.0, 1.0, 2.0, 0.0], 2, &cfg, &mut rng()).is_err());
        // fractional class label
        assert!(DecisionTree::fit(&x, &[0.5; 4], 2, &cfg, &mut rng()).is_err());
    }

    #[test]
    fn rejects_non_finite_features() {
        let y = [0.0, 1.0, 0.0, 1.0];
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut x = Matrix::from_fn(4, 2, |r, c| (r + c) as f64);
            x.set(2, 1, bad);
            for algo in [SplitAlgo::Exact, SplitAlgo::histogram()] {
                let cfg = TreeConfig {
                    split_algo: algo,
                    ..TreeConfig::classification()
                };
                let err = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap_err();
                assert!(
                    matches!(err, MlError::NonFinite(_)),
                    "expected NonFinite, got {err:?}"
                );
            }
        }
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let (x, y) = blobs();
        let tree = DecisionTree::fit(&x, &y, 2, &TreeConfig::classification(), &mut rng()).unwrap();
        assert!(tree.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn sqrt_feature_sampling_still_learns() {
        let (x, y) = blobs();
        let tree = DecisionTree::fit(&x, &y, 2, &TreeConfig::classification(), &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        let correct = pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        for algo in [SplitAlgo::Exact, SplitAlgo::histogram()] {
            let cfg = TreeConfig {
                split_algo: algo,
                ..TreeConfig::classification()
            };
            let t1 = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
            let t2 = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
            assert_eq!(t1.predict(&x).unwrap(), t2.predict(&x).unwrap());
            assert_eq!(t1.node_count(), t2.node_count());
        }
    }

    #[test]
    fn arena_reuse_matches_fresh_fits() {
        let (x, y) = blobs();
        let mut arena = TreeArena::new();
        for algo in [SplitAlgo::Exact, SplitAlgo::histogram()] {
            let cfg = TreeConfig {
                split_algo: algo,
                ..TreeConfig::classification()
            };
            let fresh = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
            let reused =
                DecisionTree::fit_with_arena(&mut arena, &x, &y, 2, &cfg, &mut rng()).unwrap();
            assert_eq!(fresh.predict(&x).unwrap(), reused.predict(&x).unwrap());
            assert_eq!(fresh.node_count(), reused.node_count());
        }
    }

    #[test]
    fn key_mapping_is_order_preserving_and_invertible() {
        let vals = [
            -1.0e300, -3.5, -1.0, -1e-300, -0.0, 0.0, 1e-300, 0.5, 1.0, 7.25, 1.0e300,
        ];
        for w in vals.windows(2) {
            assert!(key_of(w[0]) <= key_of(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &vals {
            let back = val_of(key_of(v));
            assert_eq!(back, v + 0.0); // -0.0 canonicalized to +0.0
        }
        assert_eq!(key_of(-0.0), key_of(0.0));
    }

    #[test]
    fn histogram_bins_cap_and_cover() {
        // 1000 distinct values, 16 bins: every sample coded, codes < 16.
        let x = Matrix::from_fn(1000, 1, |r, _| (r as f64 * 0.37).sin() * 50.0);
        let idx = SplitIndex::build(&x, SplitAlgo::Histogram { max_bins: 16 });
        assert!(idx.n_bins[0] as usize <= 16);
        assert!(idx.n_bins[0] >= 2);
        let codes = idx.feature_codes(0);
        assert!(codes.iter().all(|&c| (c as u32) < idx.n_bins[0]));
        // Thresholds strictly increase.
        let splits = idx.feature_splits(0);
        assert_eq!(splits.len(), idx.n_bins[0] as usize - 1);
        for w in splits.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Codes respect the thresholds.
        for (r, &rc) in codes.iter().enumerate() {
            let v = x.get(r, 0);
            let code = rc as usize;
            if code > 0 {
                assert!(v > splits[code - 1]);
            }
            if code < splits.len() {
                assert!(v <= splits[code]);
            }
        }
    }

    #[test]
    fn histogram_with_few_distinct_values_matches_exact() {
        // 6 distinct values < 256 bins: one bin per value, so both engines
        // see identical candidate thresholds and grow identical trees.
        let x = Matrix::from_fn(120, 3, |r, c| ((r * (c + 3)) % 6) as f64);
        let y: Vec<f64> = (0..120).map(|r| ((r / 3) % 2) as f64).collect();
        let exact_cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        let hist_cfg = TreeConfig {
            split_algo: SplitAlgo::histogram(),
            ..exact_cfg
        };
        let te = DecisionTree::fit(&x, &y, 2, &exact_cfg, &mut rng()).unwrap();
        let th = DecisionTree::fit(&x, &y, 2, &hist_cfg, &mut rng()).unwrap();
        assert_eq!(te.predict(&x).unwrap(), th.predict(&x).unwrap());
        assert_eq!(te.node_count(), th.node_count());
    }
}
