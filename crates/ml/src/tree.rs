//! CART decision trees: the building block of the random forests.
//!
//! Splits minimize Gini impurity (classification) or within-node variance
//! (regression), evaluated by a single sorted scan per candidate feature.
//! Feature subsampling happens *per split* (like scikit-learn), which is
//! what decorrelates forest members beyond bagging.

use crate::error::{MlError, Result};
use cwsmooth_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Split quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Variance reduction / mean squared error (regression).
    Mse,
}

/// How many features are examined at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (scikit-learn's regression default).
    All,
    /// `ceil(sqrt(d))` features (scikit-learn's classification default).
    Sqrt,
    /// A fixed count (clamped to `d`).
    Exact(usize),
}

impl MaxFeatures {
    fn resolve(self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Exact(k) => k.clamp(1, d),
        }
        .max(1)
    }
}

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (`None` = grow until pure).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Per-split feature subsampling.
    pub max_features: MaxFeatures,
    /// Split quality criterion.
    pub criterion: Criterion,
}

impl TreeConfig {
    /// scikit-learn-like defaults for classification.
    pub fn classification() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            criterion: Criterion::Gini,
        }
    }

    /// scikit-learn-like defaults for regression.
    pub fn regression() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            criterion: Criterion::Mse,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class id for classification trees, mean target for regression.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted CART tree.
///
/// For classification the leaf value is the majority class id (as `f64`);
/// for regression it is the mean target of the leaf's samples.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    criterion: Criterion,
    /// Impurity-based feature importances (mean decrease in impurity),
    /// normalized to sum to 1 (all zeros for a single-leaf tree).
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on `x` (rows = samples) and targets `y`.
    ///
    /// For classification pass class ids as `f64` (`0.0, 1.0, ...`) and
    /// `Criterion::Gini`; `n_classes` must cover every id. For regression
    /// pass `Criterion::Mse` and any targets (`n_classes` is ignored).
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::Shape("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!(
                "{} samples but {} targets",
                x.rows(),
                y.len()
            )));
        }
        if config.criterion == Criterion::Gini {
            if n_classes == 0 {
                return Err(MlError::Config("n_classes must be >= 1 for Gini".into()));
            }
            for &v in y {
                if v < 0.0 || v.fract() != 0.0 || v as usize >= n_classes {
                    return Err(MlError::Shape(format!(
                        "class label {v} outside 0..{n_classes}"
                    )));
                }
            }
        }
        if config.min_samples_split < 2 || config.min_samples_leaf < 1 {
            return Err(MlError::Config(
                "min_samples_split >= 2 and min_samples_leaf >= 1 required".into(),
            ));
        }

        let mut builder = Builder {
            x,
            y,
            n_classes,
            config: *config,
            nodes: Vec::new(),
            feat_buf: (0..x.cols()).collect(),
            pair_buf: Vec::new(),
            importances: vec![0.0; x.cols()],
            n_total: x.rows() as f64,
        };
        let mut indices: Vec<u32> = (0..x.rows() as u32).collect();
        builder.build(&mut indices, 0, rng);
        let mut importances = builder.importances;
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            importances.iter_mut().for_each(|v| *v /= total);
        }
        Ok(DecisionTree {
            nodes: builder.nodes,
            n_features: x.cols(),
            criterion: config.criterion,
            importances,
        })
    }

    /// Impurity-based feature importances (mean decrease in impurity,
    /// weighted by node size), normalized to sum to 1. All zeros when the
    /// tree is a single leaf.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Predicts the raw leaf value for one sample.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.n_features);
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predicts raw leaf values for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.n_features {
            return Err(MlError::Shape(format!(
                "tree expects {} features, got {}",
                self.n_features,
                x.cols()
            )));
        }
        Ok((0..x.rows()).map(|r| self.predict_one(x.row(r))).collect())
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth of the fitted tree (0 = a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_at(nodes, *left as usize).max(depth_at(nodes, *right as usize))
                }
            }
        }
        depth_at(&self.nodes, 0)
    }

    /// Criterion the tree was trained with.
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    n_classes: usize,
    config: TreeConfig,
    nodes: Vec<Node>,
    feat_buf: Vec<usize>,
    pair_buf: Vec<(f64, f64)>,
    importances: Vec<f64>,
    n_total: f64,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl<'a> Builder<'a> {
    /// Builds the subtree over `indices`, returning its node id.
    fn build(&mut self, indices: &mut [u32], depth: usize, rng: &mut impl Rng) -> u32 {
        let node_id = self.nodes.len() as u32;
        // Reserve the slot; will be overwritten below.
        self.nodes.push(Node::Leaf { value: 0.0 });

        let leaf_value = self.leaf_value(indices);
        let stop = indices.len() < self.config.min_samples_split
            || self.config.max_depth.is_some_and(|d| depth >= d)
            || self.is_pure(indices);
        if stop {
            self.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
            return node_id;
        }

        let best = self.find_best_split(indices, rng);
        let Some(best) = best else {
            self.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
            return node_id;
        };

        // Partition in place: left = x[f] <= threshold.
        let mut lt = 0usize;
        for i in 0..indices.len() {
            if self.x.get(indices[i] as usize, best.feature) <= best.threshold {
                indices.swap(i, lt);
                lt += 1;
            }
        }
        if lt == 0 || lt == indices.len() {
            // Numerical degeneracy; fall back to a leaf.
            self.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
            return node_id;
        }
        self.importances[best.feature] += (indices.len() as f64 / self.n_total) * best.gain;
        let (left_idx, right_idx) = indices.split_at_mut(lt);
        let left = self.build(left_idx, depth + 1, rng);
        let right = self.build(right_idx, depth + 1, rng);
        self.nodes[node_id as usize] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        node_id
    }

    fn is_pure(&self, indices: &[u32]) -> bool {
        let first = self.y[indices[0] as usize];
        indices.iter().all(|&i| self.y[i as usize] == first)
    }

    fn leaf_value(&self, indices: &[u32]) -> f64 {
        match self.config.criterion {
            Criterion::Gini => {
                let mut counts = vec![0usize; self.n_classes];
                for &i in indices {
                    counts[self.y[i as usize] as usize] += 1;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(cls, _)| cls as f64)
                    .unwrap_or(0.0)
            }
            Criterion::Mse => {
                indices.iter().map(|&i| self.y[i as usize]).sum::<f64>() / indices.len() as f64
            }
        }
    }

    fn find_best_split(&mut self, indices: &[u32], rng: &mut impl Rng) -> Option<BestSplit> {
        let d = self.x.cols();
        let k = self.config.max_features.resolve(d);
        // Random feature subset without replacement (partial shuffle).
        let mut feats = std::mem::take(&mut self.feat_buf);
        let (sampled, _) = feats.partial_shuffle(rng, k);
        let mut best: Option<BestSplit> = None;
        let mut pairs = std::mem::take(&mut self.pair_buf);
        for &f in sampled.iter() {
            if let Some(cand) = self.scan_feature(indices, f, &mut pairs) {
                if best.as_ref().is_none_or(|b| cand.gain > b.gain) {
                    best = Some(cand);
                }
            }
        }
        self.pair_buf = pairs;
        self.feat_buf = feats;
        best
    }

    /// Scans one feature: sorts (value, target) pairs and evaluates every
    /// boundary between distinct values.
    fn scan_feature(
        &self,
        indices: &[u32],
        feature: usize,
        pairs: &mut Vec<(f64, f64)>,
    ) -> Option<BestSplit> {
        let n = indices.len();
        pairs.clear();
        pairs.extend(
            indices
                .iter()
                .map(|&i| (self.x.get(i as usize, feature), self.y[i as usize])),
        );
        pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if pairs[0].0 == pairs[n - 1].0 {
            return None; // constant feature
        }
        let min_leaf = self.config.min_samples_leaf;

        match self.config.criterion {
            Criterion::Gini => {
                let mut left = vec![0usize; self.n_classes];
                let mut right = vec![0usize; self.n_classes];
                for &(_, y) in pairs.iter() {
                    right[y as usize] += 1;
                }
                let parent_gini = gini_of(&right, n);
                let mut best_gain = 0.0;
                let mut best_threshold = None;
                let mut sum_sq_left = 0.0f64;
                let mut sum_sq_right: f64 = right.iter().map(|&c| (c * c) as f64).sum();
                for split in 1..n {
                    let y = pairs[split - 1].1 as usize;
                    // Incremental update of Σc² on both sides.
                    sum_sq_left += (2 * left[y] + 1) as f64;
                    sum_sq_right -= (2 * right[y] - 1) as f64;
                    left[y] += 1;
                    right[y] -= 1;
                    if pairs[split].0 == pairs[split - 1].0 {
                        continue; // not a value boundary
                    }
                    if split < min_leaf || n - split < min_leaf {
                        continue;
                    }
                    let nl = split as f64;
                    let nr = (n - split) as f64;
                    let gini_l = 1.0 - sum_sq_left / (nl * nl);
                    let gini_r = 1.0 - sum_sq_right / (nr * nr);
                    let weighted = (nl * gini_l + nr * gini_r) / n as f64;
                    let gain = parent_gini - weighted;
                    if gain > best_gain {
                        best_gain = gain;
                        best_threshold = Some(midpoint(pairs[split - 1].0, pairs[split].0));
                    }
                }
                best_threshold.map(|threshold| BestSplit {
                    feature,
                    threshold,
                    gain: best_gain,
                })
            }
            Criterion::Mse => {
                let total_sum: f64 = pairs.iter().map(|&(_, y)| y).sum();
                let total_sq: f64 = pairs.iter().map(|&(_, y)| y * y).sum();
                let parent_var = total_sq / n as f64 - (total_sum / n as f64).powi(2);
                let mut best_gain = 0.0;
                let mut best_threshold = None;
                let mut sum_l = 0.0;
                let mut sq_l = 0.0;
                for split in 1..n {
                    let y = pairs[split - 1].1;
                    sum_l += y;
                    sq_l += y * y;
                    if pairs[split].0 == pairs[split - 1].0 {
                        continue;
                    }
                    if split < min_leaf || n - split < min_leaf {
                        continue;
                    }
                    let nl = split as f64;
                    let nr = (n - split) as f64;
                    let sum_r = total_sum - sum_l;
                    let sq_r = total_sq - sq_l;
                    let var_l = (sq_l / nl - (sum_l / nl).powi(2)).max(0.0);
                    let var_r = (sq_r / nr - (sum_r / nr).powi(2)).max(0.0);
                    let weighted = (nl * var_l + nr * var_r) / n as f64;
                    let gain = parent_var - weighted;
                    if gain > best_gain {
                        best_gain = gain;
                        best_threshold = Some(midpoint(pairs[split - 1].0, pairs[split].0));
                    }
                }
                best_threshold.map(|threshold| BestSplit {
                    feature,
                    threshold,
                    gain: best_gain,
                })
            }
        }
    }
}

fn gini_of(counts: &[usize], n: usize) -> f64 {
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

/// Midpoint threshold between two adjacent sorted values, guarded against
/// infinities from extreme inputs.
fn midpoint(a: f64, b: f64) -> f64 {
    let m = a + (b - a) / 2.0;
    if m.is_finite() {
        m
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Two well-separated blobs in 2-D.
    fn blobs() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = (i % 10) as f64 * 0.01;
            if i % 2 == 0 {
                rows.push([0.0 + j, 1.0 - j]);
                y.push(0.0);
            } else {
                rows.push([5.0 + j, -4.0 + j]);
                y.push(1.0);
            }
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn classifies_separable_data_perfectly() {
        let (x, y) = blobs();
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        assert_eq!(pred, y);
        // A single split suffices.
        assert!(tree.depth() <= 2, "depth={}", tree.depth());
    }

    #[test]
    fn regression_fits_step_function() {
        let x = Matrix::from_fn(50, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..50).map(|r| if r < 25 { 1.0 } else { 9.0 }).collect();
        let tree = DecisionTree::fit(&x, &y, 0, &TreeConfig::regression(), &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn max_depth_limits_growth() {
        let x = Matrix::from_fn(64, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..64).map(|r| (r % 2) as f64).collect();
        let cfg = TreeConfig {
            max_depth: Some(3),
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_fn(20, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..20).map(|r| if r < 1 { 1.0 } else { 0.0 }).collect();
        let cfg = TreeConfig {
            min_samples_leaf: 5,
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        // The only useful split (x <= 0.5) violates min_samples_leaf, so the
        // tree may instead split at >= 5 samples per side or stay a leaf; in
        // all cases every leaf must hold >= 5 training samples, which we can
        // check indirectly: no split threshold below 4.5 or above 14.5.
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        for idx in 0..tree.node_count() {
            if let Node::Split { threshold, .. } = &tree.nodes[idx] {
                assert!(*threshold >= 4.0 && *threshold <= 15.0);
            }
        }
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::filled(10, 3, 1.0);
        let y: Vec<f64> = (0..10).map(|r| (r % 2) as f64).collect();
        let cfg = TreeConfig {
            max_features: MaxFeatures::All,
            ..TreeConfig::classification()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let x = Matrix::zeros(4, 2);
        let cfg = TreeConfig::classification();
        assert!(DecisionTree::fit(&x, &[0.0; 3], 2, &cfg, &mut rng()).is_err());
        assert!(DecisionTree::fit(&Matrix::zeros(0, 2), &[], 2, &cfg, &mut rng()).is_err());
        // label out of range
        assert!(DecisionTree::fit(&x, &[0.0, 1.0, 2.0, 0.0], 2, &cfg, &mut rng()).is_err());
        // fractional class label
        assert!(DecisionTree::fit(&x, &[0.5; 4], 2, &cfg, &mut rng()).is_err());
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let (x, y) = blobs();
        let tree = DecisionTree::fit(&x, &y, 2, &TreeConfig::classification(), &mut rng()).unwrap();
        assert!(tree.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn sqrt_feature_sampling_still_learns() {
        let (x, y) = blobs();
        let tree = DecisionTree::fit(&x, &y, 2, &TreeConfig::classification(), &mut rng()).unwrap();
        let pred = tree.predict(&x).unwrap();
        let correct = pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        let cfg = TreeConfig::classification();
        let t1 = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        let t2 = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng()).unwrap();
        assert_eq!(t1.predict(&x).unwrap(), t2.predict(&x).unwrap());
        assert_eq!(t1.node_count(), t2.node_count());
    }
}
