//! Multi-layer perceptron with ReLU activations and Adam optimization.
//!
//! Mirrors the paper's secondary model (Sec. IV-A1): two hidden layers of
//! 100 neurons with rectified linear units. The classifier uses a softmax
//! head with cross-entropy loss; the regressor a linear head with MSE.
//! Features (and regression targets) are standardized internally, as one
//! would do before scikit-learn's `MLPClassifier`.

use crate::error::{MlError, Result};
use cwsmooth_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MLP hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer sizes (paper: `[100, 100]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size (clamped to the sample count).
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Minimum loss improvement counted as progress.
    pub tol: f64,
    /// Epochs without progress before early stopping.
    pub patience: usize,
    /// Seed for initialization and batch shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![100, 100],
            learning_rate: 1e-3,
            batch_size: 32,
            max_epochs: 200,
            tol: 1e-5,
            patience: 10,
            seed: 0,
        }
    }
}

/// Per-feature standardizer (zero mean, unit variance).
#[derive(Debug, Clone)]
struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    fn fit(x: &Matrix) -> Self {
        let d = x.cols();
        let n = x.rows() as f64;
        let mut mean = vec![0.0; d];
        for r in 0..x.rows() {
            for (j, &v) in x.row(r).iter().enumerate() {
                mean[j] += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut std = vec![0.0; d];
        for r in 0..x.rows() {
            for (j, &v) in x.row(r).iter().enumerate() {
                std[j] += (v - mean[j]) * (v - mean[j]);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered at zero
            }
        }
        Self { mean, std }
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) / self.std[j];
            }
        }
        out
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // in x out, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut impl Rng) -> Self {
        // Glorot-uniform initialization.
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    /// `out[b] = in[b] * W + bias` for a batch laid out row-major.
    fn forward(&self, input: &[f64], batch: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(batch * self.n_out, 0.0);
        for s in 0..batch {
            let xin = &input[s * self.n_in..(s + 1) * self.n_in];
            let xout = &mut out[s * self.n_out..(s + 1) * self.n_out];
            xout.copy_from_slice(&self.b);
            for (i, &xi) in xin.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let wrow = &self.w[i * self.n_out..(i + 1) * self.n_out];
                for (o, &w) in wrow.iter().enumerate() {
                    xout[o] += xi * w;
                }
            }
        }
    }

    /// Accumulates gradients and back-propagates `delta` to `delta_prev`.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        input: &[f64],
        delta: &[f64],
        batch: usize,
        gw: &mut [f64],
        gb: &mut [f64],
        delta_prev: Option<&mut Vec<f64>>,
    ) {
        for s in 0..batch {
            let xin = &input[s * self.n_in..(s + 1) * self.n_in];
            let d = &delta[s * self.n_out..(s + 1) * self.n_out];
            for (o, &dv) in d.iter().enumerate() {
                gb[o] += dv;
            }
            for (i, &xi) in xin.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let grow = &mut gw[i * self.n_out..(i + 1) * self.n_out];
                for (o, &dv) in d.iter().enumerate() {
                    grow[o] += xi * dv;
                }
            }
        }
        if let Some(dp) = delta_prev {
            dp.clear();
            dp.resize(batch * self.n_in, 0.0);
            for s in 0..batch {
                let d = &delta[s * self.n_out..(s + 1) * self.n_out];
                let dprev = &mut dp[s * self.n_in..(s + 1) * self.n_in];
                for (i, dpi) in dprev.iter_mut().enumerate() {
                    let wrow = &self.w[i * self.n_out..(i + 1) * self.n_out];
                    let mut acc = 0.0;
                    for (o, &dv) in d.iter().enumerate() {
                        acc += wrow[o] * dv;
                    }
                    *dpi = acc;
                }
            }
        }
    }

    fn adam_step(&mut self, gw: &[f64], gb: &[f64], lr: f64, t: i32) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        for (i, &g) in gw.iter().enumerate() {
            self.mw[i] = B1 * self.mw[i] + (1.0 - B1) * g;
            self.vw[i] = B2 * self.vw[i] + (1.0 - B2) * g * g;
            self.w[i] -= lr * (self.mw[i] / bc1) / ((self.vw[i] / bc2).sqrt() + EPS);
        }
        for (o, &g) in gb.iter().enumerate() {
            self.mb[o] = B1 * self.mb[o] + (1.0 - B1) * g;
            self.vb[o] = B2 * self.vb[o] + (1.0 - B2) * g * g;
            self.b[o] -= lr * (self.mb[o] / bc1) / ((self.vb[o] / bc2).sqrt() + EPS);
        }
    }
}

/// Output head / loss kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Head {
    Softmax,
    Linear,
}

/// Shared network implementation.
#[derive(Debug, Clone)]
struct Network {
    layers: Vec<Layer>,
    head: Head,
    scaler: Standardizer,
}

impl Network {
    /// Full-batch forward pass; returns the output activations.
    fn forward_all(&self, x: &Matrix) -> Vec<f64> {
        let batch = x.rows();
        let mut cur: Vec<f64> = x.as_slice().to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, batch, &mut next);
            if li < last {
                next.iter_mut().for_each(|v| {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                });
            }
            std::mem::swap(&mut cur, &mut next);
        }
        if self.head == Head::Softmax {
            let k = self.layers[last].n_out;
            for s in 0..batch {
                softmax_inplace(&mut cur[s * k..(s + 1) * k]);
            }
        }
        cur
    }
}

fn softmax_inplace(z: &mut [f64]) {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// Trains a network; `targets` is row-major `n x k` (one-hot or scalar).
fn train(x: &Matrix, targets: &[f64], k: usize, head: Head, config: &MlpConfig) -> Result<Network> {
    let n = x.rows();
    let d = x.cols();
    if n == 0 || d == 0 {
        return Err(MlError::Shape("empty training set".into()));
    }
    if config.hidden.is_empty() || config.hidden.contains(&0) {
        return Err(MlError::Config("hidden layers must be non-empty".into()));
    }
    if config.batch_size == 0 || config.max_epochs == 0 {
        return Err(MlError::Config(
            "batch_size and max_epochs must be >= 1".into(),
        ));
    }

    let scaler = Standardizer::fit(x);
    let xs = scaler.apply(x);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dims = vec![d];
    dims.extend_from_slice(&config.hidden);
    dims.push(k);
    let layers: Vec<Layer> = dims
        .windows(2)
        .map(|w| Layer::new(w[0], w[1], &mut rng))
        .collect();
    let mut net = Network {
        layers,
        head,
        scaler,
    };

    let batch = config.batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut best_loss = f64::INFINITY;
    let mut stall = 0usize;
    let mut t_step = 0i32;

    // Pre-allocated batch buffers.
    let n_layers = net.layers.len();
    let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
    let mut grads_w: Vec<Vec<f64>> = net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
    let mut grads_b: Vec<Vec<f64>> = net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

    for _epoch in 0..config.max_epochs {
        // Fisher-Yates shuffle of the sample order.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        let mut processed = 0usize;
        for chunk in order.chunks(batch) {
            let b = chunk.len();
            // Gather the batch.
            acts[0].clear();
            let mut ybatch = Vec::with_capacity(b * k);
            for &s in chunk {
                acts[0].extend_from_slice(xs.row(s));
                ybatch.extend_from_slice(&targets[s * k..(s + 1) * k]);
            }
            // Forward.
            for li in 0..n_layers {
                let (head_acts, tail_acts) = acts.split_at_mut(li + 1);
                net.layers[li].forward(&head_acts[li], b, &mut tail_acts[0]);
                if li < n_layers - 1 {
                    tail_acts[0].iter_mut().for_each(|v| {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    });
                }
            }
            // Output delta and loss.
            let out = &mut acts[n_layers];
            let inv_b = 1.0 / b as f64;
            match head {
                Head::Softmax => {
                    for s in 0..b {
                        let z = &mut out[s * k..(s + 1) * k];
                        softmax_inplace(z);
                        for (j, zv) in z.iter().enumerate() {
                            let t = ybatch[s * k + j];
                            if t > 0.0 {
                                epoch_loss -= t * zv.max(1e-12).ln();
                            }
                        }
                    }
                    deltas[n_layers - 1].clear();
                    deltas[n_layers - 1]
                        .extend(out.iter().zip(&ybatch).map(|(&p, &t)| (p - t) * inv_b));
                }
                Head::Linear => {
                    for (o, t) in out.iter().zip(&ybatch) {
                        epoch_loss += 0.5 * (o - t) * (o - t);
                    }
                    deltas[n_layers - 1].clear();
                    deltas[n_layers - 1]
                        .extend(out.iter().zip(&ybatch).map(|(&p, &t)| (p - t) * inv_b));
                }
            }
            processed += b;

            // Backward.
            for li in (0..n_layers).rev() {
                grads_w[li].iter_mut().for_each(|g| *g = 0.0);
                grads_b[li].iter_mut().for_each(|g| *g = 0.0);
                let (d_head, d_tail) = deltas.split_at_mut(li);
                let delta_prev = if li > 0 {
                    Some(&mut d_head[li - 1])
                } else {
                    None
                };
                net.layers[li].backward(
                    &acts[li],
                    &d_tail[0],
                    b,
                    &mut grads_w[li],
                    &mut grads_b[li],
                    delta_prev,
                );
                // ReLU gate for the propagated delta.
                if li > 0 {
                    let act = &acts[li];
                    let dp = &mut d_head[li - 1];
                    for (dv, &a) in dp.iter_mut().zip(act.iter()) {
                        if a <= 0.0 {
                            *dv = 0.0;
                        }
                    }
                }
            }
            t_step += 1;
            for li in 0..n_layers {
                net.layers[li].adam_step(&grads_w[li], &grads_b[li], config.learning_rate, t_step);
            }
        }
        let avg_loss = epoch_loss / processed as f64;
        if avg_loss + config.tol < best_loss {
            best_loss = avg_loss;
            stall = 0;
        } else {
            stall += 1;
            if stall >= config.patience {
                break;
            }
        }
    }
    Ok(net)
}

/// MLP classifier (softmax head, cross-entropy loss).
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    config: MlpConfig,
    net: Option<Network>,
    n_classes: usize,
}

impl MlpClassifier {
    /// Creates an unfitted classifier with the paper's architecture.
    pub fn new(seed: u64) -> Self {
        Self::with_config(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
    }

    /// Creates an unfitted classifier from an explicit configuration.
    pub fn with_config(config: MlpConfig) -> Self {
        Self {
            config,
            net: None,
            n_classes: 0,
        }
    }

    /// Fits on features (rows = samples) and class ids.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!(
                "{} samples but {} labels",
                x.rows(),
                y.len()
            )));
        }
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k == 0 {
            return Err(MlError::Shape("no class labels".into()));
        }
        let mut onehot = vec![0.0; y.len() * k];
        for (s, &c) in y.iter().enumerate() {
            onehot[s * k + c] = 1.0;
        }
        self.net = Some(train(x, &onehot, k, Head::Softmax, &self.config)?);
        self.n_classes = k;
        Ok(())
    }

    /// Argmax class predictions.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        let xs = net.scaler.apply(x);
        let out = net.forward_all(&xs);
        let k = self.n_classes;
        Ok((0..x.rows())
            .map(|s| {
                let row = &out[s * k..(s + 1) * k];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap()
            })
            .collect())
    }

    /// Number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// MLP regressor (linear head, MSE loss, standardized targets).
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    config: MlpConfig,
    net: Option<Network>,
    y_mean: f64,
    y_std: f64,
}

impl MlpRegressor {
    /// Creates an unfitted regressor with the paper's architecture.
    pub fn new(seed: u64) -> Self {
        Self::with_config(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
    }

    /// Creates an unfitted regressor from an explicit configuration.
    pub fn with_config(config: MlpConfig) -> Self {
        Self {
            config,
            net: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Fits on features (rows = samples) and continuous targets.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!(
                "{} samples but {} targets",
                x.rows(),
                y.len()
            )));
        }
        if y.is_empty() {
            return Err(MlError::Shape("no targets".into()));
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        let std = var.sqrt().max(1e-12);
        let ys: Vec<f64> = y.iter().map(|v| (v - mean) / std).collect();
        self.net = Some(train(x, &ys, 1, Head::Linear, &self.config)?);
        self.y_mean = mean;
        self.y_std = std;
        Ok(())
    }

    /// Predicted targets (de-standardized).
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        let xs = net.scaler.apply(x);
        let out = net.forward_all(&xs);
        Ok(out.iter().map(|v| v * self.y_std + self.y_mean).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> MlpConfig {
        MlpConfig {
            hidden: vec![32, 32],
            max_epochs: 300,
            batch_size: 16,
            seed,
            ..MlpConfig::default()
        }
    }

    fn two_moons(n: usize) -> (Matrix, Vec<usize>) {
        // Two offset half-circles: non-linear but learnable.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f64 / n as f64) * std::f64::consts::PI;
            if i % 2 == 0 {
                rows.push([t.cos(), t.sin()]);
                y.push(0);
            } else {
                rows.push([1.0 - t.cos(), 0.5 - t.sin()]);
                y.push(1);
            }
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn classifier_learns_two_moons() {
        let (x, y) = two_moons(200);
        let mut mlp = MlpClassifier::with_config(quick_config(1));
        mlp.fit(&x, &y).unwrap();
        let pred = mlp.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn regressor_learns_quadratic() {
        let x = Matrix::from_fn(128, 1, |r, _| r as f64 / 64.0 - 1.0);
        let y: Vec<f64> = (0..128)
            .map(|r| {
                let v = r as f64 / 64.0 - 1.0;
                v * v
            })
            .collect();
        let mut mlp = MlpRegressor::with_config(quick_config(2));
        mlp.fit(&x, &y).unwrap();
        let pred = mlp.predict(&x).unwrap();
        let mse = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn multiclass_separable() {
        let x = Matrix::from_fn(150, 2, |r, c| {
            let cls = (r / 50) as f64;
            cls * 3.0 + (c as f64) + ((r % 50) as f64) * 0.002
        });
        let y: Vec<usize> = (0..150).map(|r| r / 50).collect();
        let mut mlp = MlpClassifier::with_config(quick_config(3));
        mlp.fit(&x, &y).unwrap();
        let pred = mlp.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(mlp.n_classes(), 3);
    }

    #[test]
    fn unfitted_refuses() {
        let mlp = MlpClassifier::new(0);
        assert!(mlp.predict(&Matrix::zeros(1, 2)).is_err());
        let reg = MlpRegressor::new(0);
        assert!(reg.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = two_moons(100);
        let mut a = MlpClassifier::with_config(quick_config(9));
        let mut b = MlpClassifier::with_config(quick_config(9));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn shape_and_config_validation() {
        let mut mlp = MlpClassifier::new(0);
        assert!(mlp.fit(&Matrix::zeros(3, 2), &[0, 1]).is_err());
        let mut bad = MlpClassifier::with_config(MlpConfig {
            hidden: vec![],
            ..MlpConfig::default()
        });
        assert!(bad.fit(&Matrix::zeros(4, 2), &[0, 1, 0, 1]).is_err());
        let mut bad2 = MlpClassifier::with_config(MlpConfig {
            batch_size: 0,
            ..MlpConfig::default()
        });
        assert!(bad2.fit(&Matrix::zeros(4, 2), &[0, 1, 0, 1]).is_err());
    }

    #[test]
    fn constant_features_do_not_nan() {
        let x = Matrix::filled(20, 3, 2.0);
        let y: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let mut mlp = MlpClassifier::with_config(quick_config(4));
        mlp.fit(&x, &y).unwrap();
        let pred = mlp.predict(&x).unwrap();
        assert_eq!(pred.len(), 20);
    }
}
