//! Bagged random forests (classifier and regressor).
//!
//! Matches the paper's model: 50 estimators, Gini impurity for splits
//! (Sec. IV-A1). Each tree is fitted on a bootstrap resample with
//! per-split feature subsampling; trees train in parallel with rayon.
//! Prediction is majority vote (classification) or the tree mean
//! (regression).

use crate::error::{MlError, Result};
use crate::tree::{Criterion, DecisionTree, MaxFeatures, TreeConfig};
use cwsmooth_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Shared forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees (paper: 50).
    pub n_estimators: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Bootstrap resampling (true = classic bagging).
    pub bootstrap: bool,
    /// Master seed; tree `i` uses `seed + i`.
    pub seed: u64,
}

impl ForestConfig {
    /// The paper's classifier setup: 50 trees, Gini, √d features per split.
    pub fn classification(seed: u64) -> Self {
        Self {
            n_estimators: 50,
            tree: TreeConfig::classification(),
            bootstrap: true,
            seed,
        }
    }

    /// The paper's regressor setup: 50 trees, variance reduction.
    pub fn regression(seed: u64) -> Self {
        Self {
            n_estimators: 50,
            tree: TreeConfig::regression(),
            bootstrap: true,
            seed,
        }
    }
}

fn bootstrap_indices(n: usize, rng: &mut impl Rng) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
}

fn resample(x: &Matrix, y: &[f64], idx: &[u32]) -> (Matrix, Vec<f64>) {
    let mut data = Vec::with_capacity(idx.len() * x.cols());
    let mut ry = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(x.row(i as usize));
        ry.push(y[i as usize]);
    }
    (
        Matrix::from_vec(idx.len(), x.cols(), data).expect("resample shape"),
        ry,
    )
}

fn fit_trees(
    x: &Matrix,
    y: &[f64],
    n_classes: usize,
    config: &ForestConfig,
) -> Result<Vec<DecisionTree>> {
    if config.n_estimators == 0 {
        return Err(MlError::Config("n_estimators must be >= 1".into()));
    }
    if x.rows() == 0 {
        return Err(MlError::Shape("empty training set".into()));
    }
    if x.rows() != y.len() {
        return Err(MlError::Shape(format!(
            "{} samples but {} targets",
            x.rows(),
            y.len()
        )));
    }
    (0..config.n_estimators)
        .into_par_iter()
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
            if config.bootstrap {
                let idx = bootstrap_indices(x.rows(), &mut rng);
                let (bx, by) = resample(x, y, &idx);
                DecisionTree::fit(&bx, &by, n_classes, &config.tree, &mut rng)
            } else {
                DecisionTree::fit(x, y, n_classes, &config.tree, &mut rng)
            }
        })
        .collect()
}

/// A random-forest classifier.
///
/// ```
/// use cwsmooth_linalg::Matrix;
/// use cwsmooth_ml::RandomForestClassifier;
///
/// // Two separable blobs.
/// let x = Matrix::from_fn(40, 2, |r, c| (r % 2) as f64 * 5.0 + (r + c) as f64 * 0.01);
/// let y: Vec<usize> = (0..40).map(|r| r % 2).collect();
/// let mut rf = RandomForestClassifier::new(42);
/// rf.fit(&x, &y).unwrap();
/// assert_eq!(rf.predict(&x).unwrap(), y);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Creates an unfitted forest with the paper's defaults.
    pub fn new(seed: u64) -> Self {
        Self::with_config(ForestConfig::classification(seed))
    }

    /// Creates an unfitted forest from an explicit configuration.
    pub fn with_config(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Fits on features (rows = samples) and class ids.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<()> {
        if self.config.tree.criterion != Criterion::Gini {
            return Err(MlError::Config("classifier requires Gini criterion".into()));
        }
        let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
        if n_classes == 0 {
            return Err(MlError::Shape("no class labels".into()));
        }
        let yf: Vec<f64> = y.iter().map(|&c| c as f64).collect();
        self.trees = fit_trees(x, &yf, n_classes, &self.config)?;
        self.n_classes = n_classes;
        Ok(())
    }

    /// Majority-vote predictions for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let votes: Vec<Vec<f64>> = self
            .trees
            .par_iter()
            .map(|t| t.predict(x))
            .collect::<Result<_>>()?;
        let mut out = Vec::with_capacity(x.rows());
        let mut counts = vec![0usize; self.n_classes];
        for r in 0..x.rows() {
            counts.iter_mut().for_each(|c| *c = 0);
            for tree_votes in &votes {
                counts[tree_votes[r] as usize] += 1;
            }
            out.push(
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(cls, _)| cls)
                    .unwrap(),
            );
        }
        Ok(out)
    }

    /// Number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Fitted trees (for inspection).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean impurity-based feature importances across trees (sums to ~1).
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        mean_importances(&self.trees)
    }
}

/// Averages per-tree importances; errors when the forest is unfitted.
fn mean_importances(trees: &[DecisionTree]) -> Result<Vec<f64>> {
    let first = trees.first().ok_or(MlError::NotFitted)?;
    let d = first.feature_importances().len();
    let mut out = vec![0.0; d];
    for t in trees {
        for (o, &v) in out.iter_mut().zip(t.feature_importances()) {
            *o += v;
        }
    }
    let k = trees.len() as f64;
    out.iter_mut().for_each(|v| *v /= k);
    Ok(out)
}

/// A random-forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForestRegressor {
    /// Creates an unfitted forest with the paper's defaults.
    pub fn new(seed: u64) -> Self {
        Self::with_config(ForestConfig::regression(seed))
    }

    /// Creates an unfitted forest from an explicit configuration.
    pub fn with_config(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
        }
    }

    /// Fits on features (rows = samples) and continuous targets.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if self.config.tree.criterion != Criterion::Mse {
            return Err(MlError::Config("regressor requires MSE criterion".into()));
        }
        self.trees = fit_trees(x, y, 0, &self.config)?;
        Ok(())
    }

    /// Tree-mean predictions for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let preds: Vec<Vec<f64>> = self
            .trees
            .par_iter()
            .map(|t| t.predict(x))
            .collect::<Result<_>>()?;
        let k = self.trees.len() as f64;
        Ok((0..x.rows())
            .map(|r| preds.iter().map(|p| p[r]).sum::<f64>() / k)
            .collect())
    }

    /// Fitted trees (for inspection).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean impurity-based feature importances across trees (sums to ~1).
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        mean_importances(&self.trees)
    }
}

/// Convenience: a smaller/faster forest for tests and examples.
pub fn small_forest_config(seed: u64, classification: bool) -> ForestConfig {
    let mut cfg = if classification {
        ForestConfig::classification(seed)
    } else {
        ForestConfig::regression(seed)
    };
    cfg.n_estimators = 15;
    cfg.tree.max_depth = Some(12);
    cfg.tree.max_features = if classification {
        MaxFeatures::Sqrt
    } else {
        MaxFeatures::All
    };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize) -> (Matrix, Vec<usize>) {
        // XOR with noise: not linearly separable, easy for forests.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jitter = ((i * 2654435761) % 100) as f64 / 1000.0;
            rows.push([a + jitter, b - jitter]);
            y.push((a as usize) ^ (b as usize));
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_data(200);
        let mut rf = RandomForestClassifier::with_config(small_forest_config(1, true));
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(rf.n_classes(), 2);
    }

    #[test]
    fn regressor_learns_linear_trend() {
        let x = Matrix::from_fn(100, 1, |r, _| r as f64 / 10.0);
        let y: Vec<f64> = (0..100).map(|r| 3.0 * (r as f64 / 10.0) + 1.0).collect();
        let mut rf = RandomForestRegressor::with_config(small_forest_config(2, false));
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn unfitted_models_refuse_to_predict() {
        let rf = RandomForestClassifier::new(0);
        assert!(rf.predict(&Matrix::zeros(1, 2)).is_err());
        let rr = RandomForestRegressor::new(0);
        assert!(rr.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = xor_data(100);
        let mut a = RandomForestClassifier::with_config(small_forest_config(7, true));
        let mut b = RandomForestClassifier::with_config(small_forest_config(7, true));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn different_seeds_build_different_forests() {
        let (x, y) = xor_data(100);
        let mut a = RandomForestClassifier::with_config(small_forest_config(1, true));
        let mut b = RandomForestClassifier::with_config(small_forest_config(2, true));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let na: Vec<usize> = a.trees().iter().map(|t| t.node_count()).collect();
        let nb: Vec<usize> = b.trees().iter().map(|t| t.node_count()).collect();
        assert_ne!(na, nb);
    }

    #[test]
    fn shape_errors_propagate() {
        let mut rf = RandomForestClassifier::new(0);
        assert!(rf.fit(&Matrix::zeros(3, 2), &[0, 1]).is_err());
        assert!(rf.fit(&Matrix::zeros(0, 2), &[]).is_err());
        let mut rr = RandomForestRegressor::new(0);
        assert!(rr.fit(&Matrix::zeros(3, 2), &[0.0, 1.0]).is_err());
    }

    #[test]
    fn config_criterion_mismatch_rejected() {
        let mut bad = RandomForestClassifier::with_config(ForestConfig::regression(0));
        assert!(bad.fit(&Matrix::zeros(4, 2), &[0, 1, 0, 1]).is_err());
        let mut bad_r = RandomForestRegressor::with_config(ForestConfig::classification(0));
        assert!(bad_r.fit(&Matrix::zeros(4, 2), &[0.0; 4]).is_err());
    }

    #[test]
    fn feature_importances_find_the_signal() {
        // Feature 0 carries the class; features 1-2 are noise.
        let x = Matrix::from_fn(120, 3, |r, c| match c {
            0 => (r % 2) as f64 * 5.0 + ((r * 13) % 7) as f64 * 0.01,
            _ => ((r * 2654435761 + c * 97) % 100) as f64 / 100.0,
        });
        let y: Vec<usize> = (0..120).map(|r| r % 2).collect();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(4, true));
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importances().unwrap();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[0] > imp[1] + 0.3 && imp[0] > imp[2] + 0.3,
            "importances {imp:?}"
        );
        // unfitted forest refuses
        let empty = RandomForestClassifier::new(0);
        assert!(empty.feature_importances().is_err());
    }

    #[test]
    fn multiclass_vote() {
        // Three separable clusters on a line.
        let x = Matrix::from_fn(90, 1, |r, _| {
            (r / 30) as f64 * 10.0 + (r % 30) as f64 * 0.01
        });
        let y: Vec<usize> = (0..90).map(|r| r / 30).collect();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(3, true));
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        assert_eq!(pred, y);
        assert_eq!(rf.n_classes(), 3);
    }
}
