//! Bagged random forests (classifier and regressor).
//!
//! Matches the paper's model: 50 estimators, Gini impurity for splits
//! (Sec. IV-A1). Bootstrap resampling is expressed as per-sample `u32`
//! *weights* (the number of times each sample was drawn) threaded through
//! the tree builder — no per-tree copy of the training matrix is ever
//! materialized. The per-feature split index (`SplitIndex`: argsorted
//! sample order for the exact engine, ≤256-bin quantization for the
//! histogram engine) is built once and shared by every tree. Trees train
//! in parallel with rayon; prediction parallelizes over *rows*, with each
//! row walking all trees (majority vote for classification, tree mean for
//! regression).

use crate::error::{MlError, Result};
use crate::tree::{Criterion, DecisionTree, MaxFeatures, SplitAlgo, TreeArena, TreeConfig};
use crate::tree::{SampleWeights, SplitIndex};
use cwsmooth_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Shared forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees (paper: 50).
    pub n_estimators: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Bootstrap resampling (true = classic bagging).
    pub bootstrap: bool,
    /// Master seed; tree `i` uses `seed + i`.
    pub seed: u64,
}

impl ForestConfig {
    /// The paper's classifier setup: 50 trees, Gini, √d features per split.
    pub fn classification(seed: u64) -> Self {
        Self {
            n_estimators: 50,
            tree: TreeConfig::classification(),
            bootstrap: true,
            seed,
        }
    }

    /// The paper's regressor setup: 50 trees, variance reduction.
    pub fn regression(seed: u64) -> Self {
        Self {
            n_estimators: 50,
            tree: TreeConfig::regression(),
            bootstrap: true,
            seed,
        }
    }

    /// Switches the split engine (builder-style convenience).
    pub fn with_split_algo(mut self, algo: SplitAlgo) -> Self {
        self.tree.split_algo = algo;
        self
    }
}

/// Draws `n` bootstrap samples as per-sample multiplicities.
fn bootstrap_weights(n: usize, rng: &mut impl Rng) -> Vec<u32> {
    let mut weights = vec![0u32; n];
    for _ in 0..n {
        weights[rng.gen_range(0..n)] += 1;
    }
    weights
}

fn fit_trees(
    x: &Matrix,
    y: &[f64],
    n_classes: usize,
    config: &ForestConfig,
) -> Result<Vec<DecisionTree>> {
    if config.n_estimators == 0 {
        return Err(MlError::Config("n_estimators must be >= 1".into()));
    }
    if x.rows() == 0 {
        return Err(MlError::Shape("empty training set".into()));
    }
    if x.rows() != y.len() {
        return Err(MlError::Shape(format!(
            "{} samples but {} targets",
            x.rows(),
            y.len()
        )));
    }
    if config.tree.min_samples_split < 2 || config.tree.min_samples_leaf < 1 {
        return Err(MlError::Config(
            "min_samples_split >= 2 and min_samples_leaf >= 1 required".into(),
        ));
    }
    if x.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(MlError::NonFinite(
            "feature matrix contains NaN or infinite values".into(),
        ));
    }
    // Argsort / quantize every feature once, shared across all trees.
    let index = SplitIndex::build(x, config.tree.split_algo);
    (0..config.n_estimators)
        .into_par_iter()
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
            let mut arena = TreeArena::new();
            if config.bootstrap {
                let weights = bootstrap_weights(x.rows(), &mut rng);
                DecisionTree::fit_inner(
                    &mut arena,
                    &index,
                    x,
                    y,
                    SampleWeights::Counts(&weights),
                    n_classes,
                    &config.tree,
                    &mut rng,
                )
            } else {
                DecisionTree::fit_inner(
                    &mut arena,
                    &index,
                    x,
                    y,
                    SampleWeights::Unit,
                    n_classes,
                    &config.tree,
                    &mut rng,
                )
            }
        })
        .collect()
}

/// Rows per parallel prediction chunk.
const PREDICT_CHUNK: usize = 256;

fn row_chunks(rows: usize) -> Vec<(usize, usize)> {
    (0..rows.div_ceil(PREDICT_CHUNK))
        .map(|c| (c * PREDICT_CHUNK, ((c + 1) * PREDICT_CHUNK).min(rows)))
        .collect()
}

/// A random-forest classifier.
///
/// ```
/// use cwsmooth_linalg::Matrix;
/// use cwsmooth_ml::RandomForestClassifier;
///
/// // Two separable blobs.
/// let x = Matrix::from_fn(40, 2, |r, c| (r % 2) as f64 * 5.0 + (r + c) as f64 * 0.01);
/// let y: Vec<usize> = (0..40).map(|r| r % 2).collect();
/// let mut rf = RandomForestClassifier::new(42);
/// rf.fit(&x, &y).unwrap();
/// assert_eq!(rf.predict(&x).unwrap(), y);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Creates an unfitted forest with the paper's defaults.
    pub fn new(seed: u64) -> Self {
        Self::with_config(ForestConfig::classification(seed))
    }

    /// Creates an unfitted forest from an explicit configuration.
    pub fn with_config(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Fits on features (rows = samples) and class ids.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<()> {
        if self.config.tree.criterion != Criterion::Gini {
            return Err(MlError::Config("classifier requires Gini criterion".into()));
        }
        let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
        if n_classes == 0 {
            return Err(MlError::Shape("no class labels".into()));
        }
        let yf: Vec<f64> = y.iter().map(|&c| c as f64).collect();
        self.trees = fit_trees(x, &yf, n_classes, &self.config)?;
        self.n_classes = n_classes;
        Ok(())
    }

    /// Fits from an iterator of `(features, class)` rows — the shape
    /// streaming producers (e.g. a persistent signature store replaying
    /// events off disk) hand out, saving callers the manual
    /// matrix-assembly boilerplate. All rows must share one width.
    ///
    /// ```
    /// use cwsmooth_ml::forest::RandomForestClassifier;
    ///
    /// let rows: Vec<(Vec<f64>, usize)> = (0..40)
    ///     .map(|i| {
    ///         let x = i as f64 / 39.0;
    ///         (vec![x, 1.0 - x], usize::from(x > 0.5))
    ///     })
    ///     .collect();
    /// let mut rf = RandomForestClassifier::new(7);
    /// rf.fit_labelled_rows(rows.iter().map(|(r, c)| (r.as_slice(), *c)))
    ///     .unwrap();
    /// assert_eq!(rf.n_classes(), 2);
    /// ```
    pub fn fit_labelled_rows<'a, I>(&mut self, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = (&'a [f64], usize)>,
    {
        let mut flat: Vec<f64> = Vec::new();
        let mut y: Vec<usize> = Vec::new();
        let mut width = 0usize;
        for (row, class) in rows {
            if y.is_empty() {
                width = row.len();
            } else if row.len() != width {
                return Err(MlError::Shape(format!(
                    "row {} has {} features, previous rows have {width}",
                    y.len(),
                    row.len()
                )));
            }
            flat.extend_from_slice(row);
            y.push(class);
        }
        if y.is_empty() {
            return Err(MlError::Shape("no rows to fit on".into()));
        }
        if width == 0 {
            return Err(MlError::Shape("rows carry zero features".into()));
        }
        let x =
            Matrix::from_vec(y.len(), width, flat).map_err(|e| MlError::Shape(e.to_string()))?;
        self.fit(&x, &y)
    }

    /// Majority-vote predictions for every row of `x`, computed in
    /// parallel over row chunks.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != tree_width(&self.trees[0]) {
            return Err(MlError::Shape(format!(
                "forest expects {} features, got {}",
                tree_width(&self.trees[0]),
                x.cols()
            )));
        }
        let nc = self.n_classes;
        let parts: Vec<Vec<usize>> = row_chunks(x.rows())
            .into_par_iter()
            .map(|(a, b)| {
                // Trees outer, rows inner: one tree's nodes stay cache-hot
                // across the whole chunk while chunks run in parallel.
                let mut counts = vec![0u32; (b - a) * nc];
                for tree in &self.trees {
                    for r in a..b {
                        counts[(r - a) * nc + tree.predict_one(x.row(r)) as usize] += 1;
                    }
                }
                (a..b)
                    .map(|r| {
                        counts[(r - a) * nc..(r - a + 1) * nc]
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, &c)| c)
                            .map(|(cls, _)| cls)
                            .unwrap()
                    })
                    .collect()
            })
            .collect();
        Ok(parts.concat())
    }

    /// Majority-vote class for a single feature row — the per-event
    /// shape streaming consumers need, with no 1-row `Matrix`
    /// materialization. Identical to `predict` on a 1-row matrix
    /// (same vote counting, same tie resolution).
    pub fn predict_row(&self, features: &[f64]) -> Result<usize> {
        let mut votes = vec![0u32; self.n_classes.max(1)];
        self.predict_votes_row(features, &mut votes)
    }

    /// Per-class vote *fractions* for a single feature row (sums to 1).
    pub fn predict_proba_row(&self, features: &[f64]) -> Result<Vec<f64>> {
        let mut votes = vec![0u32; self.n_classes.max(1)];
        self.predict_votes_row(features, &mut votes)?;
        let inv = 1.0 / self.trees.len() as f64;
        Ok(votes.iter().map(|&v| v as f64 * inv).collect())
    }

    /// The allocation-free core of the row predictors: counts each
    /// tree's vote into `votes` (length [`RandomForestClassifier::n_classes`],
    /// overwritten) and returns the winning class. This is the hot-path
    /// entry point for per-event inference — callers keep one `votes`
    /// buffer alive across events and the forest never touches the heap.
    pub fn predict_votes_row(&self, features: &[f64], votes: &mut [u32]) -> Result<usize> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if features.len() != tree_width(&self.trees[0]) {
            return Err(MlError::Shape(format!(
                "forest expects {} features, got {}",
                tree_width(&self.trees[0]),
                features.len()
            )));
        }
        if votes.len() != self.n_classes {
            return Err(MlError::Shape(format!(
                "vote buffer holds {} classes, forest has {}",
                votes.len(),
                self.n_classes
            )));
        }
        votes.fill(0);
        for tree in &self.trees {
            votes[tree.predict_one(features) as usize] += 1;
        }
        // Same tie resolution as the batch path: last class with the
        // maximal vote count wins.
        Ok(votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(cls, _)| cls)
            .unwrap())
    }

    /// Number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Fitted trees (for inspection).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean impurity-based feature importances across trees (sums to ~1).
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        mean_importances(&self.trees)
    }
}

fn tree_width(tree: &DecisionTree) -> usize {
    tree.n_features()
}

/// Averages per-tree importances; errors when the forest is unfitted.
fn mean_importances(trees: &[DecisionTree]) -> Result<Vec<f64>> {
    let first = trees.first().ok_or(MlError::NotFitted)?;
    let d = first.feature_importances().len();
    let mut out = vec![0.0; d];
    for t in trees {
        for (o, &v) in out.iter_mut().zip(t.feature_importances()) {
            *o += v;
        }
    }
    let k = trees.len() as f64;
    out.iter_mut().for_each(|v| *v /= k);
    Ok(out)
}

/// A random-forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForestRegressor {
    /// Creates an unfitted forest with the paper's defaults.
    pub fn new(seed: u64) -> Self {
        Self::with_config(ForestConfig::regression(seed))
    }

    /// Creates an unfitted forest from an explicit configuration.
    pub fn with_config(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
        }
    }

    /// Fits on features (rows = samples) and continuous targets.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if self.config.tree.criterion != Criterion::Mse {
            return Err(MlError::Config("regressor requires MSE criterion".into()));
        }
        self.trees = fit_trees(x, y, 0, &self.config)?;
        Ok(())
    }

    /// Tree-mean predictions for every row of `x`, computed in parallel
    /// over row chunks.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != tree_width(&self.trees[0]) {
            return Err(MlError::Shape(format!(
                "forest expects {} features, got {}",
                tree_width(&self.trees[0]),
                x.cols()
            )));
        }
        let k = self.trees.len() as f64;
        let parts: Vec<Vec<f64>> = row_chunks(x.rows())
            .into_par_iter()
            .map(|(a, b)| {
                // Trees outer, rows inner (cache-hot tree nodes); the
                // per-row sums still accumulate in tree order, so the
                // result is bit-identical to a per-row tree walk.
                let mut sums = vec![0.0f64; b - a];
                for tree in &self.trees {
                    for (r, sum) in (a..b).zip(sums.iter_mut()) {
                        *sum += tree.predict_one(x.row(r));
                    }
                }
                sums.iter().map(|s| s / k).collect()
            })
            .collect();
        Ok(parts.concat())
    }

    /// Tree-mean prediction for a single feature row, accumulated in
    /// tree order — bit-identical to `predict` on a 1-row matrix, with
    /// no matrix materialization and no heap traffic.
    pub fn predict_row(&self, features: &[f64]) -> Result<f64> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        if features.len() != tree_width(&self.trees[0]) {
            return Err(MlError::Shape(format!(
                "forest expects {} features, got {}",
                tree_width(&self.trees[0]),
                features.len()
            )));
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_one(features)).sum();
        Ok(sum / self.trees.len() as f64)
    }

    /// Fitted trees (for inspection).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean impurity-based feature importances across trees (sums to ~1).
    pub fn feature_importances(&self) -> Result<Vec<f64>> {
        mean_importances(&self.trees)
    }
}

/// Convenience: a smaller/faster forest for tests and examples.
pub fn small_forest_config(seed: u64, classification: bool) -> ForestConfig {
    let mut cfg = if classification {
        ForestConfig::classification(seed)
    } else {
        ForestConfig::regression(seed)
    };
    cfg.n_estimators = 15;
    cfg.tree.max_depth = Some(12);
    cfg.tree.max_features = if classification {
        MaxFeatures::Sqrt
    } else {
        MaxFeatures::All
    };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize) -> (Matrix, Vec<usize>) {
        // XOR with noise: not linearly separable, easy for forests.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jitter = ((i * 2654435761) % 100) as f64 / 1000.0;
            rows.push([a + jitter, b - jitter]);
            y.push((a as usize) ^ (b as usize));
        }
        (Matrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_data(200);
        let mut rf = RandomForestClassifier::with_config(small_forest_config(1, true));
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(rf.n_classes(), 2);
    }

    #[test]
    fn fit_labelled_rows_matches_matrix_fit() {
        let (x, y) = xor_data(120);
        let mut via_rows = RandomForestClassifier::with_config(small_forest_config(3, true));
        via_rows
            .fit_labelled_rows((0..x.rows()).map(|r| (x.row(r), y[r])))
            .unwrap();
        let mut via_matrix = RandomForestClassifier::with_config(small_forest_config(3, true));
        via_matrix.fit(&x, &y).unwrap();
        // Identical data and seed: identical predictions.
        assert_eq!(
            via_rows.predict(&x).unwrap(),
            via_matrix.predict(&x).unwrap()
        );
    }

    #[test]
    fn fit_labelled_rows_rejects_bad_shapes() {
        let mut rf = RandomForestClassifier::new(1);
        assert!(rf.fit_labelled_rows(std::iter::empty()).is_err());
        let empty: [f64; 0] = [];
        assert!(rf.fit_labelled_rows([(empty.as_slice(), 0)]).is_err());
        let a = [1.0, 2.0];
        let b = [1.0];
        assert!(rf
            .fit_labelled_rows([(a.as_slice(), 0), (b.as_slice(), 1)])
            .is_err());
    }

    #[test]
    fn classifier_learns_xor_with_histogram_engine() {
        let (x, y) = xor_data(200);
        let cfg = small_forest_config(1, true).with_split_algo(SplitAlgo::histogram());
        let mut rf = RandomForestClassifier::with_config(cfg);
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn regressor_learns_linear_trend() {
        let x = Matrix::from_fn(100, 1, |r, _| r as f64 / 10.0);
        let y: Vec<f64> = (0..100).map(|r| 3.0 * (r as f64 / 10.0) + 1.0).collect();
        for algo in [SplitAlgo::Exact, SplitAlgo::histogram()] {
            let mut rf = RandomForestRegressor::with_config(
                small_forest_config(2, false).with_split_algo(algo),
            );
            rf.fit(&x, &y).unwrap();
            let pred = rf.predict(&x).unwrap();
            let mse: f64 = pred
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / y.len() as f64;
            assert!(mse < 0.5, "mse {mse} ({algo:?})");
        }
    }

    #[test]
    fn unfitted_models_refuse_to_predict() {
        let rf = RandomForestClassifier::new(0);
        assert!(rf.predict(&Matrix::zeros(1, 2)).is_err());
        assert!(rf.predict_row(&[0.0, 0.0]).is_err());
        assert!(rf.predict_proba_row(&[0.0, 0.0]).is_err());
        let rr = RandomForestRegressor::new(0);
        assert!(rr.predict(&Matrix::zeros(1, 2)).is_err());
        assert!(rr.predict_row(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn classifier_row_predictors_match_batch_predict() {
        let (x, y) = xor_data(160);
        let mut rf = RandomForestClassifier::with_config(small_forest_config(9, true));
        rf.fit(&x, &y).unwrap();
        let batch = rf.predict(&x).unwrap();
        let mut votes = vec![0u32; rf.n_classes()];
        // Index loop keeps `r` for batch[r] and the assert messages.
        #[allow(clippy::needless_range_loop)]
        for r in 0..x.rows() {
            assert_eq!(rf.predict_row(x.row(r)).unwrap(), batch[r]);
            assert_eq!(
                rf.predict_votes_row(x.row(r), &mut votes).unwrap(),
                batch[r]
            );
            let total: u32 = votes.iter().sum();
            assert_eq!(total as usize, rf.trees().len());
            let proba = rf.predict_proba_row(x.row(r)).unwrap();
            assert_eq!(proba.len(), rf.n_classes());
            assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Proba are exactly the vote fractions.
            for (p, &v) in proba.iter().zip(&votes) {
                assert_eq!(*p, v as f64 / rf.trees().len() as f64);
            }
        }
        // Shape guards.
        assert!(rf.predict_row(&[0.0]).is_err());
        let mut short = vec![0u32; rf.n_classes() + 1];
        assert!(rf.predict_votes_row(x.row(0), &mut short).is_err());
    }

    #[test]
    fn regressor_row_predictor_is_bit_identical_to_batch() {
        let x = Matrix::from_fn(80, 3, |r, c| ((r * 7 + c * 13) % 50) as f64 / 10.0);
        let y: Vec<f64> = (0..80).map(|r| x.row(r).iter().sum::<f64>()).collect();
        let mut rr = RandomForestRegressor::with_config(small_forest_config(4, false));
        rr.fit(&x, &y).unwrap();
        let batch = rr.predict(&x).unwrap();
        // Index loop keeps `r` for batch[r] and the assert messages.
        #[allow(clippy::needless_range_loop)]
        for r in 0..x.rows() {
            assert_eq!(rr.predict_row(x.row(r)).unwrap(), batch[r], "row {r}");
        }
        assert!(rr.predict_row(&[0.0]).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = xor_data(100);
        let mut a = RandomForestClassifier::with_config(small_forest_config(7, true));
        let mut b = RandomForestClassifier::with_config(small_forest_config(7, true));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn different_seeds_build_different_forests() {
        let (x, y) = xor_data(100);
        let mut a = RandomForestClassifier::with_config(small_forest_config(1, true));
        let mut b = RandomForestClassifier::with_config(small_forest_config(2, true));
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let na: Vec<usize> = a.trees().iter().map(|t| t.node_count()).collect();
        let nb: Vec<usize> = b.trees().iter().map(|t| t.node_count()).collect();
        assert_ne!(na, nb);
    }

    #[test]
    fn shape_errors_propagate() {
        let mut rf = RandomForestClassifier::new(0);
        assert!(rf.fit(&Matrix::zeros(3, 2), &[0, 1]).is_err());
        assert!(rf.fit(&Matrix::zeros(0, 2), &[]).is_err());
        let mut rr = RandomForestRegressor::new(0);
        assert!(rr.fit(&Matrix::zeros(3, 2), &[0.0, 1.0]).is_err());
    }

    #[test]
    fn non_finite_features_rejected() {
        let mut x = Matrix::from_fn(10, 2, |r, c| (r * 2 + c) as f64);
        x.set(4, 1, f64::NAN);
        let y: Vec<usize> = (0..10).map(|r| r % 2).collect();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(0, true));
        assert!(matches!(rf.fit(&x, &y).unwrap_err(), MlError::NonFinite(_)));
        let yr: Vec<f64> = (0..10).map(|r| r as f64).collect();
        let mut rr = RandomForestRegressor::with_config(small_forest_config(0, false));
        assert!(matches!(
            rr.fit(&x, &yr).unwrap_err(),
            MlError::NonFinite(_)
        ));
    }

    #[test]
    fn config_criterion_mismatch_rejected() {
        let mut bad = RandomForestClassifier::with_config(ForestConfig::regression(0));
        assert!(bad.fit(&Matrix::zeros(4, 2), &[0, 1, 0, 1]).is_err());
        let mut bad_r = RandomForestRegressor::with_config(ForestConfig::classification(0));
        assert!(bad_r.fit(&Matrix::zeros(4, 2), &[0.0; 4]).is_err());
    }

    #[test]
    fn feature_importances_find_the_signal() {
        // Feature 0 carries the class; features 1-2 are noise.
        let x = Matrix::from_fn(120, 3, |r, c| match c {
            0 => (r % 2) as f64 * 5.0 + ((r * 13) % 7) as f64 * 0.01,
            _ => ((r * 2654435761 + c * 97) % 100) as f64 / 100.0,
        });
        let y: Vec<usize> = (0..120).map(|r| r % 2).collect();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(4, true));
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importances().unwrap();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[0] > imp[1] + 0.3 && imp[0] > imp[2] + 0.3,
            "importances {imp:?}"
        );
        // unfitted forest refuses
        let empty = RandomForestClassifier::new(0);
        assert!(empty.feature_importances().is_err());
    }

    #[test]
    fn multiclass_vote() {
        // Three separable clusters on a line.
        let x = Matrix::from_fn(90, 1, |r, _| {
            (r / 30) as f64 * 10.0 + (r % 30) as f64 * 0.01
        });
        let y: Vec<usize> = (0..90).map(|r| r / 30).collect();
        let mut rf = RandomForestClassifier::with_config(small_forest_config(3, true));
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        assert_eq!(pred, y);
        assert_eq!(rf.n_classes(), 3);
    }

    #[test]
    fn histogram_and_exact_agree_on_separable_data() {
        let x = Matrix::from_fn(300, 4, |r, c| {
            (r % 3) as f64 * 3.0 + ((r * 31 + c * 7) % 100) as f64 / 100.0
        });
        let y: Vec<usize> = (0..300).map(|r| r % 3).collect();
        let mut exact = RandomForestClassifier::with_config(small_forest_config(5, true));
        let mut hist = RandomForestClassifier::with_config(
            small_forest_config(5, true).with_split_algo(SplitAlgo::histogram()),
        );
        exact.fit(&x, &y).unwrap();
        hist.fit(&x, &y).unwrap();
        let pe = exact.predict(&x).unwrap();
        let ph = hist.predict(&x).unwrap();
        let agree = pe.iter().zip(&ph).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / y.len() as f64 > 0.98,
            "agreement {agree}/300"
        );
    }
}
