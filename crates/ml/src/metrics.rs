//! Evaluation metrics: confusion matrices, precision/recall/F1, RMSE and
//! the paper's complemented NRMSE "ML score".
//!
//! Classification performance is reported as the F1-score (harmonic mean
//! of precision and recall); regression as `NRMSE_c = 1 − NRMSE`, where the
//! RMSE is normalized by the observed target range (Sec. IV-A1). Both are
//! higher-is-better and comparable on a common axis.

use crate::error::{MlError, Result};

/// A `k x k` confusion matrix: `m[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    k: usize,
}

impl ConfusionMatrix {
    /// Builds from parallel true/predicted label slices.
    pub fn from_pairs(y_true: &[usize], y_pred: &[usize]) -> Result<Self> {
        if y_true.len() != y_pred.len() {
            return Err(MlError::Shape(format!(
                "{} true labels vs {} predictions",
                y_true.len(),
                y_pred.len()
            )));
        }
        if y_true.is_empty() {
            return Err(MlError::Shape("empty evaluation set".into()));
        }
        let k = y_true.iter().chain(y_pred).copied().max().unwrap() + 1;
        let mut counts = vec![0usize; k * k];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            counts[t * k + p] += 1;
        }
        Ok(Self { counts, k })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.k + p]
    }

    /// Per-class support (true-label counts).
    pub fn support(&self, class: usize) -> usize {
        (0..self.k).map(|p| self.get(class, p)).sum()
    }

    /// Per-class precision; 0 when the class is never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.get(class, class) as f64;
        let predicted: usize = (0..self.k).map(|t| self.get(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f64
        }
    }

    /// Per-class recall; 0 when the class has no support.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.get(class, class) as f64;
        let support = self.support(class);
        if support == 0 {
            0.0
        } else {
            tp / support as f64
        }
    }

    /// Per-class F1 (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.k).map(|c| self.get(c, c)).sum();
        let total: usize = self.counts.iter().sum();
        correct as f64 / total as f64
    }

    /// Unweighted mean of per-class F1 scores.
    pub fn f1_macro(&self) -> f64 {
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }

    /// Support-weighted mean of per-class F1 scores (scikit-learn's
    /// `average="weighted"`; robust to class imbalance, used for the
    /// paper-facing numbers).
    pub fn f1_weighted(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        (0..self.k)
            .map(|c| self.f1(c) * self.support(c) as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Convenience: weighted F1 straight from label slices.
pub fn f1_score(y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    Ok(ConfusionMatrix::from_pairs(y_true, y_pred)?.f1_weighted())
}

/// Convenience: overall accuracy straight from label slices.
pub fn accuracy_score(y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    Ok(ConfusionMatrix::from_pairs(y_true, y_pred)?.accuracy())
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    if y_true.len() != y_pred.len() || y_true.is_empty() {
        return Err(MlError::Shape("rmse needs equal non-empty slices".into()));
    }
    let mse = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64;
    Ok(mse.sqrt())
}

/// NRMSE: RMSE normalized by the observed range of `y_true`.
///
/// A constant target (zero range) yields NRMSE 0 when predictions are
/// perfect and 1 otherwise.
pub fn nrmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    let e = rmse(y_true, y_pred)?;
    let lo = y_true.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = y_true.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = hi - lo;
    if range <= 0.0 {
        return Ok(if e == 0.0 { 0.0 } else { 1.0 });
    }
    Ok(e / range)
}

/// The paper's regression "ML score": `1 − NRMSE`, clamped at 0.
pub fn ml_score_regression(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    Ok((1.0 - nrmse(y_true, y_pred)?).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn confusion_counts() {
        let t = [0, 0, 1, 1, 2];
        let p = [0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_pairs(&t, &p).unwrap();
        assert_eq!(cm.n_classes(), 3);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 2);
        assert_eq!(cm.get(2, 0), 1);
        assert_eq!(cm.support(1), 2);
        assert!((cm.accuracy() - 0.6).abs() < EPS);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let y = [0, 1, 2, 1, 0];
        let cm = ConfusionMatrix::from_pairs(&y, &y).unwrap();
        assert!((cm.f1_macro() - 1.0).abs() < EPS);
        assert!((cm.f1_weighted() - 1.0).abs() < EPS);
        assert!((cm.accuracy() - 1.0).abs() < EPS);
    }

    #[test]
    fn hand_computed_binary_f1() {
        // tp=2 fp=1 fn=1 for class 1 -> p=2/3, r=2/3, f1=2/3
        let t = [1, 1, 1, 0, 0, 0];
        let p = [1, 1, 0, 1, 0, 0];
        let cm = ConfusionMatrix::from_pairs(&t, &p).unwrap();
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < EPS);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < EPS);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < EPS);
        // symmetric here, so both averages agree
        assert!((cm.f1_macro() - 2.0 / 3.0).abs() < EPS);
        assert!((cm.f1_weighted() - 2.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn never_predicted_class_gets_zero() {
        let t = [0, 1];
        let p = [0, 0];
        let cm = ConfusionMatrix::from_pairs(&t, &p).unwrap();
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1(1), 0.0);
    }

    #[test]
    fn weighted_differs_from_macro_under_imbalance() {
        // class 0: 8 samples all correct; class 1: 2 samples all wrong.
        let t = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let p = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let cm = ConfusionMatrix::from_pairs(&t, &p).unwrap();
        let f1_0 = cm.f1(0); // p=0.8, r=1.0 -> 8/9
        assert!((cm.f1_macro() - f1_0 / 2.0).abs() < EPS);
        assert!((cm.f1_weighted() - 0.8 * f1_0).abs() < EPS);
        assert!(cm.f1_weighted() > cm.f1_macro());
    }

    #[test]
    fn accuracy_score_matches_confusion_matrix() {
        let t = [0, 0, 1, 1, 2];
        let p = [0, 1, 1, 1, 0];
        assert!((accuracy_score(&t, &p).unwrap() - 0.6).abs() < EPS);
        assert!(accuracy_score(&[0], &[]).is_err());
    }

    #[test]
    fn rmse_and_nrmse() {
        let t = [0.0, 2.0, 4.0];
        let p = [1.0, 1.0, 5.0];
        // errors 1,1,1 -> rmse 1; range 4 -> nrmse 0.25; score 0.75
        assert!((rmse(&t, &p).unwrap() - 1.0).abs() < EPS);
        assert!((nrmse(&t, &p).unwrap() - 0.25).abs() < EPS);
        assert!((ml_score_regression(&t, &p).unwrap() - 0.75).abs() < EPS);
    }

    #[test]
    fn constant_target_edge_case() {
        let t = [3.0, 3.0];
        assert_eq!(nrmse(&t, &[3.0, 3.0]).unwrap(), 0.0);
        assert_eq!(nrmse(&t, &[4.0, 4.0]).unwrap(), 1.0);
    }

    #[test]
    fn score_clamps_at_zero() {
        let t = [0.0, 1.0];
        let p = [10.0, -10.0];
        assert_eq!(ml_score_regression(&t, &p).unwrap(), 0.0);
    }

    #[test]
    fn shape_errors() {
        assert!(ConfusionMatrix::from_pairs(&[0], &[]).is_err());
        assert!(ConfusionMatrix::from_pairs(&[], &[]).is_err());
        assert!(rmse(&[0.0], &[]).is_err());
    }
}
