//! Pins the exact split engine to the legacy (PR 2) splitter: the new
//! pre-sorted / key-sorted engines and weight-based bagging must reproduce
//! the node-resorting, matrix-materializing implementation **bit for bit**
//! on fixed seeds.
//!
//! The `legacy` module below is a faithful copy of the PR 2 tree builder
//! (per-node `(value, target)` sort through `partial_cmp`, per-tree
//! bootstrap matrix copies). Gini statistics are integer-exact, so
//! classification parity holds for arbitrary data, including ties and
//! bootstrap duplicates. MSE statistics are floating-point folds whose
//! value at a boundary depends on the summation order inside runs of tied
//! feature values, so regression parity is pinned on distinct-valued data
//! (tree level) and on near-equality at the forest level (weighted sums
//! `w·y` replace `w` sequential additions of `y`).

use cwsmooth_linalg::Matrix;
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use cwsmooth_ml::tree::{Criterion, DecisionTree, MaxFeatures, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The PR 2 splitter, verbatim (modulo visibility plumbing).
mod legacy {
    use cwsmooth_linalg::Matrix;
    use cwsmooth_ml::tree::{Criterion, MaxFeatures, TreeConfig};
    use rand::seq::SliceRandom;
    use rand::Rng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Leaf {
            value: f64,
        },
        Split {
            feature: usize,
            threshold: f64,
            left: u32,
            right: u32,
        },
    }

    pub struct LegacyTree {
        pub nodes: Vec<Node>,
        pub importances: Vec<f64>,
    }

    impl LegacyTree {
        pub fn predict_one(&self, features: &[f64]) -> f64 {
            let mut idx = 0usize;
            loop {
                match &self.nodes[idx] {
                    Node::Leaf { value } => return *value,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        idx = if features[*feature] <= *threshold {
                            *left as usize
                        } else {
                            *right as usize
                        };
                    }
                }
            }
        }

        pub fn predict(&self, x: &Matrix) -> Vec<f64> {
            (0..x.rows()).map(|r| self.predict_one(x.row(r))).collect()
        }
    }

    fn resolve(mf: MaxFeatures, d: usize) -> usize {
        match mf {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Exact(k) => k.clamp(1, d),
        }
        .max(1)
    }

    pub fn fit(
        x: &Matrix,
        y: &[f64],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> LegacyTree {
        let mut builder = Builder {
            x,
            y,
            n_classes,
            config: *config,
            nodes: Vec::new(),
            feat_buf: (0..x.cols()).collect(),
            pair_buf: Vec::new(),
            importances: vec![0.0; x.cols()],
            n_total: x.rows() as f64,
        };
        let mut indices: Vec<u32> = (0..x.rows() as u32).collect();
        builder.build(&mut indices, 0, rng);
        let mut importances = builder.importances;
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            importances.iter_mut().for_each(|v| *v /= total);
        }
        LegacyTree {
            nodes: builder.nodes,
            importances,
        }
    }

    struct Builder<'a> {
        x: &'a Matrix,
        y: &'a [f64],
        n_classes: usize,
        config: TreeConfig,
        nodes: Vec<Node>,
        feat_buf: Vec<usize>,
        pair_buf: Vec<(f64, f64)>,
        importances: Vec<f64>,
        n_total: f64,
    }

    struct BestSplit {
        feature: usize,
        threshold: f64,
        gain: f64,
    }

    impl<'a> Builder<'a> {
        fn build(&mut self, indices: &mut [u32], depth: usize, rng: &mut impl Rng) -> u32 {
            let node_id = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { value: 0.0 });

            let leaf_value = self.leaf_value(indices);
            let stop = indices.len() < self.config.min_samples_split
                || self.config.max_depth.is_some_and(|d| depth >= d)
                || self.is_pure(indices);
            if stop {
                self.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
                return node_id;
            }

            let best = self.find_best_split(indices, rng);
            let Some(best) = best else {
                self.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
                return node_id;
            };

            let mut lt = 0usize;
            for i in 0..indices.len() {
                if self.x.get(indices[i] as usize, best.feature) <= best.threshold {
                    indices.swap(i, lt);
                    lt += 1;
                }
            }
            if lt == 0 || lt == indices.len() {
                self.nodes[node_id as usize] = Node::Leaf { value: leaf_value };
                return node_id;
            }
            self.importances[best.feature] += (indices.len() as f64 / self.n_total) * best.gain;
            let (left_idx, right_idx) = indices.split_at_mut(lt);
            let left = self.build(left_idx, depth + 1, rng);
            let right = self.build(right_idx, depth + 1, rng);
            self.nodes[node_id as usize] = Node::Split {
                feature: best.feature,
                threshold: best.threshold,
                left,
                right,
            };
            node_id
        }

        fn is_pure(&self, indices: &[u32]) -> bool {
            let first = self.y[indices[0] as usize];
            indices.iter().all(|&i| self.y[i as usize] == first)
        }

        fn leaf_value(&self, indices: &[u32]) -> f64 {
            match self.config.criterion {
                Criterion::Gini => {
                    let mut counts = vec![0usize; self.n_classes];
                    for &i in indices {
                        counts[self.y[i as usize] as usize] += 1;
                    }
                    counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map(|(cls, _)| cls as f64)
                        .unwrap_or(0.0)
                }
                Criterion::Mse => {
                    indices.iter().map(|&i| self.y[i as usize]).sum::<f64>() / indices.len() as f64
                }
            }
        }

        fn find_best_split(&mut self, indices: &[u32], rng: &mut impl Rng) -> Option<BestSplit> {
            let d = self.x.cols();
            let k = resolve(self.config.max_features, d);
            let mut feats = std::mem::take(&mut self.feat_buf);
            let (sampled, _) = feats.partial_shuffle(rng, k);
            let mut best: Option<BestSplit> = None;
            let mut pairs = std::mem::take(&mut self.pair_buf);
            for &f in sampled.iter() {
                if let Some(cand) = self.scan_feature(indices, f, &mut pairs) {
                    if best.as_ref().is_none_or(|b| cand.gain > b.gain) {
                        best = Some(cand);
                    }
                }
            }
            self.pair_buf = pairs;
            self.feat_buf = feats;
            best
        }

        fn scan_feature(
            &self,
            indices: &[u32],
            feature: usize,
            pairs: &mut Vec<(f64, f64)>,
        ) -> Option<BestSplit> {
            let n = indices.len();
            pairs.clear();
            pairs.extend(
                indices
                    .iter()
                    .map(|&i| (self.x.get(i as usize, feature), self.y[i as usize])),
            );
            pairs.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            if pairs[0].0 == pairs[n - 1].0 {
                return None;
            }
            let min_leaf = self.config.min_samples_leaf;

            match self.config.criterion {
                Criterion::Gini => {
                    let mut left = vec![0usize; self.n_classes];
                    let mut right = vec![0usize; self.n_classes];
                    for &(_, y) in pairs.iter() {
                        right[y as usize] += 1;
                    }
                    let parent_gini = gini_of(&right, n);
                    let mut best_gain = 0.0;
                    let mut best_threshold = None;
                    let mut sum_sq_left = 0.0f64;
                    let mut sum_sq_right: f64 = right.iter().map(|&c| (c * c) as f64).sum();
                    for split in 1..n {
                        let y = pairs[split - 1].1 as usize;
                        sum_sq_left += (2 * left[y] + 1) as f64;
                        sum_sq_right -= (2 * right[y] - 1) as f64;
                        left[y] += 1;
                        right[y] -= 1;
                        if pairs[split].0 == pairs[split - 1].0 {
                            continue;
                        }
                        if split < min_leaf || n - split < min_leaf {
                            continue;
                        }
                        let nl = split as f64;
                        let nr = (n - split) as f64;
                        let gini_l = 1.0 - sum_sq_left / (nl * nl);
                        let gini_r = 1.0 - sum_sq_right / (nr * nr);
                        let weighted = (nl * gini_l + nr * gini_r) / n as f64;
                        let gain = parent_gini - weighted;
                        if gain > best_gain {
                            best_gain = gain;
                            best_threshold = Some(midpoint(pairs[split - 1].0, pairs[split].0));
                        }
                    }
                    best_threshold.map(|threshold| BestSplit {
                        feature,
                        threshold,
                        gain: best_gain,
                    })
                }
                Criterion::Mse => {
                    let total_sum: f64 = pairs.iter().map(|&(_, y)| y).sum();
                    let total_sq: f64 = pairs.iter().map(|&(_, y)| y * y).sum();
                    let parent_var = total_sq / n as f64 - (total_sum / n as f64).powi(2);
                    let mut best_gain = 0.0;
                    let mut best_threshold = None;
                    let mut sum_l = 0.0;
                    let mut sq_l = 0.0;
                    for split in 1..n {
                        let y = pairs[split - 1].1;
                        sum_l += y;
                        sq_l += y * y;
                        if pairs[split].0 == pairs[split - 1].0 {
                            continue;
                        }
                        if split < min_leaf || n - split < min_leaf {
                            continue;
                        }
                        let nl = split as f64;
                        let nr = (n - split) as f64;
                        let sum_r = total_sum - sum_l;
                        let sq_r = total_sq - sq_l;
                        let var_l = (sq_l / nl - (sum_l / nl).powi(2)).max(0.0);
                        let var_r = (sq_r / nr - (sum_r / nr).powi(2)).max(0.0);
                        let weighted = (nl * var_l + nr * var_r) / n as f64;
                        let gain = parent_var - weighted;
                        if gain > best_gain {
                            best_gain = gain;
                            best_threshold = Some(midpoint(pairs[split - 1].0, pairs[split].0));
                        }
                    }
                    best_threshold.map(|threshold| BestSplit {
                        feature,
                        threshold,
                        gain: best_gain,
                    })
                }
            }
        }
    }

    fn gini_of(counts: &[usize], n: usize) -> f64 {
        let n = n as f64;
        1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
    }

    fn midpoint(a: f64, b: f64) -> f64 {
        let m = a + (b - a) / 2.0;
        if m.is_finite() {
            m
        } else {
            a
        }
    }

    /// The PR 2 forest fit: bootstrap index draws + materialized resample.
    pub fn forest_fit(
        x: &Matrix,
        y: &[f64],
        n_classes: usize,
        n_estimators: usize,
        seed: u64,
        tree_cfg: &TreeConfig,
    ) -> Vec<LegacyTree> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        (0..n_estimators)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                let idx: Vec<u32> = (0..x.rows())
                    .map(|_| rng.gen_range(0..x.rows()) as u32)
                    .collect();
                let mut data = Vec::with_capacity(idx.len() * x.cols());
                let mut ry = Vec::with_capacity(idx.len());
                for &s in &idx {
                    data.extend_from_slice(x.row(s as usize));
                    ry.push(y[s as usize]);
                }
                let bx = Matrix::from_vec(idx.len(), x.cols(), data).unwrap();
                fit(&bx, &ry, n_classes, tree_cfg, &mut rng)
            })
            .collect()
    }
}

/// Multi-class data with heavy value ties (quantized features): stresses
/// the tie-handling equivalence of the Gini scan.
fn tied_classification_data(n: usize, d: usize, classes: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>()).collect();
    let x = Matrix::from_fn(n, d, |r, c| {
        // Only ~8 distinct values per feature.
        (r % classes) as f64 + (noise[r * d + c] * 8.0).floor() / 8.0
    });
    let y: Vec<f64> = (0..n).map(|r| (r % classes) as f64).collect();
    (x, y)
}

/// Continuous regression data with (generically) distinct feature values.
fn continuous_regression_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>()).collect();
    let x = Matrix::from_fn(n, d, |r, c| noise[r * d + c] * 10.0);
    let y: Vec<f64> = (0..n)
        .map(|r| {
            x.row(r)
                .iter()
                .enumerate()
                .map(|(c, v)| v * (c + 1) as f64)
                .sum()
        })
        .collect();
    (x, y)
}

#[test]
fn exact_tree_classification_matches_legacy_bitwise() {
    for seed in [1u64, 7, 42, 1234] {
        let (x, y) = tied_classification_data(240, 12, 5, seed);
        for max_features in [MaxFeatures::All, MaxFeatures::Sqrt, MaxFeatures::Exact(3)] {
            let cfg = TreeConfig {
                max_features,
                ..TreeConfig::classification()
            };
            let mut rng_new = StdRng::seed_from_u64(seed ^ 0x5eed);
            let mut rng_old = StdRng::seed_from_u64(seed ^ 0x5eed);
            let new = DecisionTree::fit(&x, &y, 5, &cfg, &mut rng_new).unwrap();
            let old = legacy::fit(&x, &y, 5, &cfg, &mut rng_old);
            assert_eq!(
                new.predict(&x).unwrap(),
                old.predict(&x),
                "predictions diverged (seed {seed}, {max_features:?})"
            );
            assert_eq!(new.node_count(), old.nodes.len());
            assert_eq!(new.feature_importances(), &old.importances[..]);
        }
    }
}

#[test]
fn exact_tree_regression_matches_legacy_bitwise() {
    for seed in [3u64, 11, 42] {
        let (x, y) = continuous_regression_data(200, 6, seed);
        for max_features in [MaxFeatures::All, MaxFeatures::Exact(2)] {
            let cfg = TreeConfig {
                max_features,
                criterion: Criterion::Mse,
                ..TreeConfig::regression()
            };
            let mut rng_new = StdRng::seed_from_u64(seed);
            let mut rng_old = StdRng::seed_from_u64(seed);
            let new = DecisionTree::fit(&x, &y, 0, &cfg, &mut rng_new).unwrap();
            let old = legacy::fit(&x, &y, 0, &cfg, &mut rng_old);
            let pn = new.predict(&x).unwrap();
            let po = old.predict(&x);
            assert_eq!(pn, po, "regression predictions diverged (seed {seed})");
            assert_eq!(new.node_count(), old.nodes.len());
        }
    }
}

#[test]
fn exact_forest_classification_matches_legacy_bitwise() {
    // Weight-based bagging vs. materialized bootstrap resamples: Gini
    // statistics are integer-exact, so the full forest pipeline (same RNG
    // draws, weighted counts ≡ duplicate expansion) must agree bit for bit.
    let (x, yf) = tied_classification_data(150, 8, 4, 99);
    let y: Vec<usize> = yf.iter().map(|&v| v as usize).collect();
    let mut cfg = ForestConfig::classification(77);
    cfg.n_estimators = 12;
    let mut rf = RandomForestClassifier::with_config(cfg);
    rf.fit(&x, &y).unwrap();

    let legacy_trees = legacy::forest_fit(&x, &yf, 4, 12, 77, &cfg.tree);
    // Majority vote, identical tie-breaking (max_by_key keeps the last max).
    let mut legacy_pred = Vec::with_capacity(x.rows());
    let mut counts = [0usize; 4];
    for r in 0..x.rows() {
        counts.iter_mut().for_each(|c| *c = 0);
        for t in &legacy_trees {
            counts[t.predict_one(x.row(r)) as usize] += 1;
        }
        legacy_pred.push(
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(cls, _)| cls)
                .unwrap(),
        );
    }
    assert_eq!(rf.predict(&x).unwrap(), legacy_pred);
    let node_counts: Vec<usize> = rf.trees().iter().map(|t| t.node_count()).collect();
    let legacy_nodes: Vec<usize> = legacy_trees.iter().map(|t| t.nodes.len()).collect();
    assert_eq!(node_counts, legacy_nodes);
}

#[test]
fn exact_forest_regression_matches_legacy_closely() {
    // Weighted sums `w·y` replace `w` sequential additions of `y`, so the
    // regression forest is only pinned up to last-ulp summation drift: the
    // tree *structure* must match exactly, predictions near-exactly.
    let (x, y) = continuous_regression_data(180, 5, 21);
    let mut cfg = ForestConfig::regression(13);
    cfg.n_estimators = 10;
    let mut rf = RandomForestRegressor::with_config(cfg);
    rf.fit(&x, &y).unwrap();

    let legacy_trees = legacy::forest_fit(&x, &y, 0, 10, 13, &cfg.tree);
    // Every split (feature AND threshold) must match bit for bit; only the
    // leaf-value summation order is allowed to drift at the last ulp.
    for (t, l) in rf.trees().iter().zip(&legacy_trees) {
        let legacy_summary: Vec<Option<(usize, f64)>> = l
            .nodes
            .iter()
            .map(|n| match n {
                legacy::Node::Leaf { .. } => None,
                legacy::Node::Split {
                    feature, threshold, ..
                } => Some((*feature, *threshold)),
            })
            .collect();
        assert_eq!(
            t.node_summaries(),
            legacy_summary,
            "tree structure diverged"
        );
    }

    let k = legacy_trees.len() as f64;
    let legacy_pred: Vec<f64> = (0..x.rows())
        .map(|r| {
            legacy_trees
                .iter()
                .map(|t| t.predict_one(x.row(r)))
                .sum::<f64>()
                / k
        })
        .collect();
    for (p, q) in rf.predict(&x).unwrap().iter().zip(&legacy_pred) {
        let denom = q.abs().max(1.0);
        assert!(
            ((p - q) / denom).abs() < 1e-12,
            "regression forest drifted: {p} vs {q}"
        );
    }
}
