//! Property-based tests for the ML substrate.

use cwsmooth_linalg::Matrix;
use cwsmooth_ml::cv::{kfold, shuffled_indices, stratified_kfold};
use cwsmooth_ml::forest::{small_forest_config, RandomForestClassifier, RandomForestRegressor};
use cwsmooth_ml::metrics::{self, ConfusionMatrix};
use proptest::prelude::*;

fn labels_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, 10..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shuffle_permutation_law(n in 1usize..200, seed in any::<u64>()) {
        let idx = shuffled_indices(n, seed);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_partition_laws(n in 10usize..100, k in 2usize..6, seed in any::<u64>()) {
        let folds = kfold(n, k, seed).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut test_seen = vec![0usize; n];
        for fold in &folds {
            prop_assert_eq!(fold.train.len() + fold.test.len(), n);
            for &i in &fold.test {
                test_seen[i] += 1;
            }
            // disjointness
            let mut train_set = vec![false; n];
            for &i in &fold.train { train_set[i] = true; }
            for &i in &fold.test {
                prop_assert!(!train_set[i]);
            }
        }
        prop_assert!(test_seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn stratified_fold_class_balance(labels in labels_strategy(), seed in any::<u64>()) {
        let k = 3;
        if labels.len() < k { return Ok(()); }
        let folds = stratified_kfold(&labels, k, seed).unwrap();
        let n_classes = labels.iter().max().unwrap() + 1;
        for class in 0..n_classes {
            let total = labels.iter().filter(|&&c| c == class).count();
            for fold in &folds {
                let in_fold = fold.test.iter().filter(|&&i| labels[i] == class).count();
                // each fold holds between floor and ceil of total/k
                prop_assert!(in_fold >= total / k);
                prop_assert!(in_fold <= total.div_ceil(k));
            }
        }
    }

    #[test]
    fn f1_is_bounded_and_perfect_on_identity(labels in labels_strategy()) {
        let cm = ConfusionMatrix::from_pairs(&labels, &labels).unwrap();
        prop_assert!((cm.f1_weighted() - 1.0).abs() < 1e-12);
        // macro-F1 is 1 only when every class id up to the max actually occurs
        let all_present = (0..cm.n_classes()).all(|c| cm.support(c) > 0);
        if all_present {
            prop_assert!((cm.f1_macro() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn f1_in_unit_interval(a in labels_strategy(), b in labels_strategy()) {
        let n = a.len().min(b.len());
        let f1 = metrics::f1_score(&a[..n], &b[..n]).unwrap();
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn nrmse_zero_iff_perfect(y in prop::collection::vec(-1e3f64..1e3, 2..40)) {
        let score = metrics::nrmse(&y, &y).unwrap();
        prop_assert!(score.abs() < 1e-12);
    }

    #[test]
    fn classifier_predictions_stay_in_label_set(
        seed in any::<u64>(),
        n in 20usize..60,
    ) {
        let x = Matrix::from_fn(n, 3, |r, c| ((r * 7 + c * 13) % 29) as f64);
        let y: Vec<usize> = (0..n).map(|r| r % 3).collect();
        let mut rf = RandomForestClassifier::with_config({
            let mut c = small_forest_config(seed, true);
            c.n_estimators = 5;
            c
        });
        rf.fit(&x, &y).unwrap();
        for p in rf.predict(&x).unwrap() {
            prop_assert!(p < 3);
        }
    }

    #[test]
    fn regressor_predictions_within_target_hull(
        seed in any::<u64>(),
        targets in prop::collection::vec(-100.0f64..100.0, 20..50),
    ) {
        let n = targets.len();
        let x = Matrix::from_fn(n, 2, |r, c| (r + c) as f64);
        let mut rf = RandomForestRegressor::with_config({
            let mut c = small_forest_config(seed, false);
            c.n_estimators = 5;
            c
        });
        rf.fit(&x, &targets).unwrap();
        let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in rf.predict(&x).unwrap() {
            // tree means of leaf means can never leave the target hull
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
