//! Pins the zero-allocation guarantee of tree fitting: once a
//! [`TreeArena`] is warm, node expansion touches the heap only for the
//! handful of buffers cloned into the returned `DecisionTree` — never per
//! node — for **both** split engines.
//!
//! Measured with a counting global allocator (the pattern from
//! `crates/core/tests/alloc.rs`). This file holds exactly one `#[test]`
//! so no concurrent test can allocate while the counter window is open.

use cwsmooth_linalg::Matrix;
use cwsmooth_ml::tree::{DecisionTree, MaxFeatures, SplitAlgo, TreeArena, TreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted — the libtest
    /// harness thread allocates sporadically and must not trip the pin.
    static COUNT_ME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(std::cell::Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Labels nearly uncorrelated with the features, so trees must shatter
/// the sample set and grow hundreds of nodes.
fn dataset() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(360, 8, |r, c| {
        let h = (r * 2654435761 + c * 40503) % 10_000;
        h as f64 / 10_000.0
    });
    let y: Vec<f64> = (0..360).map(|r| ((r * 7919) % 4) as f64).collect();
    (x, y)
}

#[test]
fn warm_arena_fits_allocate_o1_not_per_node() {
    COUNT_ME.with(|c| c.set(true));
    let (x, y) = dataset();
    for algo in [SplitAlgo::Exact, SplitAlgo::histogram()] {
        for max_features in [MaxFeatures::All, MaxFeatures::Sqrt] {
            let cfg = TreeConfig {
                max_features,
                split_algo: algo,
                ..TreeConfig::classification()
            };
            let mut arena = TreeArena::new();
            // Warm-up: sizes every arena buffer (allocates freely).
            let warm =
                DecisionTree::fit_with_arena(&mut arena, &x, &y, 4, &cfg, &mut rng()).unwrap();
            assert!(
                warm.node_count() > 100,
                "want a non-trivial tree, got {} nodes",
                warm.node_count()
            );

            // Measurement window: a full fit on the warm arena. Node
            // expansion itself must be heap-silent; the only allocations
            // allowed are the O(1) buffers cloned into the returned tree
            // (nodes + importances, plus their container).
            let a0 = ALLOCS.load(Ordering::SeqCst);
            let tree =
                DecisionTree::fit_with_arena(&mut arena, &x, &y, 4, &cfg, &mut rng()).unwrap();
            let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
            assert!(
                allocs <= 4,
                "{algo:?}/{max_features:?}: warm fit allocated {allocs} times \
                 for {} nodes (expected O(1), not O(nodes))",
                tree.node_count()
            );
            assert_eq!(tree.node_count(), warm.node_count());
        }
    }
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(7)
}
