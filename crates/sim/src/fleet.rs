//! Multi-node rack/island fleet scenario for fleet-scale streaming.
//!
//! The Table I segments model *one* node (or one rack aggregate) in depth;
//! this scenario models *many* shallow nodes — the workload a fleet ingest
//! engine faces. Each node runs a phase-shifted periodic workload (nodes of
//! one machine room rarely beat in lockstep), its power and thermal sensors
//! are physically coupled to that workload, nodes of one rack share a
//! common inlet-air condition (rack-level correlation), and telemetry gaps
//! are injected per node-frame with a configurable probability — the
//! dropped-sample reality of production monitoring buses.
//!
//! Generation is a pure deterministic function of `(seed, node, t)`:
//! nothing is stored, so a million-node fleet costs no memory and any
//! `(node, t)` cell can be (re)generated independently — which is also what
//! makes the scenario usable from criterion benchmarks without huge
//! fixtures.
//!
//! # Fault injection
//!
//! Each node's readings derive from a latent activity state
//! ([`FleetScenario::latent_at`] → [`FleetScenario::sensors_from`]), the
//! same [`Latent`]-channel model the Table I segments use — which means
//! the existing [`crate::faults`] injectors apply unchanged: a
//! [`FaultedFleet`] wraps a scenario with a [`FleetFaultPlan`] of
//! per-node fault segments and runs [`apply_fault`] on the latent state
//! of every covered `(node, t)` cell before deriving sensors. With an
//! empty plan the readings are bit-identical to the plain scenario
//! (pinned by tests), and [`FaultedFleet::class_at`] provides the
//! ground-truth label a streaming detector is scored against.

use crate::channels::{Channel, Latent};
use crate::faults::{apply_fault, FaultKind, FaultSetting};
use cwsmooth_linalg::Matrix;

/// Sensors per fleet node.
pub const FLEET_SENSORS: usize = 8;

/// Names of the per-node sensors, in row order.
pub const FLEET_SENSOR_NAMES: [&str; FLEET_SENSORS] = [
    "cpu_util_pct",
    "mem_util_pct",
    "membw_util_pct",
    "net_bw_mbs",
    "power_node_w",
    "temp_cpu_c",
    "temp_inlet_c",
    "psu_volt_v",
];

/// Row index of the deliberately constant sensor (`psu_volt_v`): its
/// trained min-max bounds collapse, exercising the zero-range guard of the
/// signature pipeline at fleet scale.
pub const CONSTANT_SENSOR: usize = 7;

/// Fleet scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetSimConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of nodes in the fleet.
    pub nodes: usize,
    /// Nodes per rack (rack peers share an inlet-air condition).
    pub nodes_per_rack: usize,
    /// Per-node per-frame telemetry-drop probability, in 1/1000.
    pub gap_per_mille: u32,
}

impl FleetSimConfig {
    /// Creates a config: 32-node racks, no telemetry gaps.
    pub fn new(seed: u64, nodes: usize) -> Self {
        Self {
            seed,
            nodes,
            nodes_per_rack: 32,
            gap_per_mille: 0,
        }
    }

    /// Sets the telemetry-drop probability (per node-frame, in 1/1000).
    pub fn with_gaps(mut self, per_mille: u32) -> Self {
        self.gap_per_mille = per_mille;
        self
    }

    /// Sets the rack size.
    pub fn with_rack_size(mut self, nodes_per_rack: usize) -> Self {
        self.nodes_per_rack = nodes_per_rack.max(1);
        self
    }
}

/// A deterministic multi-node telemetry generator (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct FleetScenario {
    cfg: FleetSimConfig,
}

/// SplitMix64 finalizer: cheap stateless hashing so every `(seed, node, t)`
/// cell is independent without per-node RNG state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    mix(seed ^ mix(a ^ mix(b)))
}

/// Uniform in `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Zero-mean pseudo-noise in `[-1, 1)` from a hash.
fn noise(h: u64) -> f64 {
    2.0 * unit(h) - 1.0
}

impl FleetScenario {
    /// Creates the scenario.
    pub fn new(cfg: FleetSimConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &FleetSimConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Sensors per node.
    pub fn n_sensors(&self) -> usize {
        FLEET_SENSORS
    }

    /// The rack a node belongs to.
    pub fn rack_of(&self, node: usize) -> usize {
        node / self.cfg.nodes_per_rack
    }

    /// `true` when `node`'s reading for frame `t` is dropped (telemetry
    /// gap). Deterministic per `(seed, node, t)`.
    pub fn has_gap(&self, node: usize, t: usize) -> bool {
        self.cfg.gap_per_mille > 0
            && hash3(self.cfg.seed ^ 0x6a70, node as u64, t as u64) % 1000
                < self.cfg.gap_per_mille as u64
    }

    /// The latent activity state driving `node`'s sensors at frame `t`
    /// — the fault-injection hook: [`crate::faults::apply_fault`]
    /// perturbs this state exactly as it perturbs the Table I segments,
    /// and [`FleetScenario::sensors_from`] turns the (possibly faulted)
    /// state into readings.
    pub fn latent_at(&self, node: usize, t: usize) -> Latent {
        let seed = self.cfg.seed;
        let nid = node as u64;
        let tf = t as f64;

        // Per-node workload: a periodic job pattern, phase- and
        // period-shifted per node, with a slower modulation envelope.
        let phase = std::f64::consts::TAU * unit(hash3(seed, nid, 0xfa5e));
        let period = 64.0 + 64.0 * unit(hash3(seed, nid, 0x9e1d));
        let envelope =
            0.5 + 0.5 * (tf * std::f64::consts::TAU / (16.0 * period) + 2.0 * phase).sin();
        let cyc = (tf * std::f64::consts::TAU / period + phase).sin();
        let n1 = noise(hash3(seed, nid, t as u64));
        let cpu = (0.55 + 0.35 * cyc * envelope + 0.04 * n1).clamp(0.0, 1.0);

        // Correlated activity family.
        let n2 = noise(hash3(seed ^ 0x11, nid, t as u64));
        let mem = (0.25 + 0.55 * cpu + 0.03 * n2).clamp(0.0, 1.0);
        let membw = (0.85 * cpu * cpu + 0.05 * n1.abs()).clamp(0.0, 1.0);

        let mut latent = Latent::idle(); // Freq starts at the nominal 1.0
        latent.set(Channel::Cpu, cpu);
        latent.set(Channel::Mem, mem);
        latent.set(Channel::MemBw, membw);
        // Network activity tracks memory traffic on these nodes (the
        // NetDegrade injector scales this channel independently).
        latent.set(Channel::Net, membw);
        latent
    }

    /// Derives `node`'s [`FLEET_SENSORS`] readings at frame `t` from a
    /// latent activity state (see [`FleetScenario::latent_at`]).
    ///
    /// Panics if `out.len() != FLEET_SENSORS`.
    pub fn sensors_from(&self, node: usize, t: usize, latent: &Latent, out: &mut [f64]) {
        assert_eq!(out.len(), FLEET_SENSORS, "fleet column buffer size");
        let seed = self.cfg.seed;
        let nid = node as u64;
        let tf = t as f64;
        let n1 = noise(hash3(seed, nid, t as u64));
        let n2 = noise(hash3(seed ^ 0x11, nid, t as u64));

        let cpu = latent.get(Channel::Cpu);
        let membw = latent.get(Channel::MemBw);
        let net = 40.0
            + 900.0 * latent.get(Channel::Net)
            + 25.0 * noise(hash3(seed ^ 0x22, nid, t as u64)).abs();

        // Physics: power follows utilization scaled by the clock (a
        // capped clock burns less); CPU temperature rides the rack inlet
        // air plus the node's own dissipation. At the nominal clock
        // (Freq = 1.0) this reduces bit-exactly to the un-faulted model.
        let power = 88.0 + 155.0 * (cpu * latent.get(Channel::Freq)) + 30.0 * membw + 2.5 * n2;
        let rack = self.rack_of(node) as u64;
        let ambient = 19.0
            + 3.5 * (tf * std::f64::consts::TAU / 2880.0 + rack as f64 * 0.7).sin()
            + 0.15 * noise(hash3(seed ^ 0x33, rack, t as u64 / 8));
        let temp_cpu = ambient + 12.0 + 0.13 * (power - 88.0) + 0.3 * n1;

        out[0] = 100.0 * cpu;
        out[1] = 100.0 * latent.get(Channel::Mem);
        out[2] = 100.0 * membw;
        out[3] = net;
        out[4] = power;
        out[5] = temp_cpu;
        out[6] = ambient;
        // Exactly constant: a healthy PSU rail. Its trained bounds collapse
        // (hi == lo), pinning the signature pipeline's zero-range guard.
        out[CONSTANT_SENSOR] = 12.05;
    }

    /// Writes `node`'s [`FLEET_SENSORS`] readings at frame `t` into `out`.
    ///
    /// Panics if `out.len() != FLEET_SENSORS`.
    pub fn reading_into(&self, node: usize, t: usize, out: &mut [f64]) {
        let latent = self.latent_at(node, t);
        self.sensors_from(node, t, &latent, out);
    }

    /// `node`'s readings at frame `t` as a fresh vector.
    pub fn reading(&self, node: usize, t: usize) -> Vec<f64> {
        let mut out = vec![0.0; FLEET_SENSORS];
        self.reading_into(node, t, &mut out);
        out
    }

    /// A clean (gap-free) training matrix for `node` covering frames
    /// `0..samples`. Stream live frames from `t = samples` onwards so
    /// inference data extends, rather than replays, the training range.
    pub fn training_matrix(&self, node: usize, samples: usize) -> Matrix {
        let mut m = Matrix::zeros(FLEET_SENSORS, samples);
        let mut buf = [0.0; FLEET_SENSORS];
        for t in 0..samples {
            self.reading_into(node, t, &mut buf);
            for (r, &v) in buf.iter().enumerate() {
                m.set(r, t, v);
            }
        }
        m
    }
}

/// One injected fault: `kind` at `setting` on `node`, covering frames
/// `start..start + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSegmentSpec {
    /// The afflicted node.
    pub node: usize,
    /// First covered frame.
    pub start: usize,
    /// Covered frame count (>= 1).
    pub len: usize,
    /// Which injector runs.
    pub kind: FaultKind,
    /// Its intensity.
    pub setting: FaultSetting,
}

impl FaultSegmentSpec {
    /// One past the last covered frame.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// `true` when frame `t` falls inside this segment.
    pub fn covers(&self, t: usize) -> bool {
        (self.start..self.end()).contains(&t)
    }
}

/// A schedule of injected fault segments across the fleet, kept sorted
/// by `(node, start)` for O(log s) lookup per `(node, t)` cell.
#[derive(Debug, Clone, Default)]
pub struct FleetFaultPlan {
    segments: Vec<FaultSegmentSpec>,
}

impl FleetFaultPlan {
    /// An empty plan (every node healthy everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault segment (builder style).
    ///
    /// # Panics
    /// If the segment is empty (`len == 0`) or overlaps an existing
    /// segment on the same node — a cell with two active injectors has
    /// no single ground-truth class.
    pub fn with(mut self, seg: FaultSegmentSpec) -> Self {
        assert!(seg.len >= 1, "fault segment must cover at least 1 frame");
        let at = self
            .segments
            .partition_point(|s| (s.node, s.start) <= (seg.node, seg.start));
        if at > 0 {
            let prev = &self.segments[at - 1];
            assert!(
                prev.node != seg.node || prev.end() <= seg.start,
                "fault segments overlap on node {}: {prev:?} vs {seg:?}",
                seg.node
            );
        }
        if let Some(next) = self.segments.get(at) {
            assert!(
                next.node != seg.node || seg.end() <= next.start,
                "fault segments overlap on node {}: {seg:?} vs {next:?}",
                seg.node
            );
        }
        self.segments.insert(at, seg);
        self
    }

    /// All segments, sorted by `(node, start)`.
    pub fn segments(&self) -> &[FaultSegmentSpec] {
        &self.segments
    }

    /// The segment covering `(node, t)`, if any.
    pub fn active(&self, node: usize, t: usize) -> Option<&FaultSegmentSpec> {
        let i = self
            .segments
            .partition_point(|s| (s.node, s.start) <= (node, t));
        self.segments[..i]
            .last()
            .filter(|s| s.node == node && s.covers(t))
    }

    /// Ground-truth class of `(node, t)`: 0 when healthy, else the
    /// active fault's [`FaultKind::class_id`].
    pub fn class_at(&self, node: usize, t: usize) -> usize {
        self.active(node, t).map_or(0, |s| s.kind.class_id())
    }
}

/// A fleet scenario with faults injected per the plan: readings of
/// covered `(node, t)` cells run [`apply_fault`] over the latent state
/// before sensor derivation; everything else is bit-identical to the
/// plain scenario.
#[derive(Debug, Clone)]
pub struct FaultedFleet {
    scenario: FleetScenario,
    plan: FleetFaultPlan,
}

impl FaultedFleet {
    /// Wraps a scenario with a fault plan.
    pub fn new(scenario: FleetScenario, plan: FleetFaultPlan) -> Self {
        Self { scenario, plan }
    }

    /// The underlying (healthy) scenario.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }

    /// Ground-truth class of `(node, t)` (see [`FleetFaultPlan::class_at`]).
    pub fn class_at(&self, node: usize, t: usize) -> usize {
        self.plan.class_at(node, t)
    }

    /// Delegates to [`FleetScenario::has_gap`] — fault injection does
    /// not change telemetry delivery.
    pub fn has_gap(&self, node: usize, t: usize) -> bool {
        self.scenario.has_gap(node, t)
    }

    /// Writes `node`'s readings at frame `t`, with any covering fault
    /// applied to the latent state first.
    ///
    /// Panics if `out.len() != FLEET_SENSORS`.
    pub fn reading_into(&self, node: usize, t: usize, out: &mut [f64]) {
        let mut latent = self.scenario.latent_at(node, t);
        if let Some(seg) = self.plan.active(node, t) {
            apply_fault(&mut latent, seg.kind, seg.setting, t - seg.start, seg.len);
        }
        self.scenario.sensors_from(node, t, &latent, out);
    }

    /// `node`'s (possibly faulted) readings at frame `t` as a fresh
    /// vector.
    pub fn reading(&self, node: usize, t: usize) -> Vec<f64> {
        let mut out = vec![0.0; FLEET_SENSORS];
        self.reading_into(node, t, &mut out);
        out
    }

    /// A sensor matrix for `node` covering frames `from..to`, with
    /// faults applied — the labelled-data source for training streaming
    /// detectors ([`FaultedFleet::class_at`] labels each column).
    pub fn matrix(&self, node: usize, from: usize, to: usize) -> Matrix {
        assert!(to >= from, "empty frame range");
        let mut m = Matrix::zeros(FLEET_SENSORS, to - from);
        let mut buf = [0.0; FLEET_SENSORS];
        for (c, t) in (from..to).enumerate() {
            self.reading_into(node, t, &mut buf);
            for (r, &v) in buf.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_linalg::corr::pearson;

    const T: usize = 1200;

    fn rows(sc: &FleetScenario, node: usize) -> Matrix {
        sc.training_matrix(node, T)
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FleetScenario::new(FleetSimConfig::new(7, 4));
        let b = FleetScenario::new(FleetSimConfig::new(7, 4));
        let c = FleetScenario::new(FleetSimConfig::new(8, 4));
        assert_eq!(rows(&a, 2), rows(&b, 2));
        assert_ne!(rows(&a, 2), rows(&c, 2));
        assert_ne!(rows(&a, 2), rows(&a, 3), "nodes are decorrelated");
    }

    #[test]
    fn workload_sensors_are_correlated_per_node() {
        let sc = FleetScenario::new(FleetSimConfig::new(42, 8));
        let m = rows(&sc, 3);
        assert!(pearson(m.row(0), m.row(1)) > 0.8, "cpu/mem");
        assert!(pearson(m.row(0), m.row(4)) > 0.8, "cpu/power");
        assert!(pearson(m.row(4), m.row(5)) > 0.7, "power/temp_cpu");
        assert!(!m.has_non_finite());
    }

    #[test]
    fn rack_peers_share_inlet_condition() {
        let sc = FleetScenario::new(FleetSimConfig::new(5, 96).with_rack_size(32));
        // Same rack: inlet temperature nearly identical.
        let a = rows(&sc, 1);
        let b = rows(&sc, 30);
        assert!(pearson(a.row(6), b.row(6)) > 0.95, "same-rack inlet");
        // Different racks are phase-shifted.
        let c = rows(&sc, 70);
        assert!(pearson(a.row(6), c.row(6)) < 0.9, "cross-rack inlet");
        assert_eq!(sc.rack_of(31), 0);
        assert_eq!(sc.rack_of(32), 1);
    }

    #[test]
    fn nodes_are_phase_shifted() {
        let sc = FleetScenario::new(FleetSimConfig::new(11, 4));
        let a = rows(&sc, 0);
        let b = rows(&sc, 1);
        // Same structural family, but not in lockstep.
        assert!(pearson(a.row(0), b.row(0)) < 0.9, "cpu should not sync");
    }

    #[test]
    fn constant_sensor_is_exactly_constant() {
        let sc = FleetScenario::new(FleetSimConfig::new(3, 2));
        let m = rows(&sc, 0);
        assert!(m.row(CONSTANT_SENSOR).iter().all(|&v| v == 12.05));
    }

    #[test]
    fn gap_rate_matches_configuration() {
        let sc = FleetScenario::new(FleetSimConfig::new(19, 64).with_gaps(50));
        let trials = 64 * 2000;
        let gaps: usize = (0..64)
            .flat_map(|node| (0..2000).map(move |t| (node, t)))
            .filter(|&(node, t)| sc.has_gap(node, t))
            .count();
        let rate = gaps as f64 / trials as f64;
        assert!((rate - 0.05).abs() < 0.01, "gap rate {rate}");
        // No gaps when disabled.
        let clean = FleetScenario::new(FleetSimConfig::new(19, 64));
        assert!(!(0..500).any(|t| clean.has_gap(0, t)));
    }

    #[test]
    fn reading_matches_reading_into() {
        let sc = FleetScenario::new(FleetSimConfig::new(23, 2));
        let mut buf = [0.0; FLEET_SENSORS];
        sc.reading_into(1, 77, &mut buf);
        assert_eq!(sc.reading(1, 77), buf.to_vec());
        assert_eq!(FLEET_SENSOR_NAMES.len(), FLEET_SENSORS);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_scenario() {
        let sc = FleetScenario::new(FleetSimConfig::new(77, 4));
        let faulted = FaultedFleet::new(sc, FleetFaultPlan::new());
        for node in 0..4 {
            for t in [0usize, 13, 499, 5000] {
                assert_eq!(faulted.reading(node, t), sc.reading(node, t));
                assert_eq!(faulted.class_at(node, t), 0);
            }
        }
    }

    #[test]
    fn fault_segment_perturbs_exactly_its_cells() {
        let sc = FleetScenario::new(FleetSimConfig::new(5, 4));
        let plan = FleetFaultPlan::new().with(FaultSegmentSpec {
            node: 2,
            start: 100,
            len: 50,
            kind: FaultKind::CpuOccupy,
            setting: FaultSetting::High,
        });
        let faulted = FaultedFleet::new(sc, plan);
        assert_eq!(faulted.plan().segments().len(), 1);
        for t in [99usize, 150, 151] {
            assert_eq!(faulted.reading(2, t), sc.reading(2, t), "outside at {t}");
            assert_eq!(faulted.class_at(2, t), 0);
        }
        for t in [100usize, 125, 149] {
            let clean = sc.reading(2, t);
            let hot = faulted.reading(2, t);
            assert_ne!(hot, clean, "inside at {t}");
            // The CPU hog raises cpu_util and the constant rail stays put.
            assert!(hot[0] > clean[0], "cpu {} vs {}", hot[0], clean[0]);
            assert_eq!(hot[CONSTANT_SENSOR], 12.05);
            assert_eq!(faulted.class_at(2, t), FaultKind::CpuOccupy.class_id());
        }
        // Other nodes never see the fault.
        assert_eq!(faulted.reading(1, 125), sc.reading(1, 125));
    }

    #[test]
    fn fault_signatures_reach_the_observed_sensors() {
        let sc = FleetScenario::new(FleetSimConfig::new(9, 2));
        let seg = |kind, start| FaultSegmentSpec {
            node: 0,
            start,
            len: 200,
            kind,
            setting: FaultSetting::High,
        };
        let plan = FleetFaultPlan::new()
            .with(seg(FaultKind::NetDegrade, 0))
            .with(seg(FaultKind::FreqCap, 300))
            .with(seg(FaultKind::MemLeak, 600));
        let faulted = FaultedFleet::new(sc, plan);
        // NetDegrade: net bandwidth collapses.
        let (clean, hot) = (sc.reading(0, 50), faulted.reading(0, 50));
        assert!(hot[3] < clean[3] - 20.0, "net {} vs {}", hot[3], clean[3]);
        // FreqCap: package power drops through the clock term.
        let (clean, hot) = (sc.reading(0, 350), faulted.reading(0, 350));
        assert!(hot[4] < clean[4] - 20.0, "power {} vs {}", hot[4], clean[4]);
        // MemLeak is progressive: late in the segment mem sits higher.
        let early = faulted.reading(0, 610)[1] - sc.reading(0, 610)[1];
        let late = faulted.reading(0, 790)[1] - sc.reading(0, 790)[1];
        assert!(late > early, "leak grows: {early} -> {late}");
        // matrix() stitches labelled columns together.
        let m = faulted.matrix(0, 0, 400);
        assert_eq!(m.shape(), (FLEET_SENSORS, 400));
        assert_eq!(m.get(3, 50), faulted.reading(0, 50)[3]);
        assert!(!m.has_non_finite());
    }

    #[test]
    fn plan_lookup_is_exact_across_nodes_and_boundaries() {
        let plan = FleetFaultPlan::new()
            .with(FaultSegmentSpec {
                node: 1,
                start: 10,
                len: 10,
                kind: FaultKind::MemEater,
                setting: FaultSetting::Low,
            })
            .with(FaultSegmentSpec {
                node: 1,
                start: 40,
                len: 5,
                kind: FaultKind::IoStress,
                setting: FaultSetting::High,
            })
            .with(FaultSegmentSpec {
                node: 0,
                start: 12,
                len: 3,
                kind: FaultKind::CacheInterference,
                setting: FaultSetting::Low,
            });
        assert!(plan.active(1, 9).is_none());
        assert_eq!(plan.active(1, 10).unwrap().kind, FaultKind::MemEater);
        assert_eq!(plan.active(1, 19).unwrap().kind, FaultKind::MemEater);
        assert!(plan.active(1, 20).is_none());
        assert_eq!(plan.active(1, 44).unwrap().kind, FaultKind::IoStress);
        assert_eq!(
            plan.active(0, 13).unwrap().kind,
            FaultKind::CacheInterference
        );
        assert!(plan.active(2, 13).is_none(), "node 2 is clean");
        assert_eq!(plan.class_at(1, 12), FaultKind::MemEater.class_id());
        assert_eq!(plan.class_at(1, 25), 0);
        // Segments are kept sorted by (node, start).
        let order: Vec<(usize, usize)> =
            plan.segments().iter().map(|s| (s.node, s.start)).collect();
        assert_eq!(order, vec![(0, 12), (1, 10), (1, 40)]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_segments_on_one_node_panic() {
        let seg = |start, len| FaultSegmentSpec {
            node: 3,
            start,
            len,
            kind: FaultKind::CpuOccupy,
            setting: FaultSetting::Low,
        };
        let _ = FleetFaultPlan::new().with(seg(10, 20)).with(seg(25, 5));
    }
}
