//! Fault injection models.
//!
//! HPC-ODA's Fault segment comes from the Antarex dataset: a node running
//! applications while eight fault programs reproduce software/hardware
//! issues, each with two settings (paper Sec. II-B1). The models here
//! perturb the latent activity the same way the original injectors perturb
//! the machine: a CPU hog steals cycles, a leak ramps memory, a cache
//! interference program inflates miss rates, and so on.

use crate::channels::{Channel, Latent};

/// The eight injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Busy-loop CPU hog stealing cycles from the application.
    CpuOccupy,
    /// Cache interference (cache-unfriendly strided copies).
    CacheInterference,
    /// Gradual memory leak.
    MemLeak,
    /// Sudden large allocation ("memeater").
    MemEater,
    /// I/O stress (continuous writes), inflating iowait.
    IoStress,
    /// Network degradation: lost packets and retransmissions.
    NetDegrade,
    /// Forced CPU frequency reduction (thermal capping).
    FreqCap,
    /// Page-fault storm from pathological allocation patterns.
    PageFaultStorm,
}

impl FaultKind {
    /// All faults, in class-label order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::CpuOccupy,
        FaultKind::CacheInterference,
        FaultKind::MemLeak,
        FaultKind::MemEater,
        FaultKind::IoStress,
        FaultKind::NetDegrade,
        FaultKind::FreqCap,
        FaultKind::PageFaultStorm,
    ];

    /// Class label: 0 is healthy, faults are 1..=8.
    pub fn class_id(self) -> usize {
        match self {
            FaultKind::CpuOccupy => 1,
            FaultKind::CacheInterference => 2,
            FaultKind::MemLeak => 3,
            FaultKind::MemEater => 4,
            FaultKind::IoStress => 5,
            FaultKind::NetDegrade => 6,
            FaultKind::FreqCap => 7,
            FaultKind::PageFaultStorm => 8,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CpuOccupy => "cpuoccupy",
            FaultKind::CacheInterference => "cacheinterf",
            FaultKind::MemLeak => "memleak",
            FaultKind::MemEater => "memeater",
            FaultKind::IoStress => "iostress",
            FaultKind::NetDegrade => "netdegrade",
            FaultKind::FreqCap => "freqcap",
            FaultKind::PageFaultStorm => "pagefaultstorm",
        }
    }
}

/// Fault intensity setting (each fault program has two, paper Sec. II-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSetting {
    /// Low-intensity variant.
    Low,
    /// High-intensity variant.
    High,
}

impl FaultSetting {
    /// Both settings.
    pub const ALL: [FaultSetting; 2] = [FaultSetting::Low, FaultSetting::High];

    fn magnitude(self) -> f64 {
        match self {
            FaultSetting::Low => 0.55,
            FaultSetting::High => 1.0,
        }
    }
}

/// Applies `fault` to the latent state at position `t` of `fault_len`
/// samples since injection (some faults, like leaks, are progressive).
pub fn apply_fault(
    latent: &mut Latent,
    fault: FaultKind,
    setting: FaultSetting,
    t: usize,
    fault_len: usize,
) {
    let m = setting.magnitude();
    let progress = t as f64 / fault_len.max(1) as f64;
    match fault {
        FaultKind::CpuOccupy => {
            latent.add(Channel::Cpu, 0.5 * m);
            latent.add(Channel::Sched, 0.4 * m);
            // The victim application slows down: its bandwidth drops.
            latent.scale(Channel::MemBw, 1.0 - 0.3 * m);
        }
        FaultKind::CacheInterference => {
            latent.add(Channel::Cache, 0.6 * m);
            latent.add(Channel::MemBw, 0.25 * m);
            latent.scale(Channel::Cpu, 1.0 - 0.15 * m);
        }
        FaultKind::MemLeak => {
            latent.add(Channel::Mem, (0.2 + 0.6 * progress) * m);
            latent.add(Channel::PageFault, 0.1 * m * progress);
        }
        FaultKind::MemEater => {
            latent.add(Channel::Mem, 0.65 * m);
            latent.add(Channel::MemBw, 0.1 * m);
        }
        FaultKind::IoStress => {
            latent.add(Channel::Io, 0.7 * m);
            latent.add(Channel::Sched, 0.2 * m);
            latent.scale(Channel::Cpu, 1.0 - 0.1 * m);
        }
        FaultKind::NetDegrade => {
            latent.scale(Channel::Net, 1.0 - 0.6 * m);
            latent.add(Channel::Sched, 0.3 * m);
        }
        FaultKind::FreqCap => {
            latent.scale(Channel::Freq, 1.0 - 0.4 * m);
            latent.scale(Channel::MemBw, 1.0 - 0.2 * m);
        }
        FaultKind::PageFaultStorm => {
            latent.add(Channel::PageFault, 0.75 * m);
            latent.add(Channel::Sched, 0.3 * m);
            latent.scale(Channel::Cpu, 1.0 - 0.2 * m);
        }
    }
    latent.clamp();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{latent_at, AppKind, InputConfig};

    #[test]
    fn class_ids_dense_from_one() {
        let mut ids: Vec<usize> = FaultKind::ALL.iter().map(|f| f.class_id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn each_fault_changes_the_latent_state() {
        for fault in FaultKind::ALL {
            for setting in FaultSetting::ALL {
                let base = latent_at(AppKind::Lammps, InputConfig(0), 40, 100, 0.0);
                let mut perturbed = base;
                apply_fault(&mut perturbed, fault, setting, 50, 100);
                assert_ne!(base, perturbed, "{fault:?} {setting:?} had no effect");
            }
        }
    }

    #[test]
    fn high_setting_is_stronger_than_low() {
        let base = latent_at(AppKind::Amg, InputConfig(0), 40, 100, 0.0);
        let mut low = base;
        let mut high = base;
        apply_fault(&mut low, FaultKind::CpuOccupy, FaultSetting::Low, 10, 100);
        apply_fault(&mut high, FaultKind::CpuOccupy, FaultSetting::High, 10, 100);
        assert!(high.get(Channel::Cpu) >= low.get(Channel::Cpu));
    }

    #[test]
    fn memleak_is_progressive() {
        let base = Latent::idle();
        let mut early = base;
        let mut late = base;
        apply_fault(&mut early, FaultKind::MemLeak, FaultSetting::High, 5, 100);
        apply_fault(&mut late, FaultKind::MemLeak, FaultSetting::High, 95, 100);
        assert!(late.get(Channel::Mem) > early.get(Channel::Mem));
    }

    #[test]
    fn freqcap_reduces_clock() {
        let mut l = latent_at(AppKind::Linpack, InputConfig(0), 50, 100, 0.0);
        let before = l.get(Channel::Freq);
        apply_fault(&mut l, FaultKind::FreqCap, FaultSetting::High, 0, 10);
        assert!(l.get(Channel::Freq) < before);
    }

    #[test]
    fn faulted_state_remains_physical() {
        for fault in FaultKind::ALL {
            let mut l = latent_at(AppKind::Linpack, InputConfig(2), 80, 100, 0.0);
            apply_fault(&mut l, fault, FaultSetting::High, 99, 100);
            for (i, &v) in l.as_array().iter().enumerate() {
                assert!(v.is_finite());
                if i == Channel::Freq as usize {
                    assert!((0.3..=1.5).contains(&v));
                } else {
                    assert!((0.0..=1.0).contains(&v), "{fault:?} ch{i}={v}");
                }
            }
        }
    }
}
