//! Builders for the five HPC-ODA-like segments (paper Table I).
//!
//! Each builder produces a labelled [`Segment`] with the same structure as
//! the corresponding HPC-ODA segment: same sensor counts, same window
//! geometry (`wl`/`ws` expressed in samples), same task. Durations are
//! scaled down from the paper's multi-day traces to keep experiments
//! laptop-sized; the scaling is recorded in `EXPERIMENTS.md`.
//!
//! | Segment        | System          | Nodes | Sensors | Task           | wl | ws | horizon |
//! |----------------|-----------------|-------|---------|----------------|----|----|---------|
//! | Fault          | ETH testbed     | 1     | 128     | classification | 60 | 10 | –       |
//! | Application    | SuperMUC-NG     | 16    | 52/node | classification | 30 | 5  | –       |
//! | Power          | CooLMUC-3       | 1     | 47      | regression     | 10 | 5  | 3       |
//! | Infrastructure | CooLMUC-3 rack  | 148*  | 31      | regression     | 30 | 6  | 30      |
//! | Cross-Arch     | 3 architectures | 3     | 52/46/39| classification | 30 | 2  | –       |
//!
//! *the rack aggregates 148 nodes' load into rack-level sensors.

use crate::apps::{latent_at, AppKind};
use crate::arch::ArchKind;
use crate::channels::{Channel, Latent};
use crate::faults::apply_fault;
use crate::rng::{normal, stream, SimRng};
use crate::schedule::{app_schedule, fault_schedule, Run, RunPayload, ScheduleConfig};
use cwsmooth_data::transform::difference_monotonic_rows;
use cwsmooth_data::{LabelTrack, Segment, TaskKind, WindowSpec};
use cwsmooth_linalg::Matrix;
use rand::Rng;

/// Simulation parameters shared by all segment builders.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Master seed; every node/sensor derives a decorrelated stream.
    pub seed: u64,
    /// Number of samples (time-stamps) to generate.
    pub samples: usize,
}

impl SimConfig {
    /// Creates a config.
    pub fn new(seed: u64, samples: usize) -> Self {
        Self { seed, samples }
    }
}

/// Table I-style metadata describing one segment and its experiment setup.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Segment name.
    pub name: &'static str,
    /// HPC system the original segment was captured on.
    pub system: &'static str,
    /// Number of nodes contributing data.
    pub nodes: usize,
    /// Sensors per node (total rows = nodes × sensors for multi-node).
    pub sensors_per_node: usize,
    /// Sampling interval in milliseconds (paper's granularity).
    pub sampling_interval_ms: u64,
    /// Aggregation window length in samples.
    pub wl: usize,
    /// Window step in samples.
    pub ws: usize,
    /// Regression horizon in samples (0 for classification).
    pub horizon: usize,
    /// Task kind.
    pub task: TaskKind,
    /// Default sample count for a laptop-scale reproduction.
    pub default_samples: usize,
}

impl SegmentInfo {
    /// The window spec for this segment's experiments.
    pub fn window_spec(&self) -> WindowSpec {
        WindowSpec::new(self.wl, self.ws).expect("static specs are valid")
    }

    /// Expected number of feature sets for `samples` time-stamps.
    pub fn feature_sets(&self, samples: usize) -> usize {
        let w = self.window_spec().count(samples);
        if self.task == TaskKind::Regression {
            // horizon-truncated windows are dropped
            w.saturating_sub(self.horizon.div_ceil(self.ws))
        } else {
            w
        }
    }
}

/// Metadata for the Fault segment.
pub fn fault_info() -> SegmentInfo {
    SegmentInfo {
        name: "Fault",
        system: "ETH Testbed",
        nodes: 1,
        sensors_per_node: 128,
        sampling_interval_ms: 1000,
        wl: 60,
        ws: 10,
        horizon: 0,
        task: TaskKind::Classification,
        default_samples: 6000,
    }
}

/// Metadata for the Application segment.
pub fn application_info() -> SegmentInfo {
    SegmentInfo {
        name: "Application",
        system: "SuperMUC-NG",
        nodes: 16,
        sensors_per_node: 52,
        sampling_interval_ms: 1000,
        wl: 30,
        ws: 5,
        horizon: 0,
        task: TaskKind::Classification,
        default_samples: 3500,
    }
}

/// Metadata for the Power segment.
pub fn power_info() -> SegmentInfo {
    SegmentInfo {
        name: "Power",
        system: "CooLMUC-3",
        nodes: 1,
        sensors_per_node: 47,
        sampling_interval_ms: 100,
        wl: 10,
        ws: 5,
        horizon: 3,
        task: TaskKind::Regression,
        default_samples: 6000,
    }
}

/// Metadata for the Infrastructure segment.
pub fn infrastructure_info() -> SegmentInfo {
    SegmentInfo {
        name: "Infrastructure",
        system: "CooLMUC-3",
        nodes: 148,
        sensors_per_node: 31,
        sampling_interval_ms: 10_000,
        wl: 30,
        ws: 6,
        horizon: 30,
        task: TaskKind::Regression,
        default_samples: 6000,
    }
}

/// Metadata for the Cross-Architecture segment.
pub fn cross_arch_info() -> SegmentInfo {
    SegmentInfo {
        name: "Cross-Arch",
        system: "Multiple",
        nodes: 3,
        sensors_per_node: 52, // per-node counts differ: 52 / 46 / 39
        sampling_interval_ms: 1000,
        wl: 30,
        ws: 2,
        horizon: 0,
        task: TaskKind::Classification,
        default_samples: 3000,
    }
}

/// All five segment infos, in Table I order.
pub fn all_infos() -> Vec<SegmentInfo> {
    vec![
        fault_info(),
        application_info(),
        power_info(),
        infrastructure_info(),
        cross_arch_info(),
    ]
}

/// Latent state for a run payload at offset `off`, before noise.
fn payload_latent(payload: RunPayload, off: usize, run_len: usize, jitter: f64) -> Latent {
    match payload {
        RunPayload::Idle => latent_at(
            AppKind::Idle,
            crate::apps::InputConfig(0),
            off,
            run_len,
            jitter,
        ),
        RunPayload::App { app, config } => latent_at(app, config, off, run_len, jitter),
        RunPayload::Faulted {
            app,
            config,
            fault,
            setting,
        } => {
            let mut l = latent_at(app, config, off, run_len, jitter);
            apply_fault(&mut l, fault, setting, off, run_len);
            l
        }
    }
}

/// Adds small latent-level jitter so correlated sensors are not *exactly*
/// collinear (realistic measurement spread).
fn jitter_latent(l: &mut Latent, rng: &mut SimRng) {
    for c in [Channel::Cpu, Channel::Mem, Channel::MemBw, Channel::Net] {
        let v = l.get(c) + 0.01 * normal(rng);
        l.set(c, v);
    }
    l.clamp();
}

/// Simulates one node over a schedule, writing sensor rows into `matrix`
/// starting at `row_offset`.
#[allow(clippy::too_many_arguments)]
fn simulate_node(
    arch: ArchKind,
    runs: &[Run],
    samples: usize,
    node_id: u64,
    seed: u64,
    jitter: f64,
    matrix: &mut Matrix,
    row_offset: usize,
) {
    let mut model = arch.node_model();
    let mut rng = stream(seed, 1 + node_id);
    let n = model.n_sensors();
    let mut buf = vec![0.0; n];
    let mut t = 0usize;
    for run in runs {
        for off in 0..run.len {
            if t >= samples {
                break;
            }
            let mut l = payload_latent(run.payload, off, run.len, jitter);
            jitter_latent(&mut l, &mut rng);
            model.sample_into(&l, &mut rng, &mut buf);
            for (s, &v) in buf.iter().enumerate() {
                matrix.set(row_offset + s, t, v);
            }
            t += 1;
        }
    }
}

fn timestamps(samples: usize, interval_ms: u64) -> Vec<u64> {
    (0..samples as u64).map(|i| i * interval_ms).collect()
}

fn per_sample_labels(runs: &[Run], samples: usize, f: impl Fn(&Run) -> usize) -> Vec<usize> {
    let mut labels = vec![0usize; samples];
    for run in runs {
        for off in 0..run.len {
            let t = run.start + off;
            if t < samples {
                labels[t] = f(run);
            }
        }
    }
    labels
}

/// Builds the **Fault** segment: one 128-sensor testbed node running
/// applications under fault injection; labels are 0 (healthy) or the fault
/// class 1..=8.
pub fn fault_segment(cfg: SimConfig) -> Segment {
    let info = fault_info();
    let mut rng = stream(cfg.seed, 0);
    let sched = ScheduleConfig {
        min_run: 90,
        max_run: 200,
        idle_gap: 0,
        ..ScheduleConfig::new(cfg.samples)
    };
    let runs = fault_schedule(&sched, &mut rng);
    let arch = ArchKind::EthTestbed;
    let mut matrix = Matrix::zeros(arch.sensor_count(), cfg.samples);
    simulate_node(arch, &runs, cfg.samples, 0, cfg.seed, 0.0, &mut matrix, 0);
    difference_monotonic_rows(&mut matrix);
    let labels = per_sample_labels(&runs, cfg.samples, Run::fault_class);
    Segment::new(
        info.name,
        matrix,
        arch.node_model().sensor_names(),
        timestamps(cfg.samples, info.sampling_interval_ms),
        LabelTrack::Classes(labels),
    )
    .expect("fault segment construction")
}

/// Builds the **Application** segment: 16 Skylake nodes running the same
/// multi-node MPI job (with per-node phase skew); labels are the running
/// application (0 = idle).
pub fn application_segment(cfg: SimConfig) -> Segment {
    let info = application_info();
    let mut rng = stream(cfg.seed, 0);
    let runs = app_schedule(&ScheduleConfig::new(cfg.samples), &mut rng);
    let arch = ArchKind::Skylake;
    let nodes = info.nodes;
    let per = arch.sensor_count();
    let mut matrix = Matrix::zeros(nodes * per, cfg.samples);
    for node in 0..nodes {
        let jitter = node as f64 * 1.7;
        simulate_node(
            arch,
            &runs,
            cfg.samples,
            node as u64,
            cfg.seed,
            jitter,
            &mut matrix,
            node * per,
        );
    }
    difference_monotonic_rows(&mut matrix);
    let names: Vec<String> = (0..nodes)
        .flat_map(|n| {
            arch.node_model()
                .sensor_names()
                .into_iter()
                .map(move |s| format!("node{n:02}.{s}"))
        })
        .collect();
    let labels = per_sample_labels(&runs, cfg.samples, Run::app_class);
    Segment::new(
        info.name,
        matrix,
        names,
        timestamps(cfg.samples, info.sampling_interval_ms),
        LabelTrack::Classes(labels),
    )
    .expect("application segment construction")
}

/// Builds the **Power** segment: one CooLMUC-3 node with node- and
/// core-level sensors; the regression target is the node's outlet power
/// reading (the experiment predicts its average over the next 3 samples).
pub fn power_segment(cfg: SimConfig) -> Segment {
    let info = power_info();
    let mut rng = stream(cfg.seed, 0);
    // Paper: each application under *two* input configurations.
    const TWO: [crate::apps::InputConfig; 2] =
        [crate::apps::InputConfig(0), crate::apps::InputConfig(2)];
    let sched = ScheduleConfig {
        min_run: 150,
        max_run: 350,
        idle_gap: 30,
        configs: &TWO,
        ..ScheduleConfig::new(cfg.samples)
    };
    let runs = app_schedule(&sched, &mut rng);
    let arch = ArchKind::CoolmucPowerNode;
    let mut matrix = Matrix::zeros(arch.sensor_count(), cfg.samples);
    simulate_node(arch, &runs, cfg.samples, 0, cfg.seed, 0.0, &mut matrix, 0);
    difference_monotonic_rows(&mut matrix);
    let names = arch.node_model().sensor_names();
    let power_row = names
        .iter()
        .position(|n| n == "power_pkg_w")
        .expect("power sensor present");
    let targets: Vec<f64> = matrix.row(power_row).to_vec();
    Segment::new(
        info.name,
        matrix,
        names,
        timestamps(cfg.samples, info.sampling_interval_ms),
        LabelTrack::Values(targets),
    )
    .expect("power segment construction")
}

/// Builds the **Infrastructure** segment: rack-level cooling and power
/// sensors driven by a slowly varying aggregate load (148 nodes' worth of
/// jobs) and a diurnal ambient condition. The regression target is the heat
/// removed by the cooling loop, `Q[kW] = ṁ · c_p · ΔT`, derived from the
/// flow and temperature sensors exactly as facility engineers compute it.
pub fn infrastructure_segment(cfg: SimConfig) -> Segment {
    let info = infrastructure_info();
    let arch = ArchKind::InfraRack;
    let mut model = arch.node_model();
    let mut rng = stream(cfg.seed, 0);
    let n = model.n_sensors();
    let mut matrix = Matrix::zeros(n, cfg.samples);
    let mut buf = vec![0.0; n];

    // Aggregate utilization: mean-reverting around a setpoint that jumps
    // every few hundred samples (job mix changes on the rack).
    let mut util = 0.6f64;
    let mut setpoint = 0.6f64;
    for t in 0..cfg.samples {
        if t % 400 == 0 {
            setpoint = rng.gen_range(0.25..0.95);
        }
        util += 0.05 * (setpoint - util) + 0.02 * normal(&mut rng);
        util = util.clamp(0.0, 1.0);
        // Diurnal ambient swing (period ~ 8640 samples = 1 day at 10s).
        let diurnal = 0.5 + 0.3 * (t as f64 * std::f64::consts::TAU / 8640.0).sin();
        let mut l = Latent::idle();
        l.set(Channel::Cpu, util);
        l.set(Channel::MemBw, 0.6 * util);
        l.set(Channel::Ambient, diurnal + 0.02 * normal(&mut rng));
        l.clamp();
        model.sample_into(&l, &mut rng, &mut buf);
        for (s, &v) in buf.iter().enumerate() {
            matrix.set(s, t, v);
        }
    }
    difference_monotonic_rows(&mut matrix);
    let names = model.sensor_names();
    let flow = names.iter().position(|s| s == "water_flow_lpm").unwrap();
    let t_in = names.iter().position(|s| s == "water_inlet_c").unwrap();
    let t_out = names.iter().position(|s| s == "water_outlet_c").unwrap();
    // Q[kW] = (lpm / 60)[kg/s] * 4.186[kJ/kgK] * ΔT[K]
    let targets: Vec<f64> = (0..cfg.samples)
        .map(|t| {
            let dt = (matrix.get(t_out, t) - matrix.get(t_in, t)).max(0.0);
            matrix.get(flow, t) / 60.0 * 4.186 * dt
        })
        .collect();
    Segment::new(
        info.name,
        matrix,
        names,
        timestamps(cfg.samples, info.sampling_interval_ms),
        LabelTrack::Values(targets),
    )
    .expect("infrastructure segment construction")
}

/// Builds the **Cross-Architecture** segments: one per architecture
/// (Skylake 52 sensors, Knights Landing 46, Rome 39), each running the six
/// applications in single-node OpenMP mode with the *same* label space.
pub fn cross_arch_segments(cfg: SimConfig) -> Vec<(ArchKind, Segment)> {
    let info = cross_arch_info();
    let archs = [ArchKind::Skylake, ArchKind::KnightsLanding, ArchKind::Rome];
    archs
        .iter()
        .enumerate()
        .map(|(i, &arch)| {
            // Independent schedules per node: runs are not synchronized
            // across architectures (separate OpenMP jobs).
            let mut rng = stream(cfg.seed, 100 + i as u64);
            let runs = app_schedule(&ScheduleConfig::new(cfg.samples), &mut rng);
            let mut matrix = Matrix::zeros(arch.sensor_count(), cfg.samples);
            simulate_node(
                arch,
                &runs,
                cfg.samples,
                i as u64,
                cfg.seed.wrapping_add(7 * i as u64),
                0.0,
                &mut matrix,
                0,
            );
            difference_monotonic_rows(&mut matrix);
            let labels = per_sample_labels(&runs, cfg.samples, Run::app_class);
            let seg = Segment::new(
                format!("{} ({})", info.name, arch.name()),
                matrix,
                arch.node_model().sensor_names(),
                timestamps(cfg.samples, info.sampling_interval_ms),
                LabelTrack::Classes(labels),
            )
            .expect("cross-arch segment construction");
            (arch, seg)
        })
        .collect()
}

/// Metadata for the GPU segment (an extension beyond the paper's Table I,
/// covering its "accelerator sensor data" future-work item).
pub fn gpu_info() -> SegmentInfo {
    SegmentInfo {
        name: "GPU",
        system: "Accelerator testbed",
        nodes: 1,
        sensors_per_node: crate::gpu::GPU_NODE_SENSORS,
        sampling_interval_ms: 1000,
        wl: 30,
        ws: 5,
        horizon: 0,
        task: TaskKind::Classification,
        default_samples: 3000,
    }
}

/// Builds the **GPU** segment: one accelerator node (4 GPUs, 76 sensors)
/// running GPU builds of the six applications; labels are the running
/// application (0 = idle). Extends the paper per its Sec. V future work.
pub fn gpu_segment(cfg: SimConfig) -> Segment {
    let info = gpu_info();
    let mut sched_rng = stream(cfg.seed, 0);
    let runs = app_schedule(&ScheduleConfig::new(cfg.samples), &mut sched_rng);
    let mut model = crate::gpu::gpu_node_model();
    let n = model.n_sensors();
    let mut matrix = Matrix::zeros(n, cfg.samples);
    let mut rng = stream(cfg.seed, 1);
    let mut buf = vec![0.0; n];
    let mut t = 0usize;
    for run in &runs {
        for off in 0..run.len {
            if t >= cfg.samples {
                break;
            }
            let mut l = match run.payload {
                RunPayload::Idle => crate::gpu::gpu_latent_at(
                    AppKind::Idle,
                    crate::apps::InputConfig(0),
                    off,
                    run.len,
                    0.0,
                ),
                RunPayload::App { app, config } => {
                    crate::gpu::gpu_latent_at(app, config, off, run.len, 0.0)
                }
                RunPayload::Faulted { .. } => unreachable!("no faults in app schedules"),
            };
            jitter_latent(&mut l, &mut rng);
            model.sample_into(&l, &mut rng, &mut buf);
            for (s, &v) in buf.iter().enumerate() {
                matrix.set(s, t, v);
            }
            t += 1;
        }
    }
    difference_monotonic_rows(&mut matrix);
    let labels = per_sample_labels(&runs, cfg.samples, Run::app_class);
    Segment::new(
        info.name,
        matrix,
        model.sensor_names(),
        timestamps(cfg.samples, info.sampling_interval_ms),
        LabelTrack::Classes(labels),
    )
    .expect("gpu segment construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: usize = 900;

    #[test]
    fn fault_segment_shape_and_classes() {
        let seg = fault_segment(SimConfig::new(1, SMALL));
        assert_eq!(seg.sensors(), 128);
        assert_eq!(seg.samples(), SMALL);
        assert_eq!(seg.task(), TaskKind::Classification);
        assert!(seg.n_classes() >= 2);
        assert!(!seg.matrix.has_non_finite());
    }

    #[test]
    fn application_segment_is_multi_node() {
        let seg = application_segment(SimConfig::new(2, SMALL));
        assert_eq!(seg.sensors(), 16 * 52);
        assert_eq!(seg.sensor_names.len(), 832);
        assert!(seg.sensor_names[0].starts_with("node00."));
        assert!(seg.sensor_names[831].starts_with("node15."));
        assert!(!seg.matrix.has_non_finite());
    }

    #[test]
    fn power_segment_targets_track_power_sensor() {
        let seg = power_segment(SimConfig::new(3, SMALL));
        assert_eq!(seg.sensors(), 47);
        assert_eq!(seg.task(), TaskKind::Regression);
        let LabelTrack::Values(targets) = &seg.labels else {
            panic!("regression labels expected")
        };
        // busy and idle phases must produce a visible power range
        let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 50.0, "power range too small: {lo}..{hi}");
    }

    #[test]
    fn infrastructure_heat_is_physical() {
        let seg = infrastructure_segment(SimConfig::new(4, SMALL));
        assert_eq!(seg.sensors(), 31);
        let LabelTrack::Values(targets) = &seg.labels else {
            panic!("regression labels expected")
        };
        assert!(targets.iter().all(|&q| (0.0..500.0).contains(&q)));
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi > 5.0, "no heat ever removed? max={hi}");
    }

    #[test]
    fn cross_arch_sensor_counts_differ() {
        let segs = cross_arch_segments(SimConfig::new(5, SMALL));
        let counts: Vec<usize> = segs.iter().map(|(_, s)| s.sensors()).collect();
        assert_eq!(counts, vec![52, 46, 39]);
        for (_, seg) in &segs {
            assert_eq!(seg.task(), TaskKind::Classification);
            assert!(!seg.matrix.has_non_finite());
        }
    }

    #[test]
    fn gpu_segment_shape_and_device_correlations() {
        use cwsmooth_linalg::corr::pearson;
        let seg = gpu_segment(SimConfig::new(8, SMALL));
        assert_eq!(seg.sensors(), crate::gpu::GPU_NODE_SENSORS);
        assert_eq!(seg.task(), TaskKind::Classification);
        assert!(!seg.matrix.has_non_finite());
        // GPU sensors of different devices correlate (same workload)...
        let names = &seg.sensor_names;
        let g0 = names.iter().position(|s| s == "gpu0_sm_util_pct").unwrap();
        let g3 = names.iter().position(|s| s == "gpu3_sm_util_pct").unwrap();
        assert!(pearson(seg.matrix.row(g0), seg.matrix.row(g3)) > 0.9);
        // ...and GPU power tracks GPU utilization.
        let p0 = names.iter().position(|s| s == "gpu0_power_w").unwrap();
        assert!(pearson(seg.matrix.row(g0), seg.matrix.row(p0)) > 0.8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = fault_segment(SimConfig::new(9, 400));
        let b = fault_segment(SimConfig::new(9, 400));
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.labels, b.labels);
        let c = fault_segment(SimConfig::new(10, 400));
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn correlated_sensor_structure_exists() {
        // CS's premise: utilization-family sensors correlate strongly and
        // idle% anti-correlates.
        use cwsmooth_linalg::corr::pearson;
        let seg = power_segment(SimConfig::new(6, SMALL));
        let names = &seg.sensor_names;
        let user = names.iter().position(|n| n == "cpu_user_pct").unwrap();
        let load = names.iter().position(|n| n == "load_1").unwrap();
        let idle = names.iter().position(|n| n == "cpu_idle_pct").unwrap();
        let power = names.iter().position(|n| n == "power_pkg_w").unwrap();
        let c_user_load = pearson(seg.matrix.row(user), seg.matrix.row(load));
        let c_user_idle = pearson(seg.matrix.row(user), seg.matrix.row(idle));
        let c_user_power = pearson(seg.matrix.row(user), seg.matrix.row(power));
        assert!(c_user_load > 0.9, "user/load corr {c_user_load}");
        assert!(c_user_idle < -0.9, "user/idle corr {c_user_idle}");
        assert!(c_user_power > 0.7, "user/power corr {c_user_power}");
    }

    #[test]
    fn info_feature_set_counts() {
        let info = application_info();
        assert_eq!(info.window_spec().count(3500), info.feature_sets(3500));
        let p = power_info();
        // regression drops the horizon tail
        assert!(p.feature_sets(6000) < p.window_spec().count(6000));
        assert_eq!(all_infos().len(), 5);
    }

    #[test]
    fn monotonic_counters_are_differenced() {
        use cwsmooth_data::transform::is_monotonic_counter;
        let seg = application_segment(SimConfig::new(7, 600));
        for (i, name) in seg.sensor_names.iter().enumerate() {
            if name.ends_with("energy_consumed_j") {
                assert!(
                    !is_monotonic_counter(seg.matrix.row(i)),
                    "{name} still monotonic"
                );
            }
        }
    }
}
