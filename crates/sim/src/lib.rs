//! HPC monitoring-data simulator: the workspace's stand-in for HPC-ODA.
//!
//! The paper evaluates on HPC-ODA, a collection of five monitoring datasets
//! captured on real HPC systems (Sec. II). Those traces are not
//! redistributable here, so this crate implements a physically motivated
//! generator reproducing the *structural* properties the CS method relies
//! on: groups of sensors strongly correlated through shared workload
//! activity, near-constant or noisy sensors, anti-correlated counterparts
//! (idle vs. utilization), per-application temporal patterns (iterative
//! kernels, init phases, memory ramps, frequency oscillation), fault
//! perturbations, and physical models for node power and rack-level heat
//! removal.
//!
//! Module map:
//!
//! * [`channels`] — the latent activity state (CPU, memory, bandwidth, I/O,
//!   network, frequency, ...) that drives every sensor.
//! * [`apps`] — six application models (AMG, Kripke, Linpack, Quicksilver,
//!   LAMMPS, Nekbone) with three input configurations each, plus idle.
//! * [`faults`] — eight injectable fault models with two settings each,
//!   mirroring the Antarex fault dataset behind HPC-ODA's Fault segment.
//! * [`sensors`] — sensor response functions mapping latent state to
//!   readings (with noise, saturation, and monotonic energy counters).
//! * [`arch`] — per-architecture sensor sets: Intel Skylake (52), Knights
//!   Landing (46), AMD Rome (39), the ETH testbed node (128) and the
//!   infrastructure rack (31), matching Table I.
//! * [`schedule`] — run scheduling (application/fault sequences).
//! * [`segments`] — builders for the five HPC-ODA-like segments plus their
//!   Table I metadata.
//! * [`fleet`] — a many-node rack/island scenario (phase-shifted
//!   workloads, rack-correlated thermals, injected telemetry gaps) feeding
//!   the fleet-scale streaming engine.
//!
//! All generation is deterministic given a seed.

#![warn(missing_docs)]

pub mod apps;
pub mod arch;
pub mod channels;
pub mod faults;
pub mod fleet;
pub mod gpu;
pub mod rng;
pub mod schedule;
pub mod segments;
pub mod sensors;

pub use arch::ArchKind;
pub use fleet::{FleetScenario, FleetSimConfig};
pub use segments::{SegmentInfo, SimConfig};
