//! Per-architecture sensor sets.
//!
//! HPC-ODA's nodes expose different sensor counts per architecture
//! (Table I / Sec. IV-F): the SuperMUC-NG Intel Skylake node has 52
//! compute-node-level sensors, the CooLMUC-3 Knights Landing node 46, and
//! the BEAST AMD Rome node 39. The ETH testbed node behind the Fault
//! segment exposes 128 sensors (node-level plus per-core counters), the
//! Power segment node 47 (node + CPU-core level), and the Infrastructure
//! rack 31 (cooling and power distribution). The builders here reproduce
//! those counts exactly, with physically motivated response functions.

use crate::channels::Channel;
use crate::sensors::{NodeModel, SensorSpec, Term};

/// The simulated system/architecture variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Intel Skylake (SuperMUC-NG): 52 node-level sensors.
    Skylake,
    /// Intel Knights Landing (CooLMUC-3): 46 node-level sensors.
    KnightsLanding,
    /// AMD Rome (BEAST testbed): 39 node-level sensors.
    Rome,
    /// ETH testbed Xeon node (Fault segment): 128 sensors incl. per-core.
    EthTestbed,
    /// CooLMUC-3 node with node- and core-level data (Power segment): 47.
    CoolmucPowerNode,
    /// CooLMUC-3 rack infrastructure (cooling + power): 31 sensors.
    InfraRack,
}

impl ArchKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Skylake => "Intel Skylake (SuperMUC-NG)",
            ArchKind::KnightsLanding => "Intel Knights Landing (CooLMUC-3)",
            ArchKind::Rome => "AMD Rome (BEAST)",
            ArchKind::EthTestbed => "ETH Testbed Xeon",
            ArchKind::CoolmucPowerNode => "CooLMUC-3 power node",
            ArchKind::InfraRack => "CooLMUC-3 rack infrastructure",
        }
    }

    /// Expected sensor count (Table I).
    pub fn sensor_count(self) -> usize {
        match self {
            ArchKind::Skylake => 52,
            ArchKind::KnightsLanding => 46,
            ArchKind::Rome => 39,
            ArchKind::EthTestbed => 128,
            ArchKind::CoolmucPowerNode => 47,
            ArchKind::InfraRack => 31,
        }
    }

    /// Builds the node model for this architecture.
    pub fn node_model(self) -> NodeModel {
        let specs = match self {
            ArchKind::Skylake => skylake_sensors(),
            ArchKind::KnightsLanding => knl_sensors(),
            ArchKind::Rome => rome_sensors(),
            ArchKind::EthTestbed => testbed_sensors(),
            ArchKind::CoolmucPowerNode => power_node_sensors(),
            ArchKind::InfraRack => infra_rack_sensors(),
        };
        debug_assert_eq!(specs.len(), self.sensor_count());
        NodeModel::new(specs)
    }
}

use Channel::*;

/// The ~32 node-level sensors every compute architecture shares: OS and
/// `proc`-style metrics, perfevent-style counters, power and thermals.
fn common_node_sensors(tdp_w: f64, mem_gb: f64, nominal_mhz: f64) -> Vec<SensorSpec> {
    vec![
        SensorSpec::gauge(
            "cpu_user_pct",
            0.0,
            vec![Term::lin(92.0, Cpu)],
            1.2,
            Some((0.0, 100.0)),
        ),
        SensorSpec::gauge(
            "cpu_sys_pct",
            0.5,
            vec![
                Term::lin(6.0, Cpu),
                Term::lin(18.0, Sched),
                Term::lin(12.0, Io),
            ],
            0.8,
            Some((0.0, 100.0)),
        ),
        SensorSpec::gauge(
            "cpu_idle_pct",
            100.0,
            vec![Term::lin(-95.0, Cpu)],
            1.2,
            Some((0.0, 100.0)),
        ),
        SensorSpec::gauge(
            "cpu_iowait_pct",
            0.2,
            vec![Term::lin(35.0, Io)],
            0.5,
            Some((0.0, 100.0)),
        ),
        SensorSpec::gauge(
            "load_1",
            0.1,
            vec![Term::lin(60.0, Cpu), Term::lin(8.0, Io)],
            1.0,
            Some((0.0, 128.0)),
        ),
        SensorSpec::gauge(
            "load_5",
            0.1,
            vec![Term::lin(55.0, Cpu), Term::lin(6.0, Io)],
            0.6,
            Some((0.0, 128.0)),
        ),
        SensorSpec::gauge(
            "load_15",
            0.1,
            vec![Term::lin(50.0, Cpu), Term::lin(4.0, Io)],
            0.4,
            Some((0.0, 128.0)),
        ),
        SensorSpec::gauge(
            "instructions_g",
            0.0,
            vec![Term::prod(45.0, Cpu, Freq)],
            0.8,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "cycles_g",
            0.0,
            vec![Term::prod(38.0, Cpu, Freq)],
            0.6,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "cache_misses_m",
            0.3,
            vec![Term::lin(60.0, Cache), Term::lin(25.0, MemBw)],
            1.0,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "cache_refs_m",
            1.0,
            vec![Term::lin(80.0, MemBw), Term::lin(40.0, Cpu)],
            1.5,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "branch_misses_m",
            0.1,
            vec![Term::lin(12.0, Cpu), Term::lin(6.0, Sched)],
            0.3,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "mem_used_gb",
            2.0,
            vec![Term::lin(mem_gb * 0.9, Mem)],
            0.3,
            Some((0.0, mem_gb)),
        ),
        SensorSpec::gauge(
            "mem_free_gb",
            mem_gb - 2.0,
            vec![Term::lin(-mem_gb * 0.9, Mem)],
            0.3,
            Some((0.0, mem_gb)),
        ),
        SensorSpec::gauge(
            "mem_cached_gb",
            1.0,
            vec![Term::lin(mem_gb * 0.15, Mem), Term::lin(mem_gb * 0.1, Io)],
            0.2,
            Some((0.0, mem_gb)),
        ),
        SensorSpec::gauge(
            "page_faults_k",
            0.2,
            vec![Term::lin(90.0, PageFault), Term::lin(4.0, Mem)],
            0.5,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "swap_used_gb",
            0.0,
            vec![Term::lin(3.0, PageFault)],
            0.05,
            Some((0.0, 16.0)),
        ),
        SensorSpec::gauge(
            "membw_read_gbs",
            0.2,
            vec![Term::lin(70.0, MemBw)],
            1.0,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "membw_write_gbs",
            0.1,
            vec![Term::lin(42.0, MemBw)],
            0.7,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "io_read_mbs",
            0.1,
            vec![Term::lin(300.0, Io)],
            2.0,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "io_write_mbs",
            0.1,
            vec![Term::lin(220.0, Io)],
            1.5,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "net_rx_mbs",
            0.2,
            vec![Term::lin(900.0, Net)],
            4.0,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "net_tx_mbs",
            0.2,
            vec![Term::lin(750.0, Net)],
            3.5,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "net_retrans_k",
            0.05,
            vec![Term::prod(20.0, Sched, Net), Term::lin(1.5, Sched)],
            0.2,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "ctx_switches_k",
            1.0,
            vec![Term::lin(55.0, Sched), Term::lin(10.0, Cpu)],
            1.0,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "interrupts_k",
            1.5,
            vec![
                Term::lin(25.0, Cpu),
                Term::lin(20.0, Sched),
                Term::lin(15.0, Io),
            ],
            0.8,
            Some((0.0, f64::MAX)),
        ),
        SensorSpec::gauge(
            "power_pkg_w",
            tdp_w * 0.25,
            vec![
                Term::prod(tdp_w * 0.65, Cpu, Freq),
                Term::lin(tdp_w * 0.15, MemBw),
            ],
            tdp_w * 0.01,
            Some((0.0, tdp_w * 1.3)),
        ),
        SensorSpec::gauge(
            "power_dram_w",
            6.0,
            vec![Term::lin(28.0, MemBw), Term::lin(8.0, Mem)],
            0.4,
            Some((0.0, 60.0)),
        ),
        SensorSpec::gauge(
            "temp_cpu_c",
            34.0,
            vec![Term::prod(42.0, Cpu, Freq), Term::lin(6.0, Ambient)],
            0.5,
            Some((15.0, 105.0)),
        ),
        SensorSpec::gauge(
            "temp_board_c",
            26.0,
            vec![Term::lin(9.0, Cpu), Term::lin(8.0, Ambient)],
            0.3,
            Some((10.0, 85.0)),
        ),
        SensorSpec::gauge(
            "freq_avg_mhz",
            0.0,
            vec![Term::lin(nominal_mhz, Freq)],
            nominal_mhz * 0.005,
            Some((0.0, nominal_mhz * 1.6)),
        ),
        SensorSpec::counter(
            "energy_consumed_j",
            tdp_w * 0.25,
            vec![
                Term::prod(tdp_w * 0.65, Cpu, Freq),
                Term::lin(tdp_w * 0.15, MemBw),
            ],
            tdp_w * 0.005,
        ),
    ]
}

/// Intel Skylake (2-socket): 32 common + 20 socket/uncore extras = 52.
fn skylake_sensors() -> Vec<SensorSpec> {
    let mut s = common_node_sensors(205.0, 96.0, 2700.0);
    for socket in 0..2 {
        s.push(SensorSpec::gauge(
            format!("skx_s{socket}_pkg_power_w"),
            50.0,
            vec![Term::prod(130.0, Cpu, Freq)],
            1.5,
            Some((0.0, 260.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("skx_s{socket}_temp_c"),
            33.0,
            vec![Term::prod(40.0, Cpu, Freq), Term::lin(5.0, Ambient)],
            0.5,
            Some((15.0, 100.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("skx_s{socket}_uncore_mhz"),
            1200.0,
            vec![Term::lin(1200.0, MemBw)],
            15.0,
            Some((800.0, 2600.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("skx_s{socket}_upi_gbs"),
            0.3,
            vec![Term::lin(22.0, Net), Term::lin(14.0, MemBw)],
            0.4,
            Some((0.0, 42.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("skx_s{socket}_llc_occ_mb"),
            2.0,
            vec![Term::lin(24.0, Cache), Term::lin(8.0, Mem)],
            0.5,
            Some((0.0, 39.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("skx_s{socket}_turbo_pct"),
            2.0,
            vec![Term::prod(70.0, Cpu, Freq)],
            1.5,
            Some((0.0, 100.0)),
        ));
    }
    // 12 socket extras so far; 8 more node-level Skylake-specific sensors.
    s.push(SensorSpec::gauge(
        "skx_avx_ratio",
        0.02,
        vec![Term::lin(0.7, Cpu)],
        0.01,
        Some((0.0, 1.0)),
    ));
    s.push(SensorSpec::gauge(
        "skx_c6_residency_pct",
        70.0,
        vec![Term::lin(-68.0, Cpu)],
        1.0,
        Some((0.0, 100.0)),
    ));
    s.push(SensorSpec::gauge(
        "skx_dram_rd_gbs",
        0.2,
        vec![Term::lin(55.0, MemBw)],
        0.8,
        Some((0.0, 128.0)),
    ));
    s.push(SensorSpec::gauge(
        "skx_dram_wr_gbs",
        0.1,
        vec![Term::lin(33.0, MemBw)],
        0.6,
        Some((0.0, 128.0)),
    ));
    s.push(SensorSpec::gauge(
        "skx_itlb_misses_m",
        0.05,
        vec![Term::lin(4.0, Cpu), Term::lin(3.0, PageFault)],
        0.1,
        Some((0.0, f64::MAX)),
    ));
    s.push(SensorSpec::gauge(
        "skx_dtlb_misses_m",
        0.1,
        vec![Term::lin(6.0, Mem), Term::lin(5.0, PageFault)],
        0.15,
        Some((0.0, f64::MAX)),
    ));
    s.push(SensorSpec::gauge(
        "skx_psu_in_w",
        120.0,
        vec![Term::prod(300.0, Cpu, Freq), Term::lin(60.0, MemBw)],
        3.0,
        Some((0.0, 700.0)),
    ));
    s.push(SensorSpec::gauge(
        "skx_vr_temp_c",
        30.0,
        vec![Term::prod(30.0, Cpu, Freq)],
        0.5,
        Some((15.0, 95.0)),
    ));
    s
}

/// Intel Knights Landing: 32 common + 14 many-core/MCDRAM extras = 46.
fn knl_sensors() -> Vec<SensorSpec> {
    let mut s = common_node_sensors(215.0, 96.0, 1300.0);
    s.push(SensorSpec::gauge(
        "knl_mcdram_rd_gbs",
        0.3,
        vec![Term::lin(300.0, MemBw)],
        4.0,
        Some((0.0, 450.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_mcdram_wr_gbs",
        0.2,
        vec![Term::lin(180.0, MemBw)],
        3.0,
        Some((0.0, 450.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_mcdram_occ_gb",
        0.5,
        vec![Term::lin(14.0, Mem)],
        0.2,
        Some((0.0, 16.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_mesh_gbs",
        0.5,
        vec![Term::lin(60.0, MemBw), Term::lin(25.0, Cpu)],
        1.0,
        Some((0.0, 120.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_edc_power_w",
        8.0,
        vec![Term::lin(30.0, MemBw)],
        0.5,
        Some((0.0, 50.0)),
    ));
    for tile in 0..4 {
        s.push(SensorSpec::gauge(
            format!("knl_tile{tile}_temp_c"),
            32.0,
            vec![Term::prod(38.0, Cpu, Freq), Term::lin(4.0, Ambient)],
            0.6,
            Some((15.0, 100.0)),
        ));
    }
    s.push(SensorSpec::gauge(
        "knl_vpu_ratio",
        0.05,
        vec![Term::lin(0.8, Cpu)],
        0.02,
        Some((0.0, 1.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_pcu_power_w",
        20.0,
        vec![Term::prod(160.0, Cpu, Freq)],
        1.5,
        Some((0.0, 260.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_ddr_rd_gbs",
        0.2,
        vec![Term::lin(45.0, MemBw)],
        0.8,
        Some((0.0, 90.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_ddr_wr_gbs",
        0.1,
        vec![Term::lin(27.0, MemBw)],
        0.5,
        Some((0.0, 90.0)),
    ));
    s.push(SensorSpec::gauge(
        "knl_snc_imbalance",
        0.02,
        vec![Term::lin(0.3, Sched)],
        0.01,
        Some((0.0, 1.0)),
    ));
    s
}

/// AMD Rome: 32 common + 7 CCD/fabric extras = 39.
fn rome_sensors() -> Vec<SensorSpec> {
    let mut s = common_node_sensors(225.0, 256.0, 2250.0);
    for ccd in 0..4 {
        s.push(SensorSpec::gauge(
            format!("rome_ccd{ccd}_temp_c"),
            31.0,
            vec![Term::prod(41.0, Cpu, Freq), Term::lin(4.0, Ambient)],
            0.6,
            Some((15.0, 100.0)),
        ));
    }
    s.push(SensorSpec::gauge(
        "rome_fabric_gbs",
        0.4,
        vec![Term::lin(48.0, MemBw), Term::lin(20.0, Net)],
        0.9,
        Some((0.0, 100.0)),
    ));
    s.push(SensorSpec::gauge(
        "rome_smu_power_w",
        15.0,
        vec![Term::prod(180.0, Cpu, Freq), Term::lin(35.0, MemBw)],
        1.8,
        Some((0.0, 280.0)),
    ));
    s.push(SensorSpec::gauge(
        "rome_boost_mhz",
        0.0,
        vec![Term::lin(3400.0, Freq)],
        20.0,
        Some((0.0, 3600.0)),
    ));
    s
}

/// ETH testbed node: 32 common + 8 cores x 12 per-core counters = 128.
fn testbed_sensors() -> Vec<SensorSpec> {
    let mut s = common_node_sensors(145.0, 32.0, 2100.0);
    for core in 0..8 {
        // Slight per-core asymmetry so cores are not clones of each other.
        let k = 1.0 - 0.03 * core as f64;
        s.push(SensorSpec::gauge(
            format!("core{core}_util_pct"),
            0.0,
            vec![Term::lin(95.0 * k, Cpu)],
            1.5,
            Some((0.0, 100.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_instr_g"),
            0.0,
            vec![Term::prod(6.0 * k, Cpu, Freq)],
            0.15,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_cycles_g"),
            0.0,
            vec![Term::prod(5.0 * k, Cpu, Freq)],
            0.1,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_l1_miss_m"),
            0.05,
            vec![Term::lin(9.0 * k, Cache), Term::lin(3.0, MemBw)],
            0.2,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_l2_miss_m"),
            0.03,
            vec![Term::lin(7.0 * k, Cache), Term::lin(2.5, MemBw)],
            0.15,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_llc_miss_m"),
            0.02,
            vec![Term::lin(6.0 * k, Cache), Term::lin(3.5, MemBw)],
            0.12,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_branch_miss_m"),
            0.01,
            vec![Term::lin(1.5 * k, Cpu), Term::lin(0.8, Sched)],
            0.05,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_freq_mhz"),
            0.0,
            vec![Term::lin(2100.0 * k, Freq)],
            12.0,
            Some((0.0, 3400.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_temp_c"),
            33.0,
            vec![Term::prod(39.0 * k, Cpu, Freq), Term::lin(4.0, Ambient)],
            0.6,
            Some((15.0, 100.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_ctx_k"),
            0.1,
            vec![Term::lin(8.0 * k, Sched)],
            0.2,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_pfault_k"),
            0.02,
            vec![Term::lin(12.0 * k, PageFault), Term::lin(0.5, Mem)],
            0.1,
            Some((0.0, f64::MAX)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_tlb_miss_m"),
            0.02,
            vec![Term::lin(2.0 * k, PageFault), Term::lin(1.0, Mem)],
            0.08,
            Some((0.0, f64::MAX)),
        ));
    }
    s
}

/// CooLMUC-3 power node: 32 common + 5 cores x 3 core-level = 47.
fn power_node_sensors() -> Vec<SensorSpec> {
    let mut s = common_node_sensors(215.0, 96.0, 1300.0);
    for core in 0..5 {
        let k = 1.0 - 0.02 * core as f64;
        s.push(SensorSpec::gauge(
            format!("core{core}_util_pct"),
            0.0,
            vec![Term::lin(94.0 * k, Cpu)],
            1.4,
            Some((0.0, 100.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_freq_mhz"),
            0.0,
            vec![Term::lin(1300.0 * k, Freq)],
            8.0,
            Some((0.0, 1600.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("core{core}_temp_c"),
            32.0,
            vec![Term::prod(36.0 * k, Cpu, Freq), Term::lin(4.0, Ambient)],
            0.5,
            Some((15.0, 100.0)),
        ));
    }
    s
}

/// CooLMUC-3 rack: 7 rack-level + 6 chassis x 4 = 31 cooling/power sensors.
///
/// For the rack, [`Channel::Cpu`] carries the *aggregate* rack utilization
/// and [`Channel::Ambient`] the facility condition; heat transport responds
/// with first-order physics: outlet temperature and flow track rack power.
fn infra_rack_sensors() -> Vec<SensorSpec> {
    let mut s = vec![
        SensorSpec::gauge(
            "rack_power_kw",
            8.0,
            vec![Term::prod(38.0, Cpu, Freq), Term::lin(6.0, MemBw)],
            0.3,
            Some((0.0, 60.0)),
        ),
        SensorSpec::gauge(
            "water_inlet_c",
            38.0,
            vec![Term::lin(4.0, Ambient)],
            0.15,
            Some((20.0, 55.0)),
        ),
        SensorSpec::gauge(
            "water_outlet_c",
            40.0,
            vec![
                Term::prod(9.0, Cpu, Freq),
                Term::lin(4.0, Ambient),
                Term::lin(1.5, MemBw),
            ],
            0.2,
            Some((20.0, 65.0)),
        ),
        SensorSpec::gauge(
            "water_flow_lpm",
            110.0,
            vec![Term::lin(35.0, Cpu)],
            1.0,
            Some((40.0, 220.0)),
        ),
        SensorSpec::gauge(
            "pump_power_kw",
            0.8,
            vec![Term::lin(0.9, Cpu)],
            0.03,
            Some((0.0, 4.0)),
        ),
        SensorSpec::gauge(
            "pdu_current_a",
            18.0,
            vec![Term::prod(85.0, Cpu, Freq)],
            0.8,
            Some((0.0, 160.0)),
        ),
        SensorSpec::gauge(
            "ambient_temp_c",
            22.0,
            vec![Term::lin(8.0, Ambient)],
            0.2,
            Some((10.0, 45.0)),
        ),
    ];
    for ch in 0..6 {
        let k = 1.0 - 0.04 * ch as f64;
        s.push(SensorSpec::gauge(
            format!("chassis{ch}_power_kw"),
            1.2,
            vec![Term::prod(6.2 * k, Cpu, Freq), Term::lin(1.0, MemBw)],
            0.08,
            Some((0.0, 12.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("chassis{ch}_inlet_c"),
            38.0,
            vec![Term::lin(3.8 * k, Ambient)],
            0.15,
            Some((20.0, 55.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("chassis{ch}_outlet_c"),
            40.0,
            vec![Term::prod(8.5 * k, Cpu, Freq), Term::lin(3.8, Ambient)],
            0.2,
            Some((20.0, 65.0)),
        ));
        s.push(SensorSpec::gauge(
            format!("chassis{ch}_temp_c"),
            30.0,
            vec![Term::prod(12.0 * k, Cpu, Freq), Term::lin(3.0, Ambient)],
            0.3,
            Some((15.0, 80.0)),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::Latent;
    use crate::rng::stream;
    use std::collections::HashSet;

    #[test]
    fn sensor_counts_match_table_one() {
        for (arch, expect) in [
            (ArchKind::Skylake, 52),
            (ArchKind::KnightsLanding, 46),
            (ArchKind::Rome, 39),
            (ArchKind::EthTestbed, 128),
            (ArchKind::CoolmucPowerNode, 47),
            (ArchKind::InfraRack, 31),
        ] {
            let model = arch.node_model();
            assert_eq!(model.n_sensors(), expect, "{arch:?}");
            assert_eq!(arch.sensor_count(), expect);
        }
    }

    #[test]
    fn sensor_names_are_unique() {
        for arch in [
            ArchKind::Skylake,
            ArchKind::KnightsLanding,
            ArchKind::Rome,
            ArchKind::EthTestbed,
            ArchKind::CoolmucPowerNode,
            ArchKind::InfraRack,
        ] {
            let names = arch.node_model().sensor_names();
            let set: HashSet<&String> = names.iter().collect();
            assert_eq!(set.len(), names.len(), "{arch:?} has duplicate names");
        }
    }

    #[test]
    fn all_architectures_sample_finite_values() {
        let mut l = Latent::idle();
        l.set(Channel::Cpu, 0.7);
        l.set(Channel::MemBw, 0.5);
        l.set(Channel::Mem, 0.6);
        for arch in [
            ArchKind::Skylake,
            ArchKind::KnightsLanding,
            ArchKind::Rome,
            ArchKind::EthTestbed,
            ArchKind::CoolmucPowerNode,
            ArchKind::InfraRack,
        ] {
            let mut model = arch.node_model();
            let mut rng = stream(11, 0);
            let mut out = vec![0.0; model.n_sensors()];
            for _ in 0..5 {
                model.sample_into(&l, &mut rng, &mut out);
                assert!(out.iter().all(|v| v.is_finite()), "{arch:?}");
            }
        }
    }

    #[test]
    fn idle_vs_busy_separate_in_util_and_power() {
        let mut model = ArchKind::Skylake.node_model();
        let names = model.sensor_names();
        let util = names.iter().position(|n| n == "cpu_user_pct").unwrap();
        let idle_ix = names.iter().position(|n| n == "cpu_idle_pct").unwrap();
        let power = names.iter().position(|n| n == "power_pkg_w").unwrap();
        let mut rng = stream(2, 0);
        let mut out = vec![0.0; model.n_sensors()];

        let idle = Latent::idle();
        model.sample_into(&idle, &mut rng, &mut out);
        let (u0, i0, p0) = (out[util], out[idle_ix], out[power]);

        let mut busy = Latent::idle();
        busy.set(Channel::Cpu, 0.95);
        busy.set(Channel::MemBw, 0.7);
        model.sample_into(&busy, &mut rng, &mut out);
        assert!(out[util] > u0 + 50.0);
        assert!(out[idle_ix] < i0 - 50.0); // anti-correlated sensor
        assert!(out[power] > p0 + 60.0);
    }

    #[test]
    fn energy_counter_is_monotonic() {
        let mut model = ArchKind::Rome.node_model();
        let names = model.sensor_names();
        let e = names.iter().position(|n| n == "energy_consumed_j").unwrap();
        let mut rng = stream(5, 0);
        let mut out = vec![0.0; model.n_sensors()];
        let mut busy = Latent::idle();
        busy.set(Channel::Cpu, 0.5);
        let mut last = 0.0;
        for _ in 0..10 {
            model.sample_into(&busy, &mut rng, &mut out);
            assert!(out[e] >= last);
            last = out[e];
        }
    }
}
