//! Application workload models.
//!
//! Six applications (the ones HPC-ODA runs from the CORAL-2 suite and
//! classic benchmarks) plus idle. Each model maps the position inside a run
//! to latent activity, reproducing the qualitative behaviours the paper
//! describes in Sec. IV-E:
//!
//! * **AMG** — clear iterative behaviour plus a memory-usage gradient that
//!   grows over the run (visible in Fig. 2).
//! * **Kripke** — pronounced iterative sweeps in both values and
//!   derivatives (Fig. 6a).
//! * **Linpack** — constant heavy load with a distinct initialization
//!   phase (Fig. 6b).
//! * **Quicksilver** — light computational load but oscillating CPU
//!   frequency induced by its code mix (Fig. 6c).
//! * **LAMMPS** — moderate periodic load with network activity (Fig. 7).
//! * **Nekbone** — memory-bandwidth-bound iterative kernel.
//!
//! Each application runs under one of three input configurations that
//! scale its period and intensity, mirroring HPC-ODA's setup.

use crate::channels::{Channel, Latent};
use std::f64::consts::TAU;

/// Application identity (class 0 is idle, matching the paper's
/// "six applications, or idle operation" labeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// No job scheduled on the node.
    Idle,
    /// Algebraic multigrid solver (CORAL-2).
    Amg,
    /// Deterministic neutron transport (CORAL-2).
    Kripke,
    /// Dense linear algebra (HPL).
    Linpack,
    /// Monte-Carlo particle transport (CORAL-2).
    Quicksilver,
    /// Molecular dynamics.
    Lammps,
    /// Spectral-element proxy (CORAL-2).
    Nekbone,
}

impl AppKind {
    /// All six real applications (excluding idle).
    pub const APPLICATIONS: [AppKind; 6] = [
        AppKind::Amg,
        AppKind::Kripke,
        AppKind::Linpack,
        AppKind::Quicksilver,
        AppKind::Lammps,
        AppKind::Nekbone,
    ];

    /// Class label: 0 = idle, 1..=6 applications.
    pub fn class_id(self) -> usize {
        match self {
            AppKind::Idle => 0,
            AppKind::Amg => 1,
            AppKind::Kripke => 2,
            AppKind::Linpack => 3,
            AppKind::Quicksilver => 4,
            AppKind::Lammps => 5,
            AppKind::Nekbone => 6,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Idle => "Idle",
            AppKind::Amg => "AMG",
            AppKind::Kripke => "Kripke",
            AppKind::Linpack => "Linpack",
            AppKind::Quicksilver => "Quicksilver",
            AppKind::Lammps => "LAMMPS",
            AppKind::Nekbone => "Nekbone",
        }
    }
}

/// One of the three input configurations per application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputConfig(pub u8);

impl InputConfig {
    /// The three configurations used across HPC-ODA.
    pub const ALL: [InputConfig; 3] = [InputConfig(0), InputConfig(1), InputConfig(2)];

    /// Iteration-period multiplier.
    fn period_factor(self) -> f64 {
        1.0 + 0.45 * self.0 as f64
    }

    /// Load-intensity multiplier.
    fn intensity_factor(self) -> f64 {
        0.8 + 0.12 * self.0 as f64
    }
}

/// Computes the latent activity of `app` at position `t` (samples since run
/// start) out of `run_len` samples, under configuration `config`.
///
/// `phase_jitter` decorrelates nodes of the same MPI job slightly
/// (per-node pipeline skew); pass 0.0 for single-node runs.
pub fn latent_at(
    app: AppKind,
    config: InputConfig,
    t: usize,
    run_len: usize,
    phase_jitter: f64,
) -> Latent {
    let mut l = Latent::idle();
    let run_len = run_len.max(1);
    let progress = t as f64 / run_len as f64;
    let intensity = config.intensity_factor();
    let tf = t as f64 + phase_jitter;

    match app {
        AppKind::Idle => {
            // Occasional OS housekeeping blips.
            let blip = 0.02 * (1.0 + (tf / 37.0).sin());
            l.set(Channel::Cpu, blip);
            l.set(Channel::Sched, 0.05);
        }
        AppKind::Amg => {
            // V-cycle iterations: medium period; memory grows as the
            // hierarchy is built (the Fig. 2 gradient).
            let period = 24.0 * config.period_factor();
            let wave = 0.5 + 0.5 * (TAU * tf / period).sin();
            l.set(Channel::Cpu, intensity * (0.55 + 0.3 * wave));
            l.set(Channel::MemBw, intensity * (0.45 + 0.35 * wave));
            l.set(Channel::Mem, (0.25 + 0.55 * progress) * intensity);
            l.set(Channel::Cache, 0.35 * intensity * wave);
            l.set(Channel::Sched, 0.2);
        }
        AppKind::Kripke => {
            // Sweep iterations: sharp square-ish waves on CPU and bandwidth.
            let period = 16.0 * config.period_factor();
            let saw = (TAU * tf / period).sin();
            let square = if saw > 0.0 { 1.0 } else { 0.25 };
            l.set(Channel::Cpu, intensity * (0.35 + 0.55 * square));
            l.set(Channel::MemBw, intensity * (0.3 + 0.5 * square));
            l.set(Channel::Mem, 0.45 * intensity);
            l.set(Channel::Cache, 0.25 * intensity * square);
            l.set(Channel::Net, 0.25 * intensity * (1.0 - square).max(0.0));
            l.set(Channel::Sched, 0.25);
        }
        AppKind::Linpack => {
            // Init phase (panel setup) then sustained near-peak load.
            let init = progress < 0.12;
            if init {
                l.set(Channel::Cpu, 0.25 * intensity);
                l.set(Channel::Mem, 0.75 * intensity * (progress / 0.12));
                l.set(Channel::MemBw, 0.6 * intensity);
                l.set(Channel::Io, 0.3 * intensity);
            } else {
                l.set(Channel::Cpu, 0.97 * intensity);
                l.set(Channel::Mem, 0.8 * intensity);
                l.set(Channel::MemBw, 0.7 * intensity);
                l.set(Channel::Cache, 0.15 * intensity);
            }
            l.set(Channel::Sched, 0.15);
        }
        AppKind::Quicksilver => {
            // Light load, but the code mix makes the clock oscillate —
            // the periodic pattern the paper spots in the imaginary parts.
            let period = 20.0 * config.period_factor();
            let osc = (TAU * tf / period).sin();
            l.set(Channel::Cpu, intensity * 0.3);
            l.set(Channel::Mem, 0.3 * intensity);
            l.set(Channel::MemBw, 0.15 * intensity);
            l.set(Channel::Freq, 1.0 + 0.25 * osc);
            l.set(Channel::Sched, 0.3 + 0.1 * osc);
        }
        AppKind::Lammps => {
            // Neighbor-list rebuild cadence + halo exchanges.
            let period = 30.0 * config.period_factor();
            let wave = 0.5 + 0.5 * (TAU * tf / period).sin();
            let rebuild = ((tf / period).fract() < 0.15) as u8 as f64;
            l.set(Channel::Cpu, intensity * (0.6 + 0.2 * wave));
            l.set(Channel::Mem, 0.5 * intensity);
            l.set(Channel::MemBw, intensity * (0.35 + 0.15 * wave));
            l.set(Channel::Net, intensity * (0.2 + 0.4 * rebuild));
            l.set(Channel::Cache, 0.2 * intensity * wave);
            l.set(Channel::Sched, 0.2);
        }
        AppKind::Nekbone => {
            // Bandwidth-bound spectral kernels, fast iterations.
            let period = 10.0 * config.period_factor();
            let wave = 0.5 + 0.5 * (TAU * tf / period).sin();
            l.set(Channel::Cpu, intensity * (0.45 + 0.15 * wave));
            l.set(Channel::MemBw, intensity * (0.7 + 0.25 * wave));
            l.set(Channel::Mem, 0.55 * intensity);
            l.set(Channel::Cache, 0.45 * intensity * wave);
            l.set(Channel::Sched, 0.2);
        }
    }
    l.clamp();
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_are_unique_and_dense() {
        let mut ids: Vec<usize> = AppKind::APPLICATIONS.iter().map(|a| a.class_id()).collect();
        ids.push(AppKind::Idle.class_id());
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn idle_is_quiet_linpack_is_loud() {
        let idle = latent_at(AppKind::Idle, InputConfig(0), 50, 100, 0.0);
        let hpl = latent_at(AppKind::Linpack, InputConfig(0), 50, 100, 0.0);
        assert!(idle.get(Channel::Cpu) < 0.1);
        assert!(hpl.get(Channel::Cpu) > 0.7);
    }

    #[test]
    fn amg_memory_gradient_grows() {
        let early = latent_at(AppKind::Amg, InputConfig(0), 5, 100, 0.0);
        let late = latent_at(AppKind::Amg, InputConfig(0), 95, 100, 0.0);
        assert!(late.get(Channel::Mem) > early.get(Channel::Mem) + 0.2);
    }

    #[test]
    fn linpack_init_phase_differs_from_steady() {
        let init = latent_at(AppKind::Linpack, InputConfig(0), 2, 100, 0.0);
        let steady = latent_at(AppKind::Linpack, InputConfig(0), 60, 100, 0.0);
        assert!(init.get(Channel::Cpu) < 0.4);
        assert!(steady.get(Channel::Cpu) > 0.7);
        assert!(init.get(Channel::Io) > steady.get(Channel::Io));
    }

    #[test]
    fn quicksilver_frequency_oscillates() {
        let samples: Vec<f64> = (0..60)
            .map(|t| {
                latent_at(AppKind::Quicksilver, InputConfig(0), t, 200, 0.0).get(Channel::Freq)
            })
            .collect();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.3, "freq swing {}", max - min);
        // Other apps keep the nominal clock.
        let hpl = latent_at(AppKind::Linpack, InputConfig(0), 30, 100, 0.0);
        assert!((hpl.get(Channel::Freq) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn configs_change_period() {
        // With different period factors the waves decorrelate over time.
        let a: Vec<f64> = (0..64)
            .map(|t| latent_at(AppKind::Kripke, InputConfig(0), t, 200, 0.0).get(Channel::Cpu))
            .collect();
        let b: Vec<f64> = (0..64)
            .map(|t| latent_at(AppKind::Kripke, InputConfig(2), t, 200, 0.0).get(Channel::Cpu))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_channels_stay_physical() {
        for app in AppKind::APPLICATIONS {
            for cfg in InputConfig::ALL {
                for t in [0usize, 13, 77, 199] {
                    let l = latent_at(app, cfg, t, 200, 0.5);
                    for (i, &v) in l.as_array().iter().enumerate() {
                        assert!(v.is_finite());
                        if i == Channel::Freq as usize {
                            assert!((0.3..=1.5).contains(&v));
                        } else {
                            assert!((0.0..=1.0).contains(&v), "{app:?} ch{i} = {v}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn phase_jitter_shifts_waves() {
        let a = latent_at(AppKind::Kripke, InputConfig(0), 10, 100, 0.0);
        let b = latent_at(AppKind::Kripke, InputConfig(0), 10, 100, 7.0);
        assert_ne!(a.get(Channel::Cpu), b.get(Channel::Cpu));
    }
}
