//! Sensor response functions: from latent activity to noisy readings.
//!
//! Each sensor is an affine function of a few latent channels plus Gaussian
//! noise, optionally saturating (utilizations) or accumulating (energy
//! counters). Products of channels express physically coupled effects —
//! e.g. `cycles ∝ CPU · FREQ` and `power ∝ base + CPU·FREQ + MEMBW`.

use crate::channels::{Channel, Latent};
use crate::rng::normal;
use rand::Rng;

/// One multiplicative term: a weight times the product of 1–2 channels.
#[derive(Debug, Clone, Copy)]
pub struct Term {
    /// Weight of the term.
    pub weight: f64,
    /// First factor channel.
    pub a: Channel,
    /// Optional second factor channel (product term).
    pub b: Option<Channel>,
}

impl Term {
    /// Linear term `weight * latent[a]`.
    pub fn lin(weight: f64, a: Channel) -> Self {
        Self { weight, a, b: None }
    }

    /// Product term `weight * latent[a] * latent[b]`.
    pub fn prod(weight: f64, a: Channel, b: Channel) -> Self {
        Self {
            weight,
            a,
            b: Some(b),
        }
    }

    fn eval(&self, l: &Latent) -> f64 {
        let mut v = self.weight * l.get(self.a);
        if let Some(b) = self.b {
            v *= l.get(b);
        }
        v
    }
}

/// Specification of one sensor.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// Sensor name (unique within a node).
    pub name: String,
    /// Constant offset in output units.
    pub base: f64,
    /// Response terms over latent channels.
    pub terms: Vec<Term>,
    /// Gaussian noise standard deviation, in output units.
    pub noise: f64,
    /// Clamp range of the instantaneous response, when physical
    /// (e.g. utilizations live in `[0, 100]`).
    pub clamp: Option<(f64, f64)>,
    /// Monotonic counter: emits the running sum of responses (energy-like).
    pub monotonic: bool,
}

impl SensorSpec {
    /// Gauge sensor shorthand.
    pub fn gauge(
        name: impl Into<String>,
        base: f64,
        terms: Vec<Term>,
        noise: f64,
        clamp: Option<(f64, f64)>,
    ) -> Self {
        Self {
            name: name.into(),
            base,
            terms,
            noise,
            clamp,
            monotonic: false,
        }
    }

    /// Monotonic counter shorthand (e.g. consumed energy).
    pub fn counter(name: impl Into<String>, base: f64, terms: Vec<Term>, noise: f64) -> Self {
        Self {
            name: name.into(),
            base,
            terms,
            noise,
            clamp: None,
            monotonic: true,
        }
    }

    /// Instantaneous response before accumulation.
    fn response(&self, l: &Latent, rng: &mut impl Rng) -> f64 {
        let mut v = self.base;
        for t in &self.terms {
            v += t.eval(l);
        }
        if self.noise > 0.0 {
            v += self.noise * normal(rng);
        }
        if let Some((lo, hi)) = self.clamp {
            v = v.clamp(lo, hi);
        }
        v
    }
}

/// A node model: a set of sensors plus per-counter accumulator state.
#[derive(Debug, Clone)]
pub struct NodeModel {
    specs: Vec<SensorSpec>,
    accumulators: Vec<f64>,
}

impl NodeModel {
    /// Builds a node model from sensor specs.
    pub fn new(specs: Vec<SensorSpec>) -> Self {
        let accumulators = vec![0.0; specs.len()];
        Self {
            specs,
            accumulators,
        }
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.specs.len()
    }

    /// Sensor names in row order.
    pub fn sensor_names(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.name.clone()).collect()
    }

    /// Sensor specs (for inspection).
    pub fn specs(&self) -> &[SensorSpec] {
        &self.specs
    }

    /// Samples every sensor at the given latent state, writing readings
    /// into `out` (must be `n_sensors` long). Monotonic counters advance
    /// their accumulator.
    pub fn sample_into(&mut self, l: &Latent, rng: &mut impl Rng, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            let r = spec.response(l, rng);
            out[i] = if spec.monotonic {
                // Energy-like counters integrate a non-negative response.
                self.accumulators[i] += r.max(0.0);
                self.accumulators[i]
            } else {
                r
            };
        }
    }

    /// Resets counter accumulators (new trace).
    pub fn reset(&mut self) {
        self.accumulators.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Indexes of monotonic-counter sensors.
    pub fn monotonic_rows(&self) -> Vec<usize> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.monotonic)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    fn latent_with(cpu: f64, freq: f64) -> Latent {
        let mut l = Latent::idle();
        l.set(Channel::Cpu, cpu);
        l.set(Channel::Freq, freq);
        l
    }

    #[test]
    fn linear_and_product_terms() {
        let spec = SensorSpec::gauge(
            "cycles",
            0.0,
            vec![Term::prod(100.0, Channel::Cpu, Channel::Freq)],
            0.0,
            None,
        );
        let mut node = NodeModel::new(vec![spec]);
        let mut rng = stream(0, 0);
        let mut out = [0.0];
        node.sample_into(&latent_with(0.5, 1.2), &mut rng, &mut out);
        assert!((out[0] - 60.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_applies() {
        let spec = SensorSpec::gauge(
            "util",
            0.0,
            vec![Term::lin(200.0, Channel::Cpu)],
            0.0,
            Some((0.0, 100.0)),
        );
        let mut node = NodeModel::new(vec![spec]);
        let mut rng = stream(0, 0);
        let mut out = [0.0];
        node.sample_into(&latent_with(0.9, 1.0), &mut rng, &mut out);
        assert_eq!(out[0], 100.0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let spec = SensorSpec::counter("energy", 10.0, vec![Term::lin(5.0, Channel::Cpu)], 0.0);
        let mut node = NodeModel::new(vec![spec]);
        let mut rng = stream(0, 0);
        let mut out = [0.0];
        let l = latent_with(1.0, 1.0);
        node.sample_into(&l, &mut rng, &mut out);
        assert!((out[0] - 15.0).abs() < 1e-12);
        node.sample_into(&l, &mut rng, &mut out);
        assert!((out[0] - 30.0).abs() < 1e-12);
        node.reset();
        node.sample_into(&l, &mut rng, &mut out);
        assert!((out[0] - 15.0).abs() < 1e-12);
        assert_eq!(node.monotonic_rows(), vec![0]);
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let make = || {
            NodeModel::new(vec![SensorSpec::gauge(
                "noisy",
                0.0,
                vec![Term::lin(1.0, Channel::Cpu)],
                0.5,
                None,
            )])
        };
        let mut a = make();
        let mut b = make();
        let l = latent_with(0.5, 1.0);
        let mut ra = stream(3, 0);
        let mut rb = stream(3, 0);
        let mut oa = [0.0];
        let mut ob = [0.0];
        a.sample_into(&l, &mut ra, &mut oa);
        b.sample_into(&l, &mut rb, &mut ob);
        assert_eq!(oa, ob);
    }
}
