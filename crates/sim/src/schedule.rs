//! Run scheduling: sequences of application runs, idle gaps and fault
//! injection intervals over a sampling timeline.

use crate::apps::{AppKind, InputConfig};
use crate::faults::{FaultKind, FaultSetting};
use crate::rng::SimRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// What occupies the node during one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunPayload {
    /// Nothing scheduled.
    Idle,
    /// A healthy application run.
    App {
        /// Application being executed.
        app: AppKind,
        /// Input configuration.
        config: InputConfig,
    },
    /// An application run with a fault program active alongside it.
    Faulted {
        /// Victim application.
        app: AppKind,
        /// Input configuration.
        config: InputConfig,
        /// Injected fault.
        fault: FaultKind,
        /// Fault intensity setting.
        setting: FaultSetting,
    },
}

/// One run on the timeline: `[start, start + len)` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Run {
    /// First sample of the run.
    pub start: usize,
    /// Length in samples.
    pub len: usize,
    /// What executes during the run.
    pub payload: RunPayload,
}

impl Run {
    /// Sample-level class label for this run's payload.
    ///
    /// Application scheduling labels by application (0 = idle); fault
    /// scheduling labels by fault (0 = healthy).
    pub fn app_class(&self) -> usize {
        match self.payload {
            RunPayload::Idle => AppKind::Idle.class_id(),
            RunPayload::App { app, .. } | RunPayload::Faulted { app, .. } => app.class_id(),
        }
    }

    /// Fault class label (0 = healthy/idle).
    pub fn fault_class(&self) -> usize {
        match self.payload {
            RunPayload::Faulted { fault, .. } => fault.class_id(),
            _ => 0,
        }
    }
}

/// Parameters for schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Total timeline length in samples.
    pub total: usize,
    /// Shortest run length.
    pub min_run: usize,
    /// Longest run length.
    pub max_run: usize,
    /// Idle gap inserted between runs (0 = back-to-back).
    pub idle_gap: usize,
    /// Input configurations to cycle through.
    pub configs: &'static [InputConfig],
}

impl ScheduleConfig {
    /// A reasonable default for `total` samples.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            min_run: 120,
            max_run: 260,
            idle_gap: 20,
            configs: &InputConfig::ALL,
        }
    }
}

/// Generates an application schedule: shuffled (app × config) runs
/// separated by idle gaps, repeated until the timeline is full.
pub fn app_schedule(cfg: &ScheduleConfig, rng: &mut SimRng) -> Vec<Run> {
    let mut combos: Vec<(AppKind, InputConfig)> = Vec::new();
    for &app in &AppKind::APPLICATIONS {
        for &c in cfg.configs {
            combos.push((app, c));
        }
    }
    let mut runs = Vec::new();
    let mut t = 0usize;
    'outer: loop {
        combos.shuffle(rng);
        for &(app, config) in &combos {
            if t >= cfg.total {
                break 'outer;
            }
            let len = rng.gen_range(cfg.min_run..=cfg.max_run).min(cfg.total - t);
            runs.push(Run {
                start: t,
                len,
                payload: RunPayload::App { app, config },
            });
            t += len;
            if cfg.idle_gap > 0 && t < cfg.total {
                let gap = cfg.idle_gap.min(cfg.total - t);
                runs.push(Run {
                    start: t,
                    len: gap,
                    payload: RunPayload::Idle,
                });
                t += gap;
            }
        }
    }
    runs
}

/// Generates a fault-injection schedule: application runs where roughly
/// half carry an active fault, cycling through all 8 faults × 2 settings so
/// classes stay balanced (the Antarex campaign behind HPC-ODA's Fault
/// segment alternates healthy and faulted intervals the same way).
pub fn fault_schedule(cfg: &ScheduleConfig, rng: &mut SimRng) -> Vec<Run> {
    let mut fault_cycle: Vec<(FaultKind, FaultSetting)> = Vec::new();
    for &f in &FaultKind::ALL {
        for &s in &FaultSetting::ALL {
            fault_cycle.push((f, s));
        }
    }
    let mut runs = Vec::new();
    let mut t = 0usize;
    let mut cycle_pos = fault_cycle.len(); // force reshuffle on first use
    let mut healthy_next = true;
    while t < cfg.total {
        let app = *AppKind::APPLICATIONS.choose(rng).unwrap();
        let config = *cfg.configs.choose(rng).unwrap();
        let len = rng.gen_range(cfg.min_run..=cfg.max_run).min(cfg.total - t);
        let payload = if healthy_next {
            RunPayload::App { app, config }
        } else {
            if cycle_pos >= fault_cycle.len() {
                fault_cycle.shuffle(rng);
                cycle_pos = 0;
            }
            let (fault, setting) = fault_cycle[cycle_pos];
            cycle_pos += 1;
            RunPayload::Faulted {
                app,
                config,
                fault,
                setting,
            }
        };
        runs.push(Run {
            start: t,
            len,
            payload,
        });
        t += len;
        healthy_next = !healthy_next;
    }
    runs
}

/// Expands a schedule into per-sample `(run_index, offset_in_run)` lookups.
pub fn sample_index(runs: &[Run], total: usize) -> Vec<(usize, usize)> {
    let mut out = vec![(0usize, 0usize); total];
    for (ri, run) in runs.iter().enumerate() {
        for off in 0..run.len {
            let t = run.start + off;
            if t < total {
                out[t] = (ri, off);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    #[test]
    fn app_schedule_covers_timeline_contiguously() {
        let cfg = ScheduleConfig::new(5000);
        let runs = app_schedule(&cfg, &mut stream(1, 0));
        let mut t = 0;
        for run in &runs {
            assert_eq!(run.start, t, "gap or overlap at {t}");
            assert!(run.len > 0);
            t += run.len;
        }
        assert_eq!(t, 5000);
    }

    #[test]
    fn app_schedule_uses_all_applications() {
        let cfg = ScheduleConfig::new(40_000);
        let runs = app_schedule(&cfg, &mut stream(2, 0));
        for app in AppKind::APPLICATIONS {
            assert!(
                runs.iter().any(|r| r.app_class() == app.class_id()),
                "{app:?} never scheduled"
            );
        }
        assert!(runs.iter().any(|r| r.payload == RunPayload::Idle));
    }

    #[test]
    fn fault_schedule_alternates_and_covers_all_faults() {
        let cfg = ScheduleConfig::new(60_000);
        let runs = fault_schedule(&cfg, &mut stream(3, 0));
        let mut seen = [false; 9];
        for run in &runs {
            seen[run.fault_class()] = true;
        }
        assert!(seen.iter().all(|&s| s), "classes seen: {seen:?}");
        // roughly half the runs are healthy
        let healthy = runs.iter().filter(|r| r.fault_class() == 0).count();
        let ratio = healthy as f64 / runs.len() as f64;
        assert!((0.4..=0.6).contains(&ratio), "healthy ratio {ratio}");
    }

    #[test]
    fn schedules_are_deterministic() {
        let cfg = ScheduleConfig::new(3000);
        let a = app_schedule(&cfg, &mut stream(9, 0));
        let b = app_schedule(&cfg, &mut stream(9, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_index_maps_back() {
        let cfg = ScheduleConfig::new(1000);
        let runs = app_schedule(&cfg, &mut stream(4, 0));
        let idx = sample_index(&runs, 1000);
        for t in [0usize, 1, 500, 999] {
            let (ri, off) = idx[t];
            assert_eq!(runs[ri].start + off, t);
            assert!(off < runs[ri].len);
        }
    }
}
