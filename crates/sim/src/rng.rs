//! Randomness helpers: seeded streams and a Box-Muller normal sampler.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so the
//! normal sampler is implemented directly.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The simulator's RNG: portable and fast.
pub type SimRng = ChaCha8Rng;

/// Creates a deterministic RNG from a master seed and a stream id, so
/// independent components (nodes, sensors) get decorrelated streams.
pub fn stream(seed: u64, stream_id: u64) -> SimRng {
    let mut rng = SimRng::seed_from_u64(seed);
    rng.set_stream(stream_id);
    rng
}

/// Standard normal sample via the Box-Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Normal sample with explicit mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a1 = stream(7, 0);
        let mut a2 = stream(7, 0);
        let mut b = stream(7, 1);
        let x1: f64 = a1.gen();
        let x2: f64 = a2.gen();
        let y: f64 = b.gen();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = stream(42, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut rng = stream(1, 0);
        let n = 10_000;
        let mean = 5.0;
        let std = 2.0;
        let m = (0..n)
            .map(|_| normal_with(&mut rng, mean, std))
            .sum::<f64>()
            / n as f64;
        assert!((m - mean).abs() < 0.1, "mean {m}");
    }
}
