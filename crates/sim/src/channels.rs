//! The latent activity state driving every simulated sensor.
//!
//! Real monitoring metrics are correlated because they respond to the same
//! underlying activity: a compute-bound phase moves utilization counters,
//! instruction rates, power and temperature together. The simulator makes
//! that sharing explicit: applications (and faults) set a small vector of
//! latent *channels*, and each sensor is a noisy affine function of a few
//! channels.

/// Latent activity channels, all nominally in `[0, 1]` except [`Channel::Freq`]
/// (a relative clock multiplier around 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Channel {
    /// CPU utilization.
    Cpu = 0,
    /// Memory occupancy.
    Mem = 1,
    /// Memory bandwidth.
    MemBw = 2,
    /// Disk / filesystem I/O activity.
    Io = 3,
    /// Network activity.
    Net = 4,
    /// Relative CPU clock (1.0 = nominal).
    Freq = 5,
    /// Cache-miss intensity.
    Cache = 6,
    /// Page-fault intensity.
    PageFault = 7,
    /// Context-switch / scheduler churn.
    Sched = 8,
    /// Ambient/facility condition (drives cooling sensors).
    Ambient = 9,
    /// GPU compute (SM) activity — used by accelerator nodes.
    GpuCompute = 10,
    /// GPU memory occupancy/bandwidth.
    GpuMem = 11,
}

/// Number of latent channels.
pub const N_CHANNELS: usize = 12;

/// One time-step of latent activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latent {
    values: [f64; N_CHANNELS],
}

impl Default for Latent {
    fn default() -> Self {
        Self::idle()
    }
}

impl Latent {
    /// The idle state: everything quiet, nominal clock, mild base memory.
    pub fn idle() -> Self {
        let mut values = [0.0; N_CHANNELS];
        values[Channel::Mem as usize] = 0.05;
        values[Channel::Freq as usize] = 1.0;
        values[Channel::Ambient as usize] = 0.5;
        Self { values }
    }

    /// Reads one channel.
    #[inline]
    pub fn get(&self, c: Channel) -> f64 {
        self.values[c as usize]
    }

    /// Sets one channel.
    #[inline]
    pub fn set(&mut self, c: Channel, v: f64) {
        self.values[c as usize] = v;
    }

    /// Adds to one channel.
    #[inline]
    pub fn add(&mut self, c: Channel, v: f64) {
        self.values[c as usize] += v;
    }

    /// Multiplies one channel.
    #[inline]
    pub fn scale(&mut self, c: Channel, k: f64) {
        self.values[c as usize] *= k;
    }

    /// Clamps the utilization-like channels into `[0, 1]` and the clock
    /// into `[0.3, 1.5]` (hardware limits).
    pub fn clamp(&mut self) {
        for (i, v) in self.values.iter_mut().enumerate() {
            if i == Channel::Freq as usize {
                *v = v.clamp(0.3, 1.5);
            } else {
                *v = v.clamp(0.0, 1.0);
            }
        }
    }

    /// Raw channel array.
    pub fn as_array(&self) -> &[f64; N_CHANNELS] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_state_is_quiet() {
        let l = Latent::idle();
        assert_eq!(l.get(Channel::Cpu), 0.0);
        assert_eq!(l.get(Channel::Freq), 1.0);
        assert!(l.get(Channel::Mem) > 0.0);
    }

    #[test]
    fn set_get_add_scale() {
        let mut l = Latent::idle();
        l.set(Channel::Cpu, 0.8);
        assert_eq!(l.get(Channel::Cpu), 0.8);
        l.add(Channel::Cpu, 0.1);
        assert!((l.get(Channel::Cpu) - 0.9).abs() < 1e-12);
        l.scale(Channel::Cpu, 0.5);
        assert!((l.get(Channel::Cpu) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn clamp_restores_physical_ranges() {
        let mut l = Latent::idle();
        l.set(Channel::Cpu, 3.0);
        l.set(Channel::Mem, -1.0);
        l.set(Channel::Freq, 9.0);
        l.clamp();
        assert_eq!(l.get(Channel::Cpu), 1.0);
        assert_eq!(l.get(Channel::Mem), 0.0);
        assert_eq!(l.get(Channel::Freq), 1.5);
    }
}
