//! GPU-accelerated workload and node models.
//!
//! The paper lists "testing the CS method's effectiveness when applied to
//! accelerator sensor data (e.g., GPUs)" as future work (Sec. V). This
//! module provides the substrate for that experiment: GPU builds of the
//! six applications (each offloading an app-specific fraction of its
//! compute onto the accelerator) and a GPU-node sensor set.

use crate::apps::{latent_at, AppKind, InputConfig};
use crate::channels::{Channel, Latent};
use crate::sensors::{NodeModel, SensorSpec, Term};

/// Fraction of an application's compute that its GPU build offloads, and
/// how memory-bandwidth-hungry the device kernels are.
fn offload_profile(app: AppKind) -> (f64, f64) {
    match app {
        AppKind::Idle => (0.0, 0.0),
        // (compute offload, device-memory pressure)
        AppKind::Amg => (0.55, 0.75),   // SpMV-heavy: bandwidth-bound
        AppKind::Kripke => (0.7, 0.5),  // sweep kernels port well
        AppKind::Linpack => (0.9, 0.6), // DGEMM lives on the device
        AppKind::Quicksilver => (0.35, 0.3), // branchy MC: poor offload
        AppKind::Lammps => (0.65, 0.55), // pair kernels on device
        AppKind::Nekbone => (0.6, 0.8), // spectral ops: bandwidth
    }
}

/// Latent state of the *GPU build* of `app`: the host-side latent state
/// with part of the CPU activity moved onto the GPU channels. Temporal
/// structure (iterations, init phases, frequency oscillation) carries
/// over to the device — the property that makes signatures comparable.
pub fn gpu_latent_at(
    app: AppKind,
    config: InputConfig,
    t: usize,
    run_len: usize,
    phase_jitter: f64,
) -> Latent {
    let mut l = latent_at(app, config, t, run_len, phase_jitter);
    let (offload, mem_pressure) = offload_profile(app);
    let cpu = l.get(Channel::Cpu);
    let membw = l.get(Channel::MemBw);
    // The host keeps orchestration load; the device inherits the kernels.
    l.set(Channel::Cpu, cpu * (1.0 - 0.75 * offload) + 0.05);
    l.set(Channel::GpuCompute, cpu * offload);
    l.set(Channel::GpuMem, membw * mem_pressure + 0.1 * offload);
    // Device transfers ride the host bandwidth channel a little.
    l.set(
        Channel::MemBw,
        membw * (1.0 - 0.4 * offload) + 0.1 * offload,
    );
    l.clamp();
    l
}

/// Number of GPUs on the accelerator node.
pub const GPUS_PER_NODE: usize = 4;

/// Sensors exposed by each GPU (DCGM/NVML-style).
pub const SENSORS_PER_GPU: usize = 11;

/// Builds the GPU node model: the common 32 node-level sensors plus
/// `GPUS_PER_NODE x SENSORS_PER_GPU` device sensors (76 total).
pub fn gpu_node_model() -> NodeModel {
    use Channel::*;
    // Host side: reuse the Rome host sensor set's common core.
    let mut specs = crate::arch::ArchKind::Rome.node_model().specs().to_vec();
    specs.truncate(32); // keep only the common node-level sensors
    for g in 0..GPUS_PER_NODE {
        let k = 1.0 - 0.03 * g as f64; // per-device asymmetry
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_sm_util_pct"),
            0.0,
            vec![Term::lin(96.0 * k, GpuCompute)],
            1.5,
            Some((0.0, 100.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_mem_util_pct"),
            0.0,
            vec![Term::lin(90.0 * k, GpuMem)],
            1.5,
            Some((0.0, 100.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_fb_used_gb"),
            1.0,
            vec![Term::lin(36.0 * k, GpuMem)],
            0.3,
            Some((0.0, 40.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_power_w"),
            45.0,
            vec![Term::lin(240.0 * k, GpuCompute), Term::lin(60.0, GpuMem)],
            3.0,
            Some((0.0, 420.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_temp_c"),
            30.0,
            vec![Term::lin(42.0 * k, GpuCompute), Term::lin(6.0, Ambient)],
            0.6,
            Some((15.0, 95.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_sm_clock_mhz"),
            600.0,
            vec![Term::lin(800.0 * k, GpuCompute), Term::lin(150.0, Freq)],
            10.0,
            Some((300.0, 1900.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_mem_clock_mhz"),
            800.0,
            vec![Term::lin(400.0 * k, GpuMem)],
            8.0,
            Some((400.0, 1600.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_pcie_tx_gbs"),
            0.1,
            vec![Term::lin(12.0 * k, GpuMem), Term::lin(6.0, MemBw)],
            0.3,
            Some((0.0, 32.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_pcie_rx_gbs"),
            0.1,
            vec![Term::lin(10.0 * k, GpuMem), Term::lin(5.0, MemBw)],
            0.3,
            Some((0.0, 32.0)),
        ));
        specs.push(SensorSpec::gauge(
            format!("gpu{g}_nvlink_gbs"),
            0.2,
            vec![Term::prod(40.0 * k, GpuCompute, GpuMem)],
            0.5,
            Some((0.0, 100.0)),
        ));
        specs.push(SensorSpec::counter(
            format!("gpu{g}_energy_j"),
            45.0,
            vec![Term::lin(240.0 * k, GpuCompute), Term::lin(60.0, GpuMem)],
            1.0,
        ));
    }
    NodeModel::new(specs)
}

/// Total sensors on the GPU node.
pub const GPU_NODE_SENSORS: usize = 32 + GPUS_PER_NODE * SENSORS_PER_GPU;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    #[test]
    fn node_model_has_expected_sensor_count() {
        let model = gpu_node_model();
        assert_eq!(model.n_sensors(), GPU_NODE_SENSORS);
        assert_eq!(GPU_NODE_SENSORS, 76);
    }

    #[test]
    fn offload_moves_load_to_device() {
        let host = latent_at(AppKind::Linpack, InputConfig(0), 50, 100, 0.0);
        let gpu = gpu_latent_at(AppKind::Linpack, InputConfig(0), 50, 100, 0.0);
        assert!(
            gpu.get(Channel::GpuCompute) > 0.5,
            "Linpack offloads heavily"
        );
        assert!(gpu.get(Channel::Cpu) < host.get(Channel::Cpu));
        // Quicksilver barely offloads.
        let qs = gpu_latent_at(AppKind::Quicksilver, InputConfig(0), 50, 200, 0.0);
        assert!(qs.get(Channel::GpuCompute) < 0.2);
    }

    #[test]
    fn idle_gpu_is_quiet() {
        let idle = gpu_latent_at(AppKind::Idle, InputConfig(0), 10, 100, 0.0);
        assert!(idle.get(Channel::GpuCompute) < 0.05);
        assert!(idle.get(Channel::GpuMem) < 0.05);
    }

    #[test]
    fn gpu_sensors_respond_to_device_channels() {
        let mut model = gpu_node_model();
        let names = model.sensor_names();
        let sm = names.iter().position(|n| n == "gpu0_sm_util_pct").unwrap();
        let pw = names.iter().position(|n| n == "gpu0_power_w").unwrap();
        let mut rng = stream(1, 0);
        let mut out = vec![0.0; model.n_sensors()];

        let idle = gpu_latent_at(AppKind::Idle, InputConfig(0), 0, 100, 0.0);
        model.sample_into(&idle, &mut rng, &mut out);
        let (sm0, pw0) = (out[sm], out[pw]);

        let busy = gpu_latent_at(AppKind::Linpack, InputConfig(0), 60, 100, 0.0);
        model.sample_into(&busy, &mut rng, &mut out);
        assert!(out[sm] > sm0 + 40.0, "sm util {} -> {}", sm0, out[sm]);
        assert!(out[pw] > pw0 + 80.0, "power {} -> {}", pw0, out[pw]);
    }

    #[test]
    fn temporal_structure_survives_offload() {
        // Quicksilver's frequency oscillation must still be visible.
        let freqs: Vec<f64> = (0..60)
            .map(|t| {
                gpu_latent_at(AppKind::Quicksilver, InputConfig(0), t, 200, 0.0).get(Channel::Freq)
            })
            .collect();
        let min = freqs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = freqs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.3);
    }
}
