//! Property-based tests for the simulator.

use cwsmooth_sim::apps::{latent_at, AppKind, InputConfig};
use cwsmooth_sim::channels::Channel;
use cwsmooth_sim::faults::{apply_fault, FaultKind, FaultSetting};
use cwsmooth_sim::gpu::gpu_latent_at;
use cwsmooth_sim::rng::stream;
use cwsmooth_sim::schedule::{app_schedule, fault_schedule, ScheduleConfig};
use cwsmooth_sim::segments::{fault_segment, power_segment, SimConfig};
use proptest::prelude::*;

fn any_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(vec![
        AppKind::Idle,
        AppKind::Amg,
        AppKind::Kripke,
        AppKind::Linpack,
        AppKind::Quicksilver,
        AppKind::Lammps,
        AppKind::Nekbone,
    ])
}

fn any_fault() -> impl Strategy<Value = FaultKind> {
    prop::sample::select(FaultKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn latent_state_is_always_physical(
        app in any_app(),
        cfg in 0u8..3,
        t in 0usize..500,
        run_len in 1usize..500,
        jitter in 0.0f64..20.0,
    ) {
        let l = latent_at(app, InputConfig(cfg), t, run_len, jitter);
        for (i, &v) in l.as_array().iter().enumerate() {
            prop_assert!(v.is_finite());
            if i == Channel::Freq as usize {
                prop_assert!((0.3..=1.5).contains(&v));
            } else {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "ch{i}={v}");
            }
        }
    }

    #[test]
    fn gpu_latent_state_is_always_physical(
        app in any_app(),
        cfg in 0u8..3,
        t in 0usize..300,
        run_len in 1usize..300,
    ) {
        let l = gpu_latent_at(app, InputConfig(cfg), t, run_len, 0.0);
        for (i, &v) in l.as_array().iter().enumerate() {
            prop_assert!(v.is_finite());
            if i == Channel::Freq as usize {
                prop_assert!((0.3..=1.5).contains(&v));
            } else {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn faults_keep_state_physical(
        app in any_app(),
        fault in any_fault(),
        t in 0usize..200,
        run_len in 1usize..200,
    ) {
        for setting in FaultSetting::ALL {
            let mut l = latent_at(app, InputConfig(1), t, run_len, 0.0);
            apply_fault(&mut l, fault, setting, t, run_len);
            for (i, &v) in l.as_array().iter().enumerate() {
                prop_assert!(v.is_finite());
                if i != Channel::Freq as usize {
                    prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
                }
            }
        }
    }

    #[test]
    fn schedules_tile_the_timeline(total in 200usize..4000, seed in any::<u64>()) {
        let cfg = ScheduleConfig::new(total);
        for runs in [
            app_schedule(&cfg, &mut stream(seed, 0)),
            fault_schedule(&cfg, &mut stream(seed, 1)),
        ] {
            let mut t = 0usize;
            for run in &runs {
                prop_assert_eq!(run.start, t);
                prop_assert!(run.len > 0);
                t += run.len;
            }
            prop_assert_eq!(t, total);
        }
    }

    #[test]
    fn segments_are_finite_and_labelled(seed in any::<u64>()) {
        let seg = power_segment(SimConfig::new(seed, 300));
        prop_assert!(!seg.matrix.has_non_finite());
        prop_assert_eq!(seg.labels.len(), 300);
        let f = fault_segment(SimConfig::new(seed, 300));
        prop_assert!(!f.matrix.has_non_finite());
        prop_assert_eq!(f.sensors(), 128);
    }
}
