//! Shared experiment plumbing for the figure/table binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (Sec. IV). The heavy lifting — building the method roster,
//! extracting windowed feature datasets, running the paper's
//! cross-validation protocol and timing each phase — lives here so the
//! binaries stay declarative.

#![warn(missing_docs)]

use cwsmooth_core::baselines::{BodikMethod, LanMethod, TuncerMethod};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::dataset::{build_dataset, DatasetOptions, FeatureDataset};
use cwsmooth_core::method::SignatureMethod;
use cwsmooth_core::model::CsModel;
use cwsmooth_data::{Segment, TaskKind};
use cwsmooth_ml::cv::{
    cross_validate_forest_classifier, cross_validate_forest_regressor, CvReport,
};
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use cwsmooth_ml::SplitAlgo;
use cwsmooth_sim::segments::SegmentInfo;
use std::time::Instant;

/// Sub-sample length for the Lan baseline (per sensor).
pub const LAN_WR: usize = 6;

/// The CS block counts swept in Figs. 3–4 (`None` = CS-All).
pub const CS_BLOCK_SWEEP: [Option<usize>; 5] = [Some(5), Some(10), Some(20), Some(40), None];

/// A named signature method ready to run on one segment.
pub struct NamedMethod {
    /// Display name (e.g. `"CS-20"`).
    pub name: String,
    /// The method object.
    pub method: Box<dyn SignatureMethod>,
}

/// Trains a CS model on a segment's full matrix with default settings.
pub fn train_cs_model(segment: &Segment) -> CsModel {
    CsTrainer::default()
        .train(&segment.matrix)
        .expect("segment matrices are finite and non-degenerate")
}

/// Builds the paper's full method roster for one segment: the three
/// baselines plus CS with 5/10/20/40/all blocks.
pub fn method_roster(segment: &Segment) -> Vec<NamedMethod> {
    let model = train_cs_model(segment);
    let mut out: Vec<NamedMethod> = vec![
        NamedMethod {
            name: "Tuncer".into(),
            method: Box::new(TuncerMethod),
        },
        NamedMethod {
            name: "Bodik".into(),
            method: Box::new(BodikMethod),
        },
        NamedMethod {
            name: "Lan".into(),
            method: Box::new(LanMethod::new(LAN_WR).unwrap()),
        },
    ];
    for blocks in CS_BLOCK_SWEEP {
        let cs = match blocks {
            Some(l) => CsMethod::new(model.clone(), l).unwrap(),
            None => CsMethod::all_blocks(model.clone()).unwrap(),
        };
        out.push(NamedMethod {
            name: cs.name(),
            method: Box::new(cs),
        });
    }
    out
}

/// Result of one (segment × method) experiment: the quantities behind
/// Fig. 3a (times), 3b (sizes) and 3c (scores).
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Segment name.
    pub segment: String,
    /// Method name.
    pub method: String,
    /// Signature length (features per window).
    pub signature_size: usize,
    /// Number of feature sets (windows).
    pub feature_sets: usize,
    /// Seconds spent generating the feature dataset.
    pub generation_seconds: f64,
    /// Seconds spent in cross-validation (fit + predict, all folds).
    pub cv_seconds: f64,
    /// ML score: weighted F1 (classification) or `1 − NRMSE` (regression).
    pub ml_score: f64,
}

/// Number of folds in the paper's protocol.
pub const K_FOLDS: usize = 5;

/// Runs the paper's protocol for one method on one segment: extract the
/// windowed feature dataset (timed), then 5-fold cross-validate a
/// 50-tree random forest (timed), averaging scores over `reps` repetitions
/// with distinct seeds.
pub fn run_experiment(
    segment: &Segment,
    info: &SegmentInfo,
    named: &NamedMethod,
    seed: u64,
    reps: usize,
    algo: SplitAlgo,
) -> ExperimentRow {
    let spec = info.window_spec();
    let t0 = Instant::now();
    let ds = build_dataset(
        segment,
        named.method.as_ref(),
        DatasetOptions {
            spec,
            horizon: info.horizon,
        },
    )
    .expect("dataset extraction");
    let generation_seconds = t0.elapsed().as_secs_f64();

    let mut score_sum = 0.0;
    let mut cv_seconds = 0.0;
    for rep in 0..reps.max(1) {
        let rep_seed = seed.wrapping_add(1000 * rep as u64);
        let report = cross_validate(&ds, rep_seed, algo);
        score_sum += report.mean_score();
        cv_seconds += report.elapsed_seconds;
    }
    ExperimentRow {
        segment: segment.name.clone(),
        method: named.name.clone(),
        signature_size: ds.features.cols(),
        feature_sets: ds.len(),
        generation_seconds,
        cv_seconds,
        ml_score: score_sum / reps.max(1) as f64,
    }
}

/// 5-fold cross-validation with the paper's random-forest setup and the
/// selected split engine.
pub fn cross_validate(ds: &FeatureDataset, seed: u64, algo: SplitAlgo) -> CvReport {
    match ds.task() {
        TaskKind::Classification => cross_validate_forest_classifier(
            &ds.features,
            ds.classes.as_ref().unwrap(),
            K_FOLDS,
            seed,
            |s| {
                RandomForestClassifier::with_config(
                    ForestConfig::classification(s).with_split_algo(algo),
                )
            },
        )
        .expect("classification CV"),
        TaskKind::Regression => cross_validate_forest_regressor(
            &ds.features,
            ds.targets.as_ref().unwrap(),
            K_FOLDS,
            seed,
            |s| {
                RandomForestRegressor::with_config(
                    ForestConfig::regression(s).with_split_algo(algo),
                )
            },
        )
        .expect("regression CV"),
    }
}

/// Parses the `--algo` flag shared by the figure binaries:
/// `exact` (default), `hist` (64-bin histogram) or `hist256`.
pub fn parse_algo(args: &Args) -> SplitAlgo {
    match args.get::<String>("algo", "exact".into()).as_str() {
        "hist" => SplitAlgo::histogram(),
        "hist256" => SplitAlgo::Histogram { max_bins: 256 },
        _ => SplitAlgo::Exact,
    }
}

/// Deterministic noisy multi-class data at a bench shape: class id plus
/// uniform noise in every feature. Shared by the forest criterion bench
/// and the `bench_snapshot` binary so their timings stay comparable.
pub fn bench_classification_data(
    n: usize,
    d: usize,
    classes: usize,
    seed: u64,
) -> (cwsmooth_linalg::Matrix, Vec<usize>) {
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let noise: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>() * 0.8).collect();
    let x = cwsmooth_linalg::Matrix::from_fn(n, d, |r, c| (r % classes) as f64 + noise[r * d + c]);
    let y: Vec<usize> = (0..n).map(|r| r % classes).collect();
    (x, y)
}

/// Deterministic regression data (uniform features, sum-of-row target) at
/// a bench shape; see [`bench_classification_data`].
pub fn bench_regression_data(n: usize, d: usize, seed: u64) -> (cwsmooth_linalg::Matrix, Vec<f64>) {
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let noise: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>()).collect();
    let x = cwsmooth_linalg::Matrix::from_fn(n, d, |r, c| noise[r * d + c]);
    let y: Vec<f64> = (0..n).map(|r| x.row(r).iter().sum::<f64>()).collect();
    (x, y)
}

/// Tiny CLI-argument helper: `--key value` pairs with defaults.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Looks up `--name v`, parsing into `T`, or returns `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `true` if the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Creates (if needed) and returns the results directory for CSV/PGM output.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Formats a float with 3 decimals for tables.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_sim::segments::{power_info, power_segment, SimConfig};

    #[test]
    fn roster_has_eight_methods() {
        let seg = power_segment(SimConfig::new(1, 400));
        let roster = method_roster(&seg);
        let names: Vec<&str> = roster.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Tuncer", "Bodik", "Lan", "CS-5", "CS-10", "CS-20", "CS-40", "CS-All"]
        );
    }

    #[test]
    fn experiment_row_is_populated() {
        let seg = power_segment(SimConfig::new(2, 600));
        let info = power_info();
        let roster = method_roster(&seg);
        // Lan features are cheap; histogram engine keeps the test fast.
        let row = run_experiment(&seg, &info, &roster[2], 42, 1, SplitAlgo::histogram());
        assert_eq!(row.method, "Lan");
        assert_eq!(row.signature_size, 47 * LAN_WR);
        assert!(row.feature_sets > 50);
        assert!(row.generation_seconds >= 0.0);
        assert!(row.ml_score > 0.0 && row.ml_score <= 1.0);
    }

    #[test]
    fn args_parse_defaults() {
        let args = Args {
            raw: vec!["--samples".into(), "123".into(), "--quick".into()],
        };
        assert_eq!(args.get("samples", 5usize), 123);
        assert_eq!(args.get("seed", 7u64), 7);
        assert!(args.has("quick"));
        assert!(!args.has("verbose"));
    }
}
