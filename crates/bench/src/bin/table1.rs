//! Regenerates **Table I**: the overview of the HPC-ODA dataset collection.
//!
//! Builds each simulated segment at its default (laptop-scale) size and
//! prints the same columns the paper reports: system, nodes, sensors, data
//! points, length, sampling interval, feature sets, wl and ws. Absolute
//! sizes are scaled down from the paper's multi-day traces; the structure
//! (sensor counts, window geometry, tasks) matches exactly.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin table1 [--seed S] [--scale F]`

use cwsmooth_bench::Args;
use cwsmooth_sim::segments::{
    application_info, application_segment, cross_arch_info, cross_arch_segments, fault_info,
    fault_segment, infrastructure_info, infrastructure_segment, power_info, power_segment,
    SimConfig,
};

fn human_duration(samples: usize, interval_ms: u64) -> String {
    let secs = samples as f64 * interval_ms as f64 / 1000.0;
    if secs >= 3600.0 {
        format!("{:.1}h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{secs:.0}s")
    }
}

fn human_interval(ms: u64) -> String {
    if ms >= 1000 {
        format!("{}s", ms / 1000)
    } else {
        format!("{ms}ms")
    }
}

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 1.0);

    println!("TABLE I — The HPC-ODA dataset collection (simulated reproduction)");
    println!(
        "{:<15} {:<28} {:>5} {:>8} {:>12} {:>8} {:>9} {:>13} {:>5} {:>4}",
        "Segment",
        "HPC System",
        "Nodes",
        "Sensors",
        "Data Points",
        "Length",
        "Sampling",
        "Feature Sets",
        "wl",
        "ws"
    );

    let mut rows = Vec::new();
    {
        let info = fault_info();
        let samples = (info.default_samples as f64 * scale) as usize;
        let seg = fault_segment(SimConfig::new(seed, samples));
        rows.push((info, seg.sensors(), seg.data_points(), samples));
    }
    {
        let info = application_info();
        let samples = (info.default_samples as f64 * scale) as usize;
        let seg = application_segment(SimConfig::new(seed, samples));
        rows.push((info, seg.sensors() / 16, seg.data_points(), samples));
    }
    {
        let info = power_info();
        let samples = (info.default_samples as f64 * scale) as usize;
        let seg = power_segment(SimConfig::new(seed, samples));
        rows.push((info, seg.sensors(), seg.data_points(), samples));
    }
    {
        let info = infrastructure_info();
        let samples = (info.default_samples as f64 * scale) as usize;
        let seg = infrastructure_segment(SimConfig::new(seed, samples));
        rows.push((info, seg.sensors(), seg.data_points(), samples));
    }
    {
        let info = cross_arch_info();
        let samples = (info.default_samples as f64 * scale) as usize;
        let segs = cross_arch_segments(SimConfig::new(seed, samples));
        let points: usize = segs.iter().map(|(_, s)| s.data_points()).sum();
        rows.push((info, segs[0].1.sensors(), points, samples));
    }

    for (info, sensors, points, samples) in rows {
        println!(
            "{:<15} {:<28} {:>5} {:>8} {:>12} {:>8} {:>9} {:>13} {:>5} {:>4}",
            info.name,
            info.system,
            info.nodes,
            if info.name == "Cross-Arch" {
                "(52,46,39)".to_string()
            } else {
                sensors.to_string()
            },
            points,
            human_duration(samples, info.sampling_interval_ms),
            human_interval(info.sampling_interval_ms),
            info.feature_sets(samples),
            info.wl,
            info.ws,
        );
    }
    println!();
    println!("Note: lengths are scaled down from the paper's multi-day traces;");
    println!("sensor counts, window geometry (wl/ws in samples) and tasks match Table I.");
}
