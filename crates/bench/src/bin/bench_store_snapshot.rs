//! Machine-readable signature-store performance snapshot: times ingest
//! per encoding, exact vs coarse-indexed k-NN queries and the on-disk
//! compression ratio on the fleet-sim workload, writing
//! `BENCH_store.json` so future PRs can track the store's perf
//! trajectory without parsing criterion output.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin
//! bench_store_snapshot [--reps R] [--out PATH]` (`BENCH_QUICK=1`
//! forces reps = 1 and a smaller workload for CI smoke runs).

use cwsmooth_bench::Args;
use cwsmooth_core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth_core::fleet::FleetEngine;
use cwsmooth_data::WindowSpec;
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth_store::{
    Compactor, CompactorConfig, Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig,
};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const L: usize = 4;
const TRAIN: usize = 256;

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cwsmooth-store-snap-{tag}-{}", std::process::id()))
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args = Args::capture();
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let reps: usize = if quick { 1 } else { args.get("reps", 5) };
    let out_path: String = args.get("out", "BENCH_store.json".to_string());
    let nodes: usize = if quick { 16 } else { 64 };
    let frames: usize = if quick { 600 } else { 2500 };

    let spec = WindowSpec::new(30, 10).unwrap();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes).with_gaps(5));
    let methods: Vec<CsMethod> = (0..nodes)
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), L).unwrap()
        })
        .collect();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, value: f64| {
        println!("{name}: {value:.3}");
        results.push((name.to_string(), value));
    };

    // Ingest throughput + compression ratio per encoding, fleet workload.
    let mut query_store: Option<SignatureStore> = None;
    for (tag, encoding) in [
        ("exact", Encoding::Exact),
        ("quant8", Encoding::Quant8),
        ("quant16", Encoding::Quant16),
    ] {
        let dir = tmpdir(tag);
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StoreConfig::default().with_encoding(encoding);
        // Setup (store creation, engine construction) happens outside the
        // timer: the recorded number is frame ingest + flush only — the
        // hot path — so the snapshot tracks encoding cost, not setup.
        let mut last: Option<SignatureStore> = None;
        let mut samples: Vec<f64> = Vec::new();
        for _ in 0..reps.max(1) {
            std::fs::remove_dir_all(&dir).ok();
            let mut store = SignatureStore::open(&dir, spec, L, cfg).unwrap();
            let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
            let mut frame = engine.frame();
            let t0 = Instant::now();
            for f in 0..frames {
                let t = TRAIN + f;
                frame.clear();
                for node in 0..nodes {
                    if !scenario.has_gap(node, t) {
                        scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
                    }
                }
                engine.ingest_frame_sink(&frame, &mut store).unwrap();
            }
            store.flush().unwrap();
            samples.push(t0.elapsed().as_secs_f64() * 1000.0);
            last = Some(store);
        }
        samples.sort_by(f64::total_cmp);
        let ms = samples[samples.len() / 2];
        let store = last.unwrap();
        let events = store.stats().events;
        record(
            &format!("store_ingest_{tag}_kevents_per_s"),
            events as f64 / ms,
        );
        let raw = events * (8 + 8 * store.dim() as u64);
        record(
            &format!("store_compression_{tag}_x"),
            raw as f64 / store.bytes_on_disk() as f64,
        );
        if encoding == Encoding::Exact {
            query_store = Some(store);
        } else {
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // Query latency: exact scan vs coarse-indexed, same corpus.
    let store = query_store.unwrap();
    let index = SignatureIndex::build(&store, Distance::L2)
        .unwrap()
        .with_coarse(24, 10)
        .unwrap();
    let mut queries: Vec<Vec<f64>> = Vec::new();
    store
        .for_each(|_, w, feats| {
            if w % 37 == 0 && queries.len() < 64 {
                queries.push(feats.to_vec());
            }
        })
        .unwrap();
    record("store_index_size", index.len() as f64);
    let ms = time_ms(reps, || {
        for q in &queries {
            black_box(index.query(q, 10).unwrap());
        }
    });
    record(
        "store_query_exact_k10_us",
        ms * 1000.0 / queries.len() as f64,
    );
    let ms = time_ms(reps, || {
        for q in &queries {
            black_box(index.query_indexed(q, 10, 4).unwrap());
        }
    });
    record(
        "store_query_indexed_k10_us",
        ms * 1000.0 / queries.len() as f64,
    );
    let dir = store.dir().to_path_buf();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    // ---- Size sweep: 10k / 100k / 1M synthetic signatures ----
    //
    // Gated by STORE_SWEEP_MAX: CI pins it to 100_000 so the smoke run
    // stays minutes-cheap; the 1M tier is a local/nightly run. Each
    // tier reports ingest, background compaction, cold (re-clustering)
    // vs warm (knn.idx sidecar) index training, and query latency
    // through the IVF-PQ path.
    let sweep_max: u64 = std::env::var("STORE_SWEEP_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 10_000 } else { 1_000_000 });
    let mut state: u64 = 0x2545_f491_4f6c_dd1d;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for &size in &[10_000u64, 100_000, 1_000_000] {
        if size > sweep_max {
            println!("store_sweep_{size}: skipped (STORE_SWEEP_MAX={sweep_max})");
            continue;
        }
        let tag = format!("sweep_{size}");
        let dir = tmpdir(&tag);
        std::fs::remove_dir_all(&dir).ok();
        // Segment size scales with the tier so every tier actually
        // seals a handful of segments for the compactor to merge.
        let segment_events = (size / 16).max(1024);
        let cfg = StoreConfig::default().with_segment_events(segment_events);
        let mut store = SignatureStore::open(&dir, spec, L, cfg).unwrap();
        let nodes = 256u32;
        let per_node = size / nodes as u64;
        let mut sig = CsSignature {
            re: vec![0.0; L],
            im: vec![0.0; L],
        };
        let t0 = Instant::now();
        for w in 0..per_node {
            for n in 0..nodes {
                // Clustered corpus: each node orbits its own center, so
                // the coarse quantizer has real structure to exploit.
                let c = n as f64 / nodes as f64;
                for i in 0..L {
                    sig.re[i] = c + 0.05 * next();
                    sig.im[i] = 0.5 - c + 0.05 * next();
                }
                store.push(n, w, &sig).unwrap();
            }
            // Periodic flushes, as a live collector would issue: blocks
            // reach the active segment continuously, so segment rolls
            // (and therefore compaction work) happen at every tier.
            let cadence = (segment_events / nodes as u64 / 4).max(1);
            if (w + 1).is_multiple_of(cadence) {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        record(
            &format!("store_{tag}_ingest_kevents_per_s"),
            store.stats().events as f64 / (t0.elapsed().as_secs_f64() * 1000.0),
        );

        // Background compaction down to a lean layout (every sealed
        // segment a candidate; cascading runs converge on one file).
        let mut compactor = Compactor::new(CompactorConfig {
            small_events: Some(u64::MAX),
            ..CompactorConfig::default()
        })
        .unwrap();
        let t0 = Instant::now();
        let commits = compactor.run_until_idle(&mut store).unwrap();
        compactor.shutdown().unwrap();
        record(
            &format!("store_{tag}_compact_ms"),
            t0.elapsed().as_secs_f64() * 1000.0,
        );
        record(&format!("store_{tag}_compact_runs"), commits as f64);

        // Cold training (k-means + PQ, sidecar written) vs warm reopen
        // (quantizer adopted from knn.idx). The build/scan cost is kept
        // outside both timers so the ratio isolates re-clustering
        // against the sidecar load.
        let base = SignatureIndex::build(&store, Distance::L2).unwrap();
        let t0 = Instant::now();
        let index = base.with_coarse_persisted(&store, 256, 8, Some(4)).unwrap();
        let cold_ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert!(!index.quantizer_cached(), "first training must be cold");
        let base = SignatureIndex::build(&store, Distance::L2).unwrap();
        let t0 = Instant::now();
        let warm = base.with_coarse_persisted(&store, 256, 8, Some(4)).unwrap();
        let warm_ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert!(warm.quantizer_cached(), "second training must hit knn.idx");
        record(&format!("store_{tag}_train_cold_ms"), cold_ms);
        record(&format!("store_{tag}_train_warm_ms"), warm_ms);
        record(
            &format!("store_{tag}_train_warm_speedup_x"),
            cold_ms / warm_ms.max(1e-6),
        );

        // Query latency: a thin exact baseline plus the IVF-PQ path.
        let stride = (size / 64).max(1);
        let mut queries: Vec<Vec<f64>> = Vec::new();
        let mut seen = 0u64;
        store
            .for_each(|_, _, feats| {
                if seen.is_multiple_of(stride) && queries.len() < 64 {
                    queries.push(feats.to_vec());
                }
                seen += 1;
            })
            .unwrap();
        let exact_queries = &queries[..queries.len().min(8)];
        let ms = time_ms(1, || {
            for q in exact_queries {
                black_box(index.query(q, 10).unwrap());
            }
        });
        record(
            &format!("store_{tag}_query_exact_k10_us"),
            ms * 1000.0 / exact_queries.len() as f64,
        );
        let ms = time_ms(reps.min(3), || {
            for q in &queries {
                black_box(index.query_indexed(q, 10, 8).unwrap());
            }
        });
        record(
            &format!("store_{tag}_query_indexed_k10_us"),
            ms * 1000.0 / queries.len() as f64,
        );
        drop(index);
        drop(warm);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Assemble JSON by hand (flat snapshot, no serde needed).
    let mut json = String::from("{\n  \"schema\": 1,\n  \"pr\": 4,\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"reps\": {reps},\n  \"nodes\": {nodes},\n  \"frames\": {frames},\n"
    ));
    json.push_str("  \"current\": {\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");
}
