//! Machine-readable signature-store performance snapshot: times ingest
//! per encoding, exact vs coarse-indexed k-NN queries and the on-disk
//! compression ratio on the fleet-sim workload, writing
//! `BENCH_store.json` so future PRs can track the store's perf
//! trajectory without parsing criterion output.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin
//! bench_store_snapshot [--reps R] [--out PATH]` (`BENCH_QUICK=1`
//! forces reps = 1 and a smaller workload for CI smoke runs).

use cwsmooth_bench::Args;
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::fleet::FleetEngine;
use cwsmooth_data::WindowSpec;
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth_store::{Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const L: usize = 4;
const TRAIN: usize = 256;

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cwsmooth-store-snap-{tag}-{}", std::process::id()))
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args = Args::capture();
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let reps: usize = if quick { 1 } else { args.get("reps", 5) };
    let out_path: String = args.get("out", "BENCH_store.json".to_string());
    let nodes: usize = if quick { 16 } else { 64 };
    let frames: usize = if quick { 600 } else { 2500 };

    let spec = WindowSpec::new(30, 10).unwrap();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes).with_gaps(5));
    let methods: Vec<CsMethod> = (0..nodes)
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), L).unwrap()
        })
        .collect();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, value: f64| {
        println!("{name}: {value:.3}");
        results.push((name.to_string(), value));
    };

    // Ingest throughput + compression ratio per encoding, fleet workload.
    let mut query_store: Option<SignatureStore> = None;
    for (tag, encoding) in [
        ("exact", Encoding::Exact),
        ("quant8", Encoding::Quant8),
        ("quant16", Encoding::Quant16),
    ] {
        let dir = tmpdir(tag);
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StoreConfig::default().with_encoding(encoding);
        // Setup (store creation, engine construction) happens outside the
        // timer: the recorded number is frame ingest + flush only — the
        // hot path — so the snapshot tracks encoding cost, not setup.
        let mut last: Option<SignatureStore> = None;
        let mut samples: Vec<f64> = Vec::new();
        for _ in 0..reps.max(1) {
            std::fs::remove_dir_all(&dir).ok();
            let mut store = SignatureStore::open(&dir, spec, L, cfg).unwrap();
            let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
            let mut frame = engine.frame();
            let t0 = Instant::now();
            for f in 0..frames {
                let t = TRAIN + f;
                frame.clear();
                for node in 0..nodes {
                    if !scenario.has_gap(node, t) {
                        scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
                    }
                }
                engine.ingest_frame_sink(&frame, &mut store).unwrap();
            }
            store.flush().unwrap();
            samples.push(t0.elapsed().as_secs_f64() * 1000.0);
            last = Some(store);
        }
        samples.sort_by(f64::total_cmp);
        let ms = samples[samples.len() / 2];
        let store = last.unwrap();
        let events = store.stats().events;
        record(
            &format!("store_ingest_{tag}_kevents_per_s"),
            events as f64 / ms,
        );
        let raw = events * (8 + 8 * store.dim() as u64);
        record(
            &format!("store_compression_{tag}_x"),
            raw as f64 / store.bytes_on_disk() as f64,
        );
        if encoding == Encoding::Exact {
            query_store = Some(store);
        } else {
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // Query latency: exact scan vs coarse-indexed, same corpus.
    let store = query_store.unwrap();
    let index = SignatureIndex::build(&store, Distance::L2)
        .unwrap()
        .with_coarse(24, 10)
        .unwrap();
    let mut queries: Vec<Vec<f64>> = Vec::new();
    store
        .for_each(|_, w, feats| {
            if w % 37 == 0 && queries.len() < 64 {
                queries.push(feats.to_vec());
            }
        })
        .unwrap();
    record("store_index_size", index.len() as f64);
    let ms = time_ms(reps, || {
        for q in &queries {
            black_box(index.query(q, 10).unwrap());
        }
    });
    record(
        "store_query_exact_k10_us",
        ms * 1000.0 / queries.len() as f64,
    );
    let ms = time_ms(reps, || {
        for q in &queries {
            black_box(index.query_indexed(q, 10, 4).unwrap());
        }
    });
    record(
        "store_query_indexed_k10_us",
        ms * 1000.0 / queries.len() as f64,
    );
    let dir = store.dir().to_path_buf();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    // Assemble JSON by hand (flat snapshot, no serde needed).
    let mut json = String::from("{\n  \"schema\": 1,\n  \"pr\": 4,\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"reps\": {reps},\n  \"nodes\": {nodes},\n  \"frames\": {frames},\n"
    ));
    json.push_str("  \"current\": {\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");
}
