//! Regenerates **Figure 4**: Jensen-Shannon divergence (a) and ML score
//! (b) as functions of the CS signature length `l`, including the
//! real-components-only (`-R`) variants.
//!
//! For each of the first four segments and each `l ∈ {5, 10, 20, 40, All}`:
//! compute the JS divergence between the CS signature set and the original
//! (sorted) data per Sec. IV-A2, and the 5-fold random-forest score. The
//! paper's expectations: JSD decreases monotonically in `l`, ML score
//! increases; dropping the imaginary parts adds ~0.2 JSD and hurts
//! Power/Fault most and Infrastructure least.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin fig4
//!   [--seed S] [--scale F] [--bins B]`

use cwsmooth_analysis::jsd::{cs_fidelity, cs_fidelity_real_only};
use cwsmooth_bench::{
    cross_validate, f3, parse_algo, results_dir, train_cs_model, Args, CS_BLOCK_SWEEP,
};
use cwsmooth_core::cs::CsMethod;
use cwsmooth_core::dataset::{build_dataset, DatasetOptions};
use cwsmooth_data::csv::TableWriter;
use cwsmooth_sim::segments::{
    application_info, application_segment, fault_info, fault_segment, infrastructure_info,
    infrastructure_segment, power_info, power_segment, SegmentInfo, SimConfig,
};

fn main() {
    let args = Args::capture();
    let algo = parse_algo(&args);
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 1.0);
    let bins: usize = args.get("bins", 64);

    let segments: Vec<(SegmentInfo, cwsmooth_data::Segment)> = vec![
        {
            let info = fault_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), fault_segment(SimConfig::new(seed, s)))
        },
        {
            let info = application_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), application_segment(SimConfig::new(seed, s)))
        },
        {
            let info = power_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), power_segment(SimConfig::new(seed, s)))
        },
        {
            let info = infrastructure_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (
                info.clone(),
                infrastructure_segment(SimConfig::new(seed, s)),
            )
        },
    ];

    let path = results_dir().join("fig4.csv");
    let file = std::fs::File::create(&path).expect("create fig4.csv");
    let mut table = TableWriter::new(
        file,
        &["segment", "l", "variant", "js_divergence", "ml_score"],
    )
    .unwrap();

    for (info, seg) in &segments {
        let model = train_cs_model(seg);
        let spec = info.window_spec();
        println!("\n=== {} ===", seg.name);
        println!(
            "{:>7} {:>10} {:>10} {:>12} {:>12}",
            "l", "JSD", "JSD-R", "Score", "Score-R"
        );
        for blocks in CS_BLOCK_SWEEP {
            let l = blocks.unwrap_or(seg.sensors());
            let cs = CsMethod::new(model.clone(), l).unwrap();
            let jsd = cs_fidelity(&cs, &seg.matrix, spec, bins);
            let jsd_r = cs_fidelity_real_only(&cs, &seg.matrix, spec, bins);

            let opts = DatasetOptions {
                spec,
                horizon: info.horizon,
            };
            let ds = build_dataset(seg, &cs, opts).expect("dataset");
            let score = cross_validate(&ds, seed, algo).mean_score();
            let cs_r = CsMethod::new(model.clone(), l).unwrap().real_only(true);
            let ds_r = build_dataset(seg, &cs_r, opts).expect("dataset -R");
            let score_r = cross_validate(&ds_r, seed, algo).mean_score();

            let l_label = if blocks.is_none() {
                "All".to_string()
            } else {
                l.to_string()
            };
            println!(
                "{:>7} {:>10} {:>10} {:>12} {:>12}",
                l_label,
                f3(jsd),
                f3(jsd_r),
                f3(score),
                f3(score_r)
            );
            for (variant, j, s) in [("full", jsd, score), ("real-only", jsd_r, score_r)] {
                table
                    .row(&[
                        seg.name.clone(),
                        l_label.clone(),
                        variant.to_string(),
                        format!("{j:.6}"),
                        format!("{s:.6}"),
                    ])
                    .unwrap();
            }
        }
    }
    println!("\nwrote {}", path.display());
}
