//! Machine-readable performance snapshot: times the forest-fit and CS
//! benches at the paper shapes with `std::time` and writes
//! `BENCH_ml.json`, so future PRs can track the perf trajectory without
//! parsing criterion output.
//!
//! The PR 2 baseline numbers embedded below were measured on the same
//! container immediately before the PR 3 engine rework (the 400×400
//! classifier number is the median of nine runs interleaved with the new
//! engine to cancel machine-load drift).
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin bench_snapshot
//!   [--reps R] [--out PATH]` (`BENCH_QUICK=1` forces reps = 1 for CI
//! smoke runs).

use cwsmooth_bench::{bench_classification_data, bench_regression_data, Args};
use cwsmooth_core::cs::CsTrainer;
use cwsmooth_linalg::Matrix;
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use cwsmooth_ml::SplitAlgo;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// PR 2 baseline timings (ms) at the same shapes, for speedup tracking.
const BASELINE_PR2_MS: &[(&str, f64)] = &[
    ("forest_classifier_fit_400x40", 22.94),
    ("forest_classifier_fit_400x400", 55.63),
    ("forest_regressor_fit_600x40", 375.72),
    ("forest_regressor_predict_600x40", 2.78),
];

fn structured_matrix(n: usize, t: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let phases: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0).collect();
    Matrix::from_fn(n, t, |r, c| {
        (c as f64 / 13.0 + phases[r]).sin() * (1.0 + r as f64 * 0.01)
    })
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args = Args::capture();
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let reps: usize = if quick { 1 } else { args.get("reps", 5) };
    let out_path: String = args.get("out", "BENCH_ml.json".to_string());

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ms: f64| {
        println!("{name}: {ms:.3} ms");
        results.push((name.to_string(), ms));
    };

    // Forest classifier fits (exact, default 64-bin hist, 256-bin hist).
    for (n, d) in [(400usize, 40usize), (400, 400)] {
        let (x, y) = bench_classification_data(n, d, 7, 3);
        let algos: [(&str, SplitAlgo); 3] = [
            ("", SplitAlgo::Exact),
            ("_hist", SplitAlgo::histogram()),
            ("_hist256", SplitAlgo::Histogram { max_bins: 256 }),
        ];
        for (suffix, algo) in algos {
            let ms = time_ms(reps, || {
                let mut rf = RandomForestClassifier::with_config(
                    ForestConfig::classification(1).with_split_algo(algo),
                );
                rf.fit(&x, &y).unwrap();
                black_box(&rf);
            });
            record(&format!("forest_classifier_fit_{n}x{d}{suffix}"), ms);
        }
    }

    // Forest regressor fit + predict.
    let (x, y) = bench_regression_data(600, 40, 5);
    for (suffix, algo) in [("", SplitAlgo::Exact), ("_hist", SplitAlgo::histogram())] {
        let ms = time_ms(reps, || {
            let mut rf = RandomForestRegressor::with_config(
                ForestConfig::regression(2).with_split_algo(algo),
            );
            rf.fit(&x, &y).unwrap();
            black_box(&rf);
        });
        record(&format!("forest_regressor_fit_600x40{suffix}"), ms);
    }
    let mut fitted = RandomForestRegressor::with_config(ForestConfig::regression(2));
    fitted.fit(&x, &y).unwrap();
    let ms = time_ms(reps, || {
        black_box(fitted.predict(&x).unwrap());
    });
    record("forest_regressor_predict_600x40", ms);

    // CS training stage (dominated by the correlation matrix).
    for n in [64usize, 256] {
        let s = structured_matrix(n, 1024, 7);
        let ms = time_ms(reps, || {
            black_box(CsTrainer::default().train(&s).unwrap());
        });
        record(&format!("cs_training_stage_{n}x1024"), ms);
    }

    // Assemble JSON by hand (no serde needed for a flat snapshot).
    let mut json = String::from("{\n  \"schema\": 1,\n  \"pr\": 3,\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"reps\": {reps},\n"));
    json.push_str("  \"baseline_pr2_ms\": {\n");
    for (i, (name, ms)) in BASELINE_PR2_MS.iter().enumerate() {
        let comma = if i + 1 < BASELINE_PR2_MS.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!("    \"{name}\": {ms}{comma}\n"));
    }
    json.push_str("  },\n  \"current_ms\": {\n");
    for (i, (name, ms)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ms:.3}{comma}\n"));
    }
    json.push_str("  },\n  \"speedup_vs_pr2\": {\n");
    let mut lines = Vec::new();
    for (name, base) in BASELINE_PR2_MS {
        // Exact-engine rows compare like-for-like; hist rows compare the
        // opt-in engine against the same baseline shape.
        for (cur_name, cur) in &results {
            if let Some(rest) = cur_name.strip_prefix(name) {
                if rest.is_empty() || rest.starts_with("_hist") {
                    lines.push(format!("    \"{cur_name}\": {:.2}", base / cur));
                }
            }
        }
    }
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");
}
