//! Regenerates **Figure 3**: testing times (a), signature sizes (b) and
//! machine-learning scores (c) for every method on the first four HPC-ODA
//! segments.
//!
//! For each segment × {Tuncer, Bodik, Lan, CS-5/10/20/40/All}: extract the
//! windowed feature dataset (timed — Fig. 3a bottom bars), run 5-fold
//! cross-validation with a 50-tree random forest (timed — Fig. 3a top
//! bars), and report the signature size (Fig. 3b) and the weighted F1 /
//! `1 − NRMSE` score (Fig. 3c). Results also land in
//! `results/fig3.csv`.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin fig3
//!   [--seed S] [--reps R] [--scale F] [--algo exact|hist|hist256]`
//! `--scale` multiplies the default per-segment sample counts (use < 1 for
//! a quick smoke run).

use cwsmooth_bench::{
    f3, method_roster, parse_algo, results_dir, run_experiment, Args, ExperimentRow,
};
use cwsmooth_data::csv::TableWriter;
use cwsmooth_sim::segments::{
    application_info, application_segment, fault_info, fault_segment, infrastructure_info,
    infrastructure_segment, power_info, power_segment, SegmentInfo, SimConfig,
};

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let reps: usize = args.get("reps", 1);
    let scale: f64 = args.get("scale", 1.0);
    let algo = parse_algo(&args);

    let segments: Vec<(SegmentInfo, cwsmooth_data::Segment)> = vec![
        {
            let info = fault_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), fault_segment(SimConfig::new(seed, s)))
        },
        {
            let info = application_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), application_segment(SimConfig::new(seed, s)))
        },
        {
            let info = power_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), power_segment(SimConfig::new(seed, s)))
        },
        {
            let info = infrastructure_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (
                info.clone(),
                infrastructure_segment(SimConfig::new(seed, s)),
            )
        },
    ];

    let mut rows: Vec<ExperimentRow> = Vec::new();
    for (info, seg) in &segments {
        println!(
            "\n=== {} ({} sensors, {} samples, {:?}) ===",
            seg.name,
            seg.sensors(),
            seg.samples(),
            seg.task()
        );
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>9} {:>9}",
            "Method", "SigSize", "Sets", "Gen[s]", "CV[s]", "Score"
        );
        let roster = method_roster(seg);
        for named in &roster {
            let row = run_experiment(seg, info, named, seed, reps, algo);
            println!(
                "{:<8} {:>9} {:>9} {:>10} {:>9} {:>9}",
                row.method,
                row.signature_size,
                row.feature_sets,
                f3(row.generation_seconds),
                f3(row.cv_seconds),
                f3(row.ml_score)
            );
            rows.push(row);
        }
    }

    // Shape checks mirroring the paper's claims.
    println!("\n--- shape summary (paper expectations) ---");
    for (info, _) in &segments {
        let seg_rows: Vec<&ExperimentRow> =
            rows.iter().filter(|r| r.segment == info.name).collect();
        let get = |m: &str| seg_rows.iter().find(|r| r.method == m).unwrap();
        let tuncer = get("Tuncer");
        let cs20 = get("CS-20");
        let cs_all = get("CS-All");
        println!(
            "{:<15} size CS-20/Tuncer = {:>5.2}x smaller | time CS-20/Tuncer = {:>5.2}x faster | score CS-All−Tuncer = {:+.3}",
            info.name,
            tuncer.signature_size as f64 / cs20.signature_size as f64,
            (tuncer.generation_seconds + tuncer.cv_seconds)
                / (cs20.generation_seconds + cs20.cv_seconds).max(1e-9),
            cs_all.ml_score - tuncer.ml_score,
        );
    }

    let path = results_dir().join("fig3.csv");
    let file = std::fs::File::create(&path).expect("create fig3.csv");
    let mut table = TableWriter::new(
        file,
        &[
            "segment",
            "method",
            "signature_size",
            "feature_sets",
            "generation_seconds",
            "cv_seconds",
            "ml_score",
        ],
    )
    .unwrap();
    for r in &rows {
        table
            .row(&[
                r.segment.clone(),
                r.method.clone(),
                r.signature_size.to_string(),
                r.feature_sets.to_string(),
                format!("{:.6}", r.generation_seconds),
                format!("{:.6}", r.cv_seconds),
                format!("{:.6}", r.ml_score),
            ])
            .unwrap();
    }
    println!("\nwrote {}", path.display());
}
