//! Regenerates **Figure 6**: signature heatmaps (real and imaginary
//! components, 160 blocks) for Kripke, Linpack and Quicksilver runs from
//! the Application segment.
//!
//! The paper's qualitative expectations, visible in the outputs:
//! * Kripke — clear iterative behaviour in both components;
//! * Linpack — constant load with a pronounced initialization phase;
//! * Quicksilver — light load but a periodic pattern at the bottom of the
//!   imaginary components (oscillating CPU frequency).
//!
//! Writes `results/fig6_<app>_{re,im}.pgm` plus ASCII previews.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin fig6 [--seed S] [--blocks L]`

use cwsmooth_analysis::GrayImage;
use cwsmooth_bench::{results_dir, Args};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_data::{LabelTrack, WindowSpec};
use cwsmooth_sim::apps::AppKind;
use cwsmooth_sim::segments::{application_info, application_segment, SimConfig};

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let blocks: usize = args.get("blocks", 160);
    let samples: usize = args.get("samples", 4000);

    let info = application_info();
    println!("generating Application segment ({samples} samples)...");
    let seg = application_segment(SimConfig::new(seed, samples));
    let LabelTrack::Classes(labels) = &seg.labels else {
        unreachable!()
    };

    // One model trained on the whole segment, reused for every app
    // (the CS workflow: train once, apply to all new data).
    let model = CsTrainer::default().train(&seg.matrix).expect("training");
    let cs = CsMethod::new(model, blocks).expect("CS method");
    let spec = WindowSpec::new(info.wl, info.ws).unwrap();
    let dir = results_dir();

    for app in [AppKind::Kripke, AppKind::Linpack, AppKind::Quicksilver] {
        let class = app.class_id();
        let Some(start) = labels.iter().position(|&c| c == class) else {
            println!("warning: no {} run scheduled at this seed", app.name());
            continue;
        };
        let end = start + labels[start..].iter().take_while(|&&c| c == class).count();
        if end - start < info.wl + info.ws {
            println!(
                "warning: {} run too short ({} samples)",
                app.name(),
                end - start
            );
            continue;
        }
        let run = seg.matrix.col_window(start, end).expect("run window");
        let (re, im) = cs.signature_heatmaps(&run, spec).expect("heatmaps");

        let stem = app.name().to_lowercase();
        let re_path = dir.join(format!("fig6_{stem}_re.pgm"));
        let im_path = dir.join(format!("fig6_{stem}_im.pgm"));
        GrayImage::from_matrix(&re).save_pgm(&re_path).unwrap();
        GrayImage::from_matrix(&im).save_pgm(&im_path).unwrap();
        println!(
            "\n=== {} (samples {start}..{end}, {} windows) ===",
            app.name(),
            re.cols()
        );
        println!("real components ({} blocks):", re.rows());
        println!(
            "{}",
            GrayImage::from_matrix(&re)
                .resize_bilinear(20, 64)
                .to_ascii()
        );
        println!("imaginary components:");
        println!(
            "{}",
            GrayImage::from_matrix(&im)
                .resize_bilinear(20, 64)
                .to_ascii()
        );
        println!("wrote {} and {}", re_path.display(), im_path.display());
    }
}
