//! Machine-readable streaming-pipeline performance snapshot: events/s
//! through the fleet engine with one sink vs the full 3-sink
//! `Tee(store, detector, drift)` tree, plus per-event detector and
//! drift-monitor costs, writing `BENCH_pipeline.json` so future PRs can
//! track the dataflow's perf trajectory without parsing criterion
//! output.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin
//! bench_pipeline_snapshot [--reps R] [--out PATH]` (`BENCH_QUICK=1`
//! forces reps = 1 and a smaller workload for CI smoke runs).

use cwsmooth_analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth_bench::Args;
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::error::Result as CoreResult;
use cwsmooth_core::fleet::{FleetEngine, FleetEvent, FleetSink};
use cwsmooth_core::pipeline::Tee;
use cwsmooth_core::transport::{QueueConfig, QueuePolicy, QueueSink};
use cwsmooth_data::WindowSpec;
use cwsmooth_ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth_ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth_net::{BlockCodec, NetConfig, Server, ServerConfig, SocketSink, TcpAcceptor};
use cwsmooth_obs::Registry;
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const L: usize = 4;
const TRAIN: usize = 256;

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cwsmooth-pipe-snap-{tag}-{}", std::process::id()))
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A sink that only counts (the 1-sink lower bound on delivery cost).
#[derive(Default)]
struct Count(u64);

impl FleetSink for Count {
    fn on_event(&mut self, _event: &FleetEvent) -> CoreResult<()> {
        self.0 += 1;
        Ok(())
    }
}

fn detector_for(dim: usize) -> StreamingDetector {
    // A small forest over synthetic 2-class data at the signature shape;
    // the snapshot tracks per-event walk cost, not model quality.
    let x = cwsmooth_linalg::Matrix::from_fn(200, dim, |r, c| {
        ((r * 13 + c * 7) % 100) as f64 / 100.0 + (r % 2) as f64 * 0.4
    });
    let y: Vec<usize> = (0..200).map(|r| r % 2).collect();
    let mut forest = RandomForestClassifier::with_config(small_forest_config(5, true));
    forest.fit(&x, &y).unwrap();
    StreamingDetector::new(forest, DetectorConfig::default()).unwrap()
}

/// Parks the consumer thread behind a condvar while held, so the
/// producer's ingest cost can be timed without the consumer threads
/// competing for cycles (they sleep instead of draining). The envelope
/// pools warm up during a gated first phase and the measurement runs
/// over the second phase of the same stream.
struct Gate<S> {
    gate: Arc<(Mutex<bool>, Condvar)>,
    inner: S,
}

impl<S: FleetSink> FleetSink for Gate<S> {
    fn on_event(&mut self, event: &FleetEvent) -> CoreResult<()> {
        let (held, cv) = &*self.gate;
        let mut guard = held.lock().unwrap();
        while *guard {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        self.inner.on_event(event)
    }
}

fn gate_set(gate: &Arc<(Mutex<bool>, Condvar)>, value: bool) {
    let (held, cv) = &**gate;
    *held.lock().unwrap() = value;
    cv.notify_all();
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn drift_for() -> DriftMonitor {
    DriftMonitor::new(DriftConfig {
        bins: 8,
        window_events: 24,
        ..DriftConfig::default()
    })
}

fn main() {
    let args = Args::capture();
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let reps: usize = if quick { 1 } else { args.get("reps", 5) };
    let out_path: String = args.get("out", "BENCH_pipeline.json".to_string());
    let nodes: usize = if quick { 16 } else { 64 };
    let frames: usize = if quick { 600 } else { 2500 };

    let spec = WindowSpec::new(30, 10).unwrap();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes));
    let methods: Vec<CsMethod> = (0..nodes)
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), L).unwrap()
        })
        .collect();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, value: f64| {
        println!("{name}: {value:.3}");
        results.push((name.to_string(), value));
    };

    // Shared frame-fill closure (generation cost is part of every
    // variant, so the 1-sink vs 3-sink delta isolates the sink tree).
    let run_frames = |engine: &mut FleetEngine, mut sink: &mut dyn FleetSink| {
        let mut frame = engine.frame();
        for f in 0..frames {
            let t = TRAIN + f;
            frame.clear();
            for node in 0..nodes {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
            // Through the &mut blanket impl: S = &mut dyn FleetSink.
            engine.ingest_frame_sink(&frame, &mut sink).unwrap();
        }
    };

    // ---- 1-sink baseline: counting sink (pure engine + delivery).
    let mut events_per_run = 0u64;
    let ms_count = time_ms(reps, || {
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut sink = Count::default();
        run_frames(&mut engine, &mut sink);
        events_per_run = sink.0;
        black_box(sink.0);
    });
    record(
        "pipeline_1sink_count_kevents_per_s",
        events_per_run as f64 / ms_count,
    );

    // ---- 1-sink store (persistence only).
    let dir = tmpdir("store1");
    let ms_store = time_ms(reps, || {
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut store = SignatureStore::open(
            &dir,
            spec,
            L,
            StoreConfig::default().with_encoding(Encoding::Quant8),
        )
        .unwrap();
        run_frames(&mut engine, &mut store);
        store.flush().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
    record(
        "pipeline_1sink_store_kevents_per_s",
        events_per_run as f64 / ms_store,
    );

    // ---- 3-sink Tee(store, detector, drift): the full ODA loop.
    let dir = tmpdir("tee3");
    let ms_tee = time_ms(reps, || {
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut store = SignatureStore::open(
            &dir,
            spec,
            L,
            StoreConfig::default().with_encoding(Encoding::Quant8),
        )
        .unwrap();
        let mut detector = detector_for(2 * L);
        let mut drift = drift_for();
        let mut tee = Tee((&mut store, &mut detector, &mut drift));
        run_frames(&mut engine, &mut tee);
        store.flush().unwrap();
        black_box(detector.events());
    });
    std::fs::remove_dir_all(&dir).ok();
    record(
        "pipeline_tee3_kevents_per_s",
        events_per_run as f64 / ms_tee,
    );
    record(
        "pipeline_tee3_overhead_vs_1sink_pct",
        100.0 * (ms_tee - ms_count) / ms_count,
    );

    // ---- Threaded tree, ingest-thread cost: the stream splits into a
    // warm-up phase (consumers gated so every branch mints and pools its
    // envelopes) and a timed phase whose pushes draw only recycled
    // envelopes. Consumers sleep on the gate during the timed phase, so
    // the number isolates what the producer pays per event for the
    // off-thread hand-off: one envelope copy + ring push per branch.
    // Steady state keeps the rings shallow (the consumers keep up), so
    // the producer is measured in cache-hot chunks of at most half the
    // ring: consumers parked while a chunk is pushed (timed), then
    // released to drain it (untimed). The warm-up/measure split is
    // chunk-aligned so the sync and queued variants time the same
    // frames.
    let capacity = 256usize;
    // Round each chunk up to whole emission periods (multiples of the
    // window stride) so every chunk carries the same frames-per-event
    // ratio and per-chunk costs are directly comparable.
    let chunk_frames = ((capacity / 2) * frames / events_per_run.max(1) as usize)
        .max(1)
        .div_ceil(spec.ws)
        * spec.ws;
    let split = (frames * 2 / 5) / chunk_frames * chunk_frames;
    let fill = |frame: &mut cwsmooth_core::fleet::FleetFrame, t: usize| {
        frame.clear();
        for node in 0..nodes {
            scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
        }
    };

    // Matched synchronous baseline: the same chunked schedule into one
    // counting sink (the existing 1-sink metric times engine + sink
    // construction too; this one times only the chunks after the
    // warm-up split). Both samples report *per-chunk* ns/event; the
    // medians over all chunks of all interleaved passes are what get
    // compared, so a scheduler steal only poisons the ~1 ms chunk it
    // lands in, not a whole pass.
    let seg_reps = if quick { 1 } else { reps.max(1) * 4 };
    let sync_sample = || {
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut frame = engine.frame();
        let mut sink = Count::default();
        let mut chunks = Vec::new();
        let mut f = 0usize;
        while f < frames {
            let chunk_end = (f + chunk_frames).min(frames);
            let timing = f >= split;
            let events_before = engine.stats().events;
            let t = Instant::now();
            for ff in f..chunk_end {
                fill(&mut frame, TRAIN + ff);
                engine.ingest_frame_sink(&frame, &mut sink).unwrap();
            }
            let ns = t.elapsed().as_nanos() as f64;
            let ev = engine.stats().events - events_before;
            if timing && ev > 0 {
                chunks.push(ns / ev as f64);
            }
            f = chunk_end;
        }
        black_box(sink.0);
        chunks
    };

    let dir = tmpdir("queued");
    // `instrument` is the observability A/B switch: the same ingest
    // path with the engine wired to a metrics registry (per-shard
    // ingest-span histograms + frame/event/gap counters) and every
    // queue branch keeping live `cws_queue_*` series. The delta over
    // the bare variant is what the metrics plane costs the ingest
    // thread per event.
    let queued_sample = |instrument: bool| {
        std::fs::remove_dir_all(&dir).ok();
        let registry = Registry::new();
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        if instrument {
            engine.attach_metrics(&registry);
        }
        let mut frame = engine.frame();
        let store = SignatureStore::open(
            &dir,
            spec,
            L,
            StoreConfig::default().with_encoding(Encoding::Quant8),
        )
        .unwrap();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let cfg = QueueConfig {
            capacity,
            policy: QueuePolicy::Block,
        };
        let gated = |inner| Gate {
            gate: Arc::clone(&gate),
            inner,
        };
        let queue = |inner: Box<dyn FleetSink + Send>, label: &str| {
            if instrument {
                QueueSink::with_metrics(gated(inner), cfg, &registry, label)
            } else {
                QueueSink::with_config(gated(inner), cfg)
            }
        };
        let mut tee = Tee((
            queue(Box::new(store), "store"),
            queue(Box::new(detector_for(2 * L)), "detector"),
            queue(Box::new(drift_for()), "drift"),
        ));
        let mut f = 0usize;
        let mut chunks = Vec::new();
        while f < frames {
            let chunk_end = (f + chunk_frames).min(frames);
            // Chunks before the split warm the envelope pools, ring
            // slots, and consumer-side buffers; chunks after it are
            // the measurement.
            let timing = f >= split;
            gate_set(&gate, true);
            // Primer (untimed): ingest until one emission burst lands
            // and every consumer has woken — popped an event and
            // blocked on the gate — so the timed pushes see a *live*
            // consumer (steady state), not a parked one whose unpark
            // syscall would pollute the per-event cost.
            let ev0 = engine.stats().events;
            while f < chunk_end && engine.stats().events == ev0 {
                fill(&mut frame, TRAIN + f);
                engine.ingest_frame_sink(&frame, &mut tee).unwrap();
                f += 1;
            }
            let burst = (engine.stats().events - ev0) as usize;
            if burst > 0 {
                for q in [&tee.0 .0, &tee.0 .1, &tee.0 .2] {
                    while q.stats().depth >= burst {
                        std::thread::yield_now();
                    }
                }
            }
            let events_before = engine.stats().events;
            let t = Instant::now();
            for ff in f..chunk_end {
                fill(&mut frame, TRAIN + ff);
                engine.ingest_frame_sink(&frame, &mut tee).unwrap();
            }
            let ns = t.elapsed().as_nanos() as f64;
            let ev = engine.stats().events - events_before;
            if timing && ev > 0 {
                chunks.push(ns / ev as f64);
            }
            gate_set(&gate, false);
            for q in [&tee.0 .0, &tee.0 .1, &tee.0 .2] {
                while q.stats().depth > 0 {
                    std::thread::yield_now();
                }
            }
            f = chunk_end;
        }
        assert!(!chunks.is_empty(), "no events in the timed chunks");
        let Tee((qs, qd, qm)) = tee;
        for q in [qs, qd, qm] {
            q.join().1.unwrap();
        }
        chunks
    };

    let mut sync_chunks = Vec::new();
    let mut queued_chunks = Vec::new();
    let mut instrumented_chunks = Vec::new();
    // Interleave bare and instrumented passes so drift in machine load
    // hits both arms of the A/B equally.
    for _ in 0..seg_reps {
        sync_chunks.extend(sync_sample());
        queued_chunks.extend(queued_sample(false));
        instrumented_chunks.extend(queued_sample(true));
    }
    std::fs::remove_dir_all(&dir).ok();
    let sync_ns = median(sync_chunks);
    let queued_ns = median(queued_chunks);
    let instrumented_ns = median(instrumented_chunks);
    record("pipeline_sync_ingest_kevents_per_s", 1e6 / sync_ns);
    record("pipeline_tee3_queued_ingest_kevents_per_s", 1e6 / queued_ns);
    record(
        "pipeline_tee3_queued_ingest_overhead_vs_1sink_pct",
        100.0 * (queued_ns / sync_ns - 1.0),
    );
    // The permanent observability gate: metrics-on vs bare ingest. The
    // instrumented arm pays per-shard span histograms, frame/event/gap
    // counters, and per-branch queue series on every push.
    record(
        "pipeline_instrumented_bare_ingest_kevents_per_s",
        1e6 / queued_ns,
    );
    record(
        "pipeline_instrumented_metrics_ingest_kevents_per_s",
        1e6 / instrumented_ns,
    );
    record(
        "pipeline_instrumented_overhead_pct",
        100.0 * (instrumented_ns / queued_ns - 1.0),
    );

    // ---- Threaded tree, end to end: consumers live the whole run,
    // timed until every branch has drained and joined (same closure
    // shape as the synchronous tee3 above, so the two are comparable).
    let dir = tmpdir("queued-e2e");
    let mut watermarks = [0usize; 3];
    let ms_queued_e2e = time_ms(reps, || {
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let store = SignatureStore::open(
            &dir,
            spec,
            L,
            StoreConfig::default().with_encoding(Encoding::Quant8),
        )
        .unwrap();
        let cfg = QueueConfig {
            capacity: 1024,
            policy: QueuePolicy::Block,
        };
        let mut tee = Tee((
            QueueSink::with_config(store, cfg),
            QueueSink::with_config(detector_for(2 * L), cfg),
            QueueSink::with_config(drift_for(), cfg),
        ));
        run_frames(&mut engine, &mut tee);
        let Tee((qs, qd, qm)) = tee;
        watermarks = [
            qs.stats().high_watermark,
            qd.stats().high_watermark,
            qm.stats().high_watermark,
        ];
        let (mut store, r) = qs.join();
        r.unwrap();
        qd.join().1.unwrap();
        qm.join().1.unwrap();
        store.flush().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
    record(
        "pipeline_tee3_queued_e2e_kevents_per_s",
        events_per_run as f64 / ms_queued_e2e,
    );
    record(
        "pipeline_tee3_queued_e2e_overhead_vs_sync_tee3_pct",
        100.0 * (ms_queued_e2e - ms_tee) / ms_tee,
    );
    record("pipeline_queued_store_high_watermark", watermarks[0] as f64);
    record(
        "pipeline_queued_detector_high_watermark",
        watermarks[1] as f64,
    );
    record("pipeline_queued_drift_high_watermark", watermarks[2] as f64);

    // ---- Per-event sink costs, isolated on a pre-collected event set.
    let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
    let mut events: Vec<FleetEvent> = Vec::new();
    {
        let mut frame = engine.frame();
        let mut out = Vec::new();
        for f in 0..frames.min(1200) {
            let t = TRAIN + f;
            frame.clear();
            for node in 0..nodes {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
            engine.ingest_frame_into(&frame, &mut out).unwrap();
            events.append(&mut out);
        }
    }
    let mut detector = detector_for(2 * L);
    let ms = time_ms(reps, || {
        for e in &events {
            detector.on_event(e).unwrap();
        }
        black_box(detector.events());
    });
    record(
        "pipeline_detector_us_per_event",
        ms * 1000.0 / events.len() as f64,
    );
    let mut drift = drift_for();
    let ms = time_ms(reps, || {
        for e in &events {
            drift.on_event(e).unwrap();
        }
        black_box(drift.events());
    });
    record(
        "pipeline_drift_us_per_event",
        ms * 1000.0 / events.len() as f64,
    );

    // ---- Cross-process transport A/B: the same pre-collected event
    // set pushed straight into a local store vs shipped through
    // `SocketSink` over loopback TCP into a server-owned store
    // (cwsmooth-net), timed end to end including the shutdown drain.
    // On this 1-CPU runner the producer and the server thread share
    // one core, so the delta is an *upper bound* on transport
    // overhead, not a LAN measurement.
    let store_cfg = || StoreConfig::default().with_encoding(Encoding::Quant8);
    let dir = tmpdir("net-direct");
    let ms_direct = time_ms(reps, || {
        std::fs::remove_dir_all(&dir).ok();
        let mut store = SignatureStore::open(&dir, spec, L, store_cfg()).unwrap();
        for e in &events {
            store.on_event(e).unwrap();
        }
        store.flush().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
    record(
        "pipeline_store_direct_kevents_per_s",
        events.len() as f64 / ms_direct,
    );

    let store_dir = tmpdir("net-store");
    let spill_dir = tmpdir("net-spill");
    let codec = BlockCodec::new(Encoding::Exact, L, spec).unwrap();
    let ms_socket = time_ms(reps, || {
        std::fs::remove_dir_all(&store_dir).ok();
        std::fs::remove_dir_all(&spill_dir).ok();
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let mut store = SignatureStore::open(&store_dir, spec, L, store_cfg()).unwrap();
        let server = std::thread::spawn(move || {
            let cfg = ServerConfig {
                stop_on_bye: true,
                ..ServerConfig::default()
            };
            let mut server = Server::new(codec, cfg).unwrap();
            server.serve(&mut acceptor, &mut store).unwrap();
            store.flush().unwrap();
        });
        let mut sink = SocketSink::tcp(addr, codec, &spill_dir, NetConfig::default()).unwrap();
        for e in &events {
            sink.on_event(e).unwrap();
        }
        let (_, r) = sink.finish(Duration::from_secs(60));
        r.unwrap();
        server.join().unwrap();
    });
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&spill_dir).ok();
    record(
        "pipeline_socket_store_kevents_per_s",
        events.len() as f64 / ms_socket,
    );
    record(
        "pipeline_socket_store_overhead_vs_direct_pct",
        100.0 * (ms_socket - ms_direct) / ms_direct,
    );

    // Assemble JSON by hand (flat snapshot, no serde needed).
    let mut json = String::from("{\n  \"schema\": 1,\n  \"pr\": 9,\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"reps\": {reps},\n  \"nodes\": {nodes},\n  \"frames\": {frames},\n"
    ));
    json.push_str("  \"current\": {\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");
}
