//! Machine-readable streaming-pipeline performance snapshot: events/s
//! through the fleet engine with one sink vs the full 3-sink
//! `Tee(store, detector, drift)` tree, plus per-event detector and
//! drift-monitor costs, writing `BENCH_pipeline.json` so future PRs can
//! track the dataflow's perf trajectory without parsing criterion
//! output.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin
//! bench_pipeline_snapshot [--reps R] [--out PATH]` (`BENCH_QUICK=1`
//! forces reps = 1 and a smaller workload for CI smoke runs).

use cwsmooth_analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth_bench::Args;
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::error::Result as CoreResult;
use cwsmooth_core::fleet::{FleetEngine, FleetEvent, FleetSink};
use cwsmooth_core::pipeline::Tee;
use cwsmooth_data::WindowSpec;
use cwsmooth_ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth_ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const L: usize = 4;
const TRAIN: usize = 256;

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cwsmooth-pipe-snap-{tag}-{}", std::process::id()))
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A sink that only counts (the 1-sink lower bound on delivery cost).
#[derive(Default)]
struct Count(u64);

impl FleetSink for Count {
    fn on_event(&mut self, _event: &FleetEvent) -> CoreResult<()> {
        self.0 += 1;
        Ok(())
    }
}

fn detector_for(dim: usize) -> StreamingDetector {
    // A small forest over synthetic 2-class data at the signature shape;
    // the snapshot tracks per-event walk cost, not model quality.
    let x = cwsmooth_linalg::Matrix::from_fn(200, dim, |r, c| {
        ((r * 13 + c * 7) % 100) as f64 / 100.0 + (r % 2) as f64 * 0.4
    });
    let y: Vec<usize> = (0..200).map(|r| r % 2).collect();
    let mut forest = RandomForestClassifier::with_config(small_forest_config(5, true));
    forest.fit(&x, &y).unwrap();
    StreamingDetector::new(forest, DetectorConfig::default()).unwrap()
}

fn drift_for() -> DriftMonitor {
    DriftMonitor::new(DriftConfig {
        bins: 8,
        window_events: 24,
        ..DriftConfig::default()
    })
}

fn main() {
    let args = Args::capture();
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let reps: usize = if quick { 1 } else { args.get("reps", 5) };
    let out_path: String = args.get("out", "BENCH_pipeline.json".to_string());
    let nodes: usize = if quick { 16 } else { 64 };
    let frames: usize = if quick { 600 } else { 2500 };

    let spec = WindowSpec::new(30, 10).unwrap();
    let scenario = FleetScenario::new(FleetSimConfig::new(42, nodes));
    let methods: Vec<CsMethod> = (0..nodes)
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), L).unwrap()
        })
        .collect();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, value: f64| {
        println!("{name}: {value:.3}");
        results.push((name.to_string(), value));
    };

    // Shared frame-fill closure (generation cost is part of every
    // variant, so the 1-sink vs 3-sink delta isolates the sink tree).
    let run_frames = |engine: &mut FleetEngine, mut sink: &mut dyn FleetSink| {
        let mut frame = engine.frame();
        for f in 0..frames {
            let t = TRAIN + f;
            frame.clear();
            for node in 0..nodes {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
            // Through the &mut blanket impl: S = &mut dyn FleetSink.
            engine.ingest_frame_sink(&frame, &mut sink).unwrap();
        }
    };

    // ---- 1-sink baseline: counting sink (pure engine + delivery).
    let mut events_per_run = 0u64;
    let ms_count = time_ms(reps, || {
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut sink = Count::default();
        run_frames(&mut engine, &mut sink);
        events_per_run = sink.0;
        black_box(sink.0);
    });
    record(
        "pipeline_1sink_count_kevents_per_s",
        events_per_run as f64 / ms_count,
    );

    // ---- 1-sink store (persistence only).
    let dir = tmpdir("store1");
    let ms_store = time_ms(reps, || {
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut store = SignatureStore::open(
            &dir,
            spec,
            L,
            StoreConfig::default().with_encoding(Encoding::Quant8),
        )
        .unwrap();
        run_frames(&mut engine, &mut store);
        store.flush().unwrap();
    });
    std::fs::remove_dir_all(&dir).ok();
    record(
        "pipeline_1sink_store_kevents_per_s",
        events_per_run as f64 / ms_store,
    );

    // ---- 3-sink Tee(store, detector, drift): the full ODA loop.
    let dir = tmpdir("tee3");
    let ms_tee = time_ms(reps, || {
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
        let mut store = SignatureStore::open(
            &dir,
            spec,
            L,
            StoreConfig::default().with_encoding(Encoding::Quant8),
        )
        .unwrap();
        let mut detector = detector_for(2 * L);
        let mut drift = drift_for();
        let mut tee = Tee((&mut store, &mut detector, &mut drift));
        run_frames(&mut engine, &mut tee);
        store.flush().unwrap();
        black_box(detector.events());
    });
    std::fs::remove_dir_all(&dir).ok();
    record(
        "pipeline_tee3_kevents_per_s",
        events_per_run as f64 / ms_tee,
    );
    record(
        "pipeline_tee3_overhead_vs_1sink_pct",
        100.0 * (ms_tee - ms_count) / ms_count,
    );

    // ---- Per-event sink costs, isolated on a pre-collected event set.
    let mut engine = FleetEngine::new(methods.clone(), spec).unwrap();
    let mut events: Vec<FleetEvent> = Vec::new();
    {
        let mut frame = engine.frame();
        let mut out = Vec::new();
        for f in 0..frames.min(1200) {
            let t = TRAIN + f;
            frame.clear();
            for node in 0..nodes {
                scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
            }
            engine.ingest_frame_into(&frame, &mut out).unwrap();
            events.append(&mut out);
        }
    }
    let mut detector = detector_for(2 * L);
    let ms = time_ms(reps, || {
        for e in &events {
            detector.on_event(e).unwrap();
        }
        black_box(detector.events());
    });
    record(
        "pipeline_detector_us_per_event",
        ms * 1000.0 / events.len() as f64,
    );
    let mut drift = drift_for();
    let ms = time_ms(reps, || {
        for e in &events {
            drift.on_event(e).unwrap();
        }
        black_box(drift.events());
    });
    record(
        "pipeline_drift_us_per_event",
        ms * 1000.0 / events.len() as f64,
    );

    // Assemble JSON by hand (flat snapshot, no serde needed).
    let mut json = String::from("{\n  \"schema\": 1,\n  \"pr\": 5,\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"reps\": {reps},\n  \"nodes\": {nodes},\n  \"frames\": {frames},\n"
    ));
    json.push_str("  \"current\": {\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");
}
