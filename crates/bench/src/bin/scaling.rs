//! Signature-rescaling portability experiment (the paper's Sec. IV-B
//! remark): train an ODA model at one signature resolution and feed it
//! signatures computed at another, rescaled like images — "compute a
//! single CS signature per HPC component that can then be scaled and fed
//! into different ODA models according to their needs."
//!
//! Protocol, on the Application segment:
//! 1. native: train and test on CS-`train_l` signatures (reference);
//! 2. down-scaled: train on CS-`train_l`, test on CS-`test_l` signatures
//!    resampled down to `train_l` (and the opposite direction);
//! 3. pruned: test signatures with the middle blocks removed
//!    (Sec. III-C3's aggressive compression), padded back by resampling.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin scaling
//!   [--seed S] [--samples N]`

use cwsmooth_bench::{f3, results_dir, train_cs_model, Args};
use cwsmooth_core::cs::CsMethod;
use cwsmooth_core::cs::CsSignature;
use cwsmooth_core::dataset::{build_dataset, DatasetOptions};
use cwsmooth_core::scale::{prune_middle, resample_signature};
use cwsmooth_data::csv::TableWriter;
use cwsmooth_linalg::Matrix;
use cwsmooth_ml::cv::{gather_rows, stratified_kfold};
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth_ml::metrics::f1_score;
use cwsmooth_sim::segments::{application_info, application_segment, SimConfig};

/// Rebuilds a feature matrix by mapping each row (a `[re..., im...]`
/// vector) through `f`.
fn map_rows(features: &Matrix, f: impl Fn(&CsSignature) -> CsSignature) -> Matrix {
    let l = features.cols() / 2;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(features.rows());
    for r in 0..features.rows() {
        let row = features.row(r);
        let sig = CsSignature {
            re: row[..l].to_vec(),
            im: row[l..].to_vec(),
        };
        rows.push(f(&sig).to_features());
    }
    Matrix::from_rows(rows).expect("uniform widths")
}

/// One train/test evaluation: fit on `train` features, score on `test`.
fn evaluate(train_x: &Matrix, test_x: &Matrix, labels: &[usize], seed: u64) -> f64 {
    let folds = stratified_kfold(labels, 5, seed).expect("folds");
    let fold = &folds[0];
    let xt = gather_rows(train_x, &fold.train);
    let yt: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
    let xs = gather_rows(test_x, &fold.test);
    let ys: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
    let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(seed));
    rf.fit(&xt, &yt).expect("fit");
    f1_score(&ys, &rf.predict(&xs).unwrap()).unwrap()
}

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let samples: usize = args.get("samples", application_info().default_samples);

    let info = application_info();
    println!("generating Application segment ({samples} samples)...");
    let seg = application_segment(SimConfig::new(seed, samples));
    let model = train_cs_model(&seg);
    let spec = info.window_spec();
    let opts = DatasetOptions { spec, horizon: 0 };

    let (low_l, high_l) = (10usize, 40usize);
    let ds_low = build_dataset(&seg, &CsMethod::new(model.clone(), low_l).unwrap(), opts).unwrap();
    let ds_high =
        build_dataset(&seg, &CsMethod::new(model.clone(), high_l).unwrap(), opts).unwrap();
    let labels = ds_low.classes.as_ref().unwrap().clone();
    assert_eq!(&labels, ds_high.classes.as_ref().unwrap());

    // Rescaled variants.
    let high_to_low = map_rows(&ds_high.features, |s| resample_signature(s, low_l).unwrap());
    let low_to_high = map_rows(&ds_low.features, |s| resample_signature(s, high_l).unwrap());
    // Pruned: drop the middle half of the CS-40 blocks. Train *and* test
    // on the pruned layout — the paper's claim is that the central
    // coefficients carry little information, not that a model trained on
    // full signatures survives their removal unannounced.
    let pruned = map_rows(&ds_high.features, |s| prune_middle(s, high_l / 2).unwrap());

    let rows: Vec<(&str, f64)> = vec![
        (
            "native CS-10 (reference)",
            evaluate(&ds_low.features, &ds_low.features, &labels, seed),
        ),
        (
            "native CS-40 (reference)",
            evaluate(&ds_high.features, &ds_high.features, &labels, seed),
        ),
        (
            "train CS-10 / test CS-40 downscaled to 10",
            evaluate(&ds_low.features, &high_to_low, &labels, seed),
        ),
        (
            "train CS-40 / test CS-10 upscaled to 40",
            evaluate(&ds_high.features, &low_to_high, &labels, seed),
        ),
        (
            "CS-40 middle-pruned to 20 blocks (train & test)",
            evaluate(&pruned, &pruned, &labels, seed),
        ),
    ];

    println!("\n{:<48} {:>8}", "configuration", "F1");
    let path = results_dir().join("scaling.csv");
    let file = std::fs::File::create(&path).unwrap();
    let mut table = TableWriter::new(file, &["configuration", "f1"]).unwrap();
    for (name, f1) in &rows {
        println!("{:<48} {:>8}", name, f3(*f1));
        table.row(&[name.to_string(), format!("{f1:.6}")]).unwrap();
    }
    println!("\nwrote {}", path.display());
    println!("expectation: rescaled/pruned rows within a few F1 points of native.");
}
