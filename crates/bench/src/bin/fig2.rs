//! Regenerates **Figure 2**: the three stages of the CS algorithm on AMG
//! data from the Application segment.
//!
//! Emits four heatmaps (raw data, sorted data, real signature parts,
//! imaginary signature parts) as PGM files under `results/`, plus ASCII
//! previews. The paper uses 16 nodes (~800 sensors) and 160 blocks.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin fig2 [--seed S] [--blocks L]`

use cwsmooth_analysis::GrayImage;
use cwsmooth_bench::{results_dir, Args};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_data::{LabelTrack, WindowSpec};
use cwsmooth_sim::apps::AppKind;
use cwsmooth_sim::segments::{application_info, application_segment, SimConfig};

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let blocks: usize = args.get("blocks", 160);
    let samples: usize = args.get("samples", 3000);

    let info = application_info();
    println!("generating Application segment ({samples} samples, 16 Skylake nodes)...");
    let seg = application_segment(SimConfig::new(seed, samples));

    // Locate one AMG run via the labels.
    let LabelTrack::Classes(labels) = &seg.labels else {
        unreachable!("application segment is classification")
    };
    let amg = AppKind::Amg.class_id();
    let start = labels
        .iter()
        .position(|&c| c == amg)
        .expect("an AMG run is scheduled");
    let end = start + labels[start..].iter().take_while(|&&c| c == amg).count();
    println!(
        "AMG run at samples {start}..{end} ({} sensors total)",
        seg.sensors()
    );

    let amg_matrix = seg.matrix.col_window(start, end).expect("run window");
    let model = CsTrainer::default().train(&amg_matrix).expect("training");
    let cs = CsMethod::new(model, blocks).expect("CS method");

    // Stage outputs.
    let sorted = cs.sort_window(&amg_matrix).expect("sorting stage");
    let spec = WindowSpec::new(info.wl, info.ws).unwrap();
    let (re, im) = cs
        .signature_heatmaps(&amg_matrix, spec)
        .expect("smoothing stage");

    let dir = results_dir();
    let save = |name: &str, img: &GrayImage| {
        let path = dir.join(name);
        img.save_pgm(&path).expect("write PGM");
        println!("wrote {}", path.display());
    };
    save("fig2_raw.pgm", &GrayImage::from_matrix(&amg_matrix));
    save("fig2_sorted.pgm", &GrayImage::from_matrix(&sorted));
    save("fig2_signature_re.pgm", &GrayImage::from_matrix(&re));
    save("fig2_signature_im.pgm", &GrayImage::from_matrix(&im));

    println!("\nsorted data (downscaled ASCII preview, darker = higher):");
    println!(
        "{}",
        GrayImage::from_matrix(&sorted)
            .resize_bilinear(24, 72)
            .to_ascii()
    );
    println!(
        "signature real parts ({} blocks x {} windows):",
        re.rows(),
        re.cols()
    );
    println!(
        "{}",
        GrayImage::from_matrix(&re)
            .resize_bilinear(24, 72)
            .to_ascii()
    );
    println!("signature imaginary parts:");
    println!(
        "{}",
        GrayImage::from_matrix(&im)
            .resize_bilinear(24, 72)
            .to_ascii()
    );
}
