//! Regenerates **Figure 7 and the Sec. IV-F portability experiment**:
//! application classification across three architectures with a single
//! model, plus LAMMPS signature heatmaps per architecture.
//!
//! Protocol (Sec. IV-F):
//! 1. apply CS independently to each node's data (Skylake: 52 sensors,
//!    Knights Landing: 46, Rome: 39), producing 20-block signatures;
//! 2. merge the three datasets into one;
//! 3. 5-fold cross-validate, classifying applications with no knowledge of
//!    the architecture.
//!
//! The paper reports F1 = 0.995 with a random forest and 0.992 with an
//! MLP, and stresses that the baselines *cannot run this experiment at
//! all* (their signature widths depend on the sensor count) — which this
//! binary demonstrates.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin fig7
//!   [--seed S] [--samples N] [--blocks L] [--algo exact|hist|hist256]`

use cwsmooth_analysis::GrayImage;
use cwsmooth_bench::{f3, parse_algo, results_dir, Args, K_FOLDS};
use cwsmooth_core::baselines::TuncerMethod;
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::dataset::{build_dataset, merge_datasets, DatasetOptions};
use cwsmooth_data::LabelTrack;
use cwsmooth_ml::cv::{gather_rows, stratified_kfold};
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier};
use cwsmooth_ml::metrics::f1_score;
use cwsmooth_ml::mlp::{MlpClassifier, MlpConfig};
use cwsmooth_sim::apps::AppKind;
use cwsmooth_sim::segments::{cross_arch_info, cross_arch_segments, SimConfig};

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let samples: usize = args.get("samples", cross_arch_info().default_samples);
    let blocks: usize = args.get("blocks", 20);
    let algo = parse_algo(&args);

    let info = cross_arch_info();
    let spec = info.window_spec();
    println!("generating Cross-Architecture segments ({samples} samples per node)...");
    let segs = cross_arch_segments(SimConfig::new(seed, samples));

    // Step 1: per-architecture CS datasets (independent models).
    let mut parts = Vec::new();
    let dir = results_dir();
    for (arch, seg) in &segs {
        let model = CsTrainer::default().train(&seg.matrix).expect("training");
        let cs = CsMethod::new(model, blocks).expect("CS");
        let ds = build_dataset(seg, &cs, DatasetOptions { spec, horizon: 0 }).expect("dataset");
        println!(
            "{:<35} {} sensors -> {} windows x {} features",
            arch.name(),
            seg.sensors(),
            ds.len(),
            ds.features.cols()
        );

        // LAMMPS heatmaps per architecture (Fig. 7 panels).
        let LabelTrack::Classes(labels) = &seg.labels else {
            unreachable!()
        };
        let class = AppKind::Lammps.class_id();
        if let Some(start) = labels.iter().position(|&c| c == class) {
            let end = start + labels[start..].iter().take_while(|&&c| c == class).count();
            if end - start >= spec.wl + spec.ws {
                let run = seg.matrix.col_window(start, end).unwrap();
                let model = CsTrainer::default().train(&seg.matrix).unwrap();
                let cs20 = CsMethod::new(model, blocks).unwrap();
                let (re, im) = cs20.signature_heatmaps(&run, spec).unwrap();
                let stem = format!(
                    "fig7_lammps_{}",
                    match arch {
                        cwsmooth_sim::ArchKind::Skylake => "skylake",
                        cwsmooth_sim::ArchKind::KnightsLanding => "knl",
                        _ => "rome",
                    }
                );
                GrayImage::from_matrix(&re)
                    .save_pgm(dir.join(format!("{stem}_re.pgm")))
                    .unwrap();
                GrayImage::from_matrix(&im)
                    .save_pgm(dir.join(format!("{stem}_im.pgm")))
                    .unwrap();
                println!("  LAMMPS heatmaps -> results/{stem}_{{re,im}}.pgm");
            }
        }
        parts.push(ds);
    }

    // Baselines cannot merge across architectures — show it.
    let tuncer_parts: Vec<_> = segs
        .iter()
        .map(|(_, seg)| {
            build_dataset(seg, &TuncerMethod, DatasetOptions { spec, horizon: 0 }).unwrap()
        })
        .collect();
    match merge_datasets(&tuncer_parts) {
        Err(e) => println!("\nTuncer baseline cannot merge across architectures: {e}"),
        Ok(_) => println!("\nunexpected: baseline merged?!"),
    }

    // Step 2: merge CS datasets.
    let merged = merge_datasets(&parts).expect("CS datasets are width-compatible");
    let labels = merged.classes.as_ref().unwrap();
    println!(
        "\nmerged dataset: {} windows x {} features, {} classes",
        merged.len(),
        merged.features.cols(),
        labels.iter().max().unwrap() + 1
    );

    // Step 3: 5-fold CV with RF and MLP.
    let folds = stratified_kfold(labels, K_FOLDS, seed).expect("folds");
    let mut rf_scores = Vec::new();
    let mut mlp_scores = Vec::new();
    for (i, fold) in folds.iter().enumerate() {
        let xt = gather_rows(&merged.features, &fold.train);
        let yt: Vec<usize> = fold.train.iter().map(|&s| labels[s]).collect();
        let xs = gather_rows(&merged.features, &fold.test);
        let ys: Vec<usize> = fold.test.iter().map(|&s| labels[s]).collect();

        let mut rf = RandomForestClassifier::with_config(
            ForestConfig::classification(seed.wrapping_add(i as u64)).with_split_algo(algo),
        );
        rf.fit(&xt, &yt).expect("rf fit");
        rf_scores.push(f1_score(&ys, &rf.predict(&xs).unwrap()).unwrap());

        let mut mlp = MlpClassifier::with_config(MlpConfig {
            seed: seed.wrapping_add(i as u64),
            max_epochs: 150,
            ..MlpConfig::default()
        });
        mlp.fit(&xt, &yt).expect("mlp fit");
        mlp_scores.push(f1_score(&ys, &mlp.predict(&xs).unwrap()).unwrap());
    }
    let rf_f1 = rf_scores.iter().sum::<f64>() / rf_scores.len() as f64;
    let mlp_f1 = mlp_scores.iter().sum::<f64>() / mlp_scores.len() as f64;

    println!("\n=== Sec. IV-F results ===");
    println!("random forest F1 (paper: 0.995): {}", f3(rf_f1));
    println!("MLP F1           (paper: 0.992): {}", f3(mlp_f1));
}
