//! Regenerates **Figure 5**: time to compute one signature as a function
//! of the aggregation window `wl` (a, with `n = 100`) and of the number of
//! dimensions `n` (b, with `wl = 100`).
//!
//! Random `S_w` matrices are generated for each size; each method computes
//! a signature 20 times and the median time is reported, exactly as in the
//! paper (Sec. IV-D). The CS training stage is excluded from timing — it
//! runs once offline. Expected shape: all methods linear in `n`;
//! Tuncer/Bodik super-linear in `wl` (their `O(wl log wl)` percentile
//! sorts); CS and Lan linear in `wl`; CS roughly an order of magnitude
//! faster than Tuncer/Bodik at the largest sizes.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin fig5
//!   [--seed S] [--reps R] [--max N]`

use cwsmooth_bench::{results_dir, Args, NamedMethod, CS_BLOCK_SWEEP, LAN_WR};
use cwsmooth_core::baselines::{BodikMethod, LanMethod, TuncerMethod};
use cwsmooth_core::cs::{CsMethod, CsTrainer, OrderingStrategy};
use cwsmooth_core::method::SignatureMethod;
use cwsmooth_data::csv::TableWriter;
use cwsmooth_linalg::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn random_matrix(n: usize, t: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let data: Vec<f64> = (0..n * t).map(|_| rng.gen::<f64>()).collect();
    Matrix::from_vec(n, t, data).unwrap()
}

/// The Fig. 5 roster. CS models use the identity ordering so that model
/// *training* (explicitly excluded from the paper's timing) stays O(n·t)
/// even at n = 10k; the timed sorting/smoothing stages are independent of
/// which permutation the model holds.
fn timing_roster(sw: &Matrix) -> Vec<NamedMethod> {
    let model = CsTrainer::default()
        .with_ordering(OrderingStrategy::Identity)
        .train(sw)
        .expect("training");
    let mut out: Vec<NamedMethod> = vec![
        NamedMethod {
            name: "Tuncer".into(),
            method: Box::new(TuncerMethod),
        },
        NamedMethod {
            name: "Bodik".into(),
            method: Box::new(BodikMethod),
        },
        NamedMethod {
            name: "Lan".into(),
            method: Box::new(LanMethod::new(LAN_WR).unwrap()),
        },
    ];
    for blocks in CS_BLOCK_SWEEP {
        // Fixed display names: `CsMethod::name()` would report e.g. CS-10
        // as "CS-All" whenever l happens to equal n.
        let (name, cs) = match blocks {
            Some(l) => (format!("CS-{l}"), CsMethod::new(model.clone(), l).unwrap()),
            None => (
                "CS-All".to_string(),
                CsMethod::all_blocks(model.clone()).unwrap(),
            ),
        };
        out.push(NamedMethod {
            name,
            method: Box::new(cs),
        });
    }
    out
}

fn median_time(method: &dyn SignatureMethod, sw: &Matrix, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let sig = method.compute(sw, None).expect("signature");
            std::hint::black_box(sig);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn sweep(
    axis: &str,
    sizes: &[usize],
    fixed: usize,
    reps: usize,
    seed: u64,
    table: &mut TableWriter<std::fs::File>,
) {
    println!(
        "\n=== Fig 5{}: sweep over {axis} (other dim fixed at {fixed}) ===",
        if axis == "wl" { 'a' } else { 'b' }
    );
    print!("{:>8}", axis);
    let mut header_done = false;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &size in sizes {
        let (n, wl) = if axis == "wl" {
            (fixed, size)
        } else {
            (size, fixed)
        };
        let sw = random_matrix(n, wl, &mut rng);
        let roster: Vec<NamedMethod> = timing_roster(&sw);
        if !header_done {
            for m in &roster {
                print!("{:>12}", m.name);
            }
            println!();
            header_done = true;
        }
        print!("{size:>8}");
        for named in &roster {
            let t = median_time(named.method.as_ref(), &sw, reps);
            print!("{:>12.6}", t);
            table
                .row(&[
                    axis.to_string(),
                    size.to_string(),
                    named.name.clone(),
                    format!("{t:.9}"),
                ])
                .unwrap();
        }
        println!();
    }
}

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 42);
    let reps: usize = args.get("reps", 20);
    let max: usize = args.get("max", 10_000);

    let sizes: Vec<usize> = [10usize, 1000, 2000, 4000, 6000, 8000, 10_000]
        .into_iter()
        .filter(|&s| s <= max)
        .collect();

    let path = results_dir().join("fig5.csv");
    let file = std::fs::File::create(&path).expect("create fig5.csv");
    let mut table = TableWriter::new(file, &["axis", "size", "method", "median_seconds"]).unwrap();

    sweep("wl", &sizes, 100, reps, seed, &mut table);
    sweep("n", &sizes, 100, reps, seed.wrapping_add(1), &mut table);

    println!("\nwrote {}", path.display());
}
