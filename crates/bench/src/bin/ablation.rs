//! Ablation study (beyond the paper): how much does the Algorithm 1
//! ordering actually contribute?
//!
//! Compares four row orderings — the paper's correlation-wise greedy
//! chain, identity (no sorting), global-coefficient-only sorting, and a
//! random shuffle — on two axes:
//! * compression fidelity (JS divergence, lower = better), and
//! * downstream ML score with CS-20 signatures.
//!
//! The expectation motivating the CS design: grouping correlated sensors
//! makes block averages meaningful, so the correlation-wise ordering
//! should dominate the shuffle/identity orderings at low block counts.
//!
//! Usage: `cargo run --release -p cwsmooth-bench --bin ablation
//!   [--seed S] [--scale F] [--blocks L]`

use cwsmooth_analysis::jsd::cs_fidelity;
use cwsmooth_bench::{cross_validate, f3, parse_algo, results_dir, Args};
use cwsmooth_core::cs::{CsMethod, CsTrainer, OrderingStrategy};
use cwsmooth_core::dataset::{build_dataset, DatasetOptions};
use cwsmooth_data::csv::TableWriter;
use cwsmooth_sim::segments::{
    application_info, application_segment, power_info, power_segment, SegmentInfo, SimConfig,
};

fn main() {
    let args = Args::capture();
    let algo = parse_algo(&args);
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 1.0);
    let blocks: usize = args.get("blocks", 20);

    let segments: Vec<(SegmentInfo, cwsmooth_data::Segment)> = vec![
        {
            let info = application_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), application_segment(SimConfig::new(seed, s)))
        },
        {
            let info = power_info();
            let s = (info.default_samples as f64 * scale) as usize;
            (info.clone(), power_segment(SimConfig::new(seed, s)))
        },
    ];

    let strategies: [(&str, OrderingStrategy); 4] = [
        ("correlation-wise", OrderingStrategy::CorrelationWise),
        ("identity", OrderingStrategy::Identity),
        ("global-only", OrderingStrategy::GlobalOnly),
        ("shuffled", OrderingStrategy::Shuffled(seed)),
    ];

    let path = results_dir().join("ablation_ordering.csv");
    let file = std::fs::File::create(&path).expect("create csv");
    let mut table =
        TableWriter::new(file, &["segment", "ordering", "js_divergence", "ml_score"]).unwrap();

    for (info, seg) in &segments {
        println!("\n=== {} (CS-{blocks}) ===", seg.name);
        println!("{:<18} {:>12} {:>12}", "Ordering", "JSD", "Score");
        for (name, strat) in strategies {
            let model = CsTrainer::default()
                .with_ordering(strat)
                .train(&seg.matrix)
                .expect("training");
            let cs = CsMethod::new(model, blocks).expect("CS");
            let spec = info.window_spec();
            let jsd = cs_fidelity(&cs, &seg.matrix, spec, 64);
            let ds = build_dataset(
                seg,
                &cs,
                DatasetOptions {
                    spec,
                    horizon: info.horizon,
                },
            )
            .expect("dataset");
            let score = cross_validate(&ds, seed, algo).mean_score();
            println!("{:<18} {:>12} {:>12}", name, f3(jsd), f3(score));
            table
                .row(&[
                    seg.name.clone(),
                    name.to_string(),
                    format!("{jsd:.6}"),
                    format!("{score:.6}"),
                ])
                .unwrap();
        }
    }
    println!("\nwrote {}", path.display());
}
