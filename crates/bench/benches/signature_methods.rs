//! Criterion micro-benchmarks behind Fig. 5: per-method signature
//! computation time over the window length `wl` and dimension count `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_core::baselines::{BodikMethod, LanMethod, TuncerMethod};
use cwsmooth_core::cs::{CsMethod, CsTrainer, OrderingStrategy};
use cwsmooth_core::method::SignatureMethod;
use cwsmooth_linalg::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_matrix(n: usize, t: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::from_vec(n, t, (0..n * t).map(|_| rng.gen::<f64>()).collect()).unwrap()
}

fn cs_for(sw: &Matrix, l: usize) -> CsMethod {
    let model = CsTrainer::default()
        .with_ordering(OrderingStrategy::Identity)
        .train(sw)
        .unwrap();
    CsMethod::new(model, l).unwrap()
}

fn bench_over_wl(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_over_wl_n100");
    for wl in [100usize, 1000, 4000] {
        let sw = random_matrix(100, wl, 1);
        let cs20 = cs_for(&sw, 20);
        let lan = LanMethod::new(6).unwrap();
        group.bench_with_input(BenchmarkId::new("Tuncer", wl), &sw, |b, m| {
            b.iter(|| black_box(TuncerMethod.compute(m, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("Bodik", wl), &sw, |b, m| {
            b.iter(|| black_box(BodikMethod.compute(m, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("Lan", wl), &sw, |b, m| {
            b.iter(|| black_box(lan.compute(m, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("CS-20", wl), &sw, |b, m| {
            b.iter(|| black_box(cs20.compute(m, None).unwrap()))
        });
    }
    group.finish();
}

fn bench_over_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_over_n_wl100");
    group.sample_size(20);
    for n in [100usize, 1000, 4000] {
        let sw = random_matrix(n, 100, 2);
        let cs20 = cs_for(&sw, 20);
        let cs_all = CsMethod::all_blocks(
            CsTrainer::default()
                .with_ordering(OrderingStrategy::Identity)
                .train(&sw)
                .unwrap(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("Tuncer", n), &sw, |b, m| {
            b.iter(|| black_box(TuncerMethod.compute(m, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("Bodik", n), &sw, |b, m| {
            b.iter(|| black_box(BodikMethod.compute(m, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("CS-20", n), &sw, |b, m| {
            b.iter(|| black_box(cs20.compute(m, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("CS-All", n), &sw, |b, m| {
            b.iter(|| black_box(cs_all.compute(m, None).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_over_wl, bench_over_n);
criterion_main!(benches);
