//! Criterion benchmarks of design-choice costs called out in DESIGN.md:
//! ordering strategies at training time and history handling at
//! signature time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_core::cs::{CsMethod, CsTrainer, OrderingStrategy};
use cwsmooth_linalg::Matrix;
use std::hint::black_box;

fn structured(n: usize, t: usize) -> Matrix {
    Matrix::from_fn(n, t, |r, c| {
        ((c as f64 / (7.0 + r as f64 % 5.0)).sin() + (r as f64 * 0.01)) * 0.5
    })
}

fn bench_ordering_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_ordering_strategy");
    group.sample_size(10);
    let s = structured(128, 1024);
    for (name, strat) in [
        ("correlation_wise", OrderingStrategy::CorrelationWise),
        ("identity", OrderingStrategy::Identity),
        ("global_only", OrderingStrategy::GlobalOnly),
        ("shuffled", OrderingStrategy::Shuffled(1)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, m| {
            b.iter(|| black_box(CsTrainer::default().with_ordering(strat).train(m).unwrap()))
        });
    }
    group.finish();
}

fn bench_history_handling(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_history");
    let s = structured(256, 512);
    let model = CsTrainer::default().train(&s).unwrap();
    let cs = CsMethod::new(model, 20).unwrap();
    let window = s.col_window(60, 120).unwrap();
    let hist = s.col(59);
    group.bench_function("without_history", |b| {
        b.iter(|| black_box(cs.signature(&window, None).unwrap()))
    });
    group.bench_function("with_history", |b| {
        b.iter(|| black_box(cs.signature(&window, Some(&hist)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_ordering_strategies, bench_history_handling);
criterion_main!(benches);
