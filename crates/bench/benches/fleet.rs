//! Fleet ingest throughput: the sharded [`FleetEngine`] against a serial
//! per-node loop over the same `OnlineCs` streams. The interesting number
//! is the sharded/serial ratio on multi-core — the whole point of the
//! fleet subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_core::cs::{CsMethod, CsSignature, CsTrainer};
use cwsmooth_core::fleet::{FleetEngine, FleetFrame};
use cwsmooth_core::online::OnlineCs;
use cwsmooth_data::WindowSpec;
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use std::hint::black_box;

const TRAIN: usize = 192;
const FRAMES: usize = 64;
const BLOCKS: usize = 4;

fn spec() -> WindowSpec {
    WindowSpec::new(30, 10).unwrap()
}

fn methods_for(scenario: &FleetScenario) -> Vec<CsMethod> {
    (0..scenario.nodes())
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            let model = CsTrainer::default().train(&history).unwrap();
            CsMethod::new(model, BLOCKS).unwrap()
        })
        .collect()
}

/// Pre-generates `FRAMES` live frames (starting after the training range).
fn frames_for(scenario: &FleetScenario) -> Vec<FleetFrame> {
    (0..FRAMES)
        .map(|f| {
            let mut frame = FleetFrame::new(scenario.nodes(), scenario.n_sensors());
            for node in 0..scenario.nodes() {
                let t = TRAIN + f;
                if !scenario.has_gap(node, t) {
                    scenario.reading_into(node, t, frame.slot_mut(node).unwrap());
                }
            }
            frame
        })
        .collect()
}

fn bench_fleet_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_ingest");
    group.sample_size(20);
    for &nodes in &[64usize, 512] {
        let scenario = FleetScenario::new(FleetSimConfig::new(7, nodes).with_gaps(5));
        let methods = methods_for(&scenario);
        let frames = frames_for(&scenario);

        // Sharded: the FleetEngine across the rayon pool.
        let mut engine = FleetEngine::new(methods.clone(), spec()).unwrap();
        let mut events = Vec::new();
        group.bench_with_input(BenchmarkId::new("sharded", nodes), &frames, |b, frames| {
            b.iter(|| {
                for frame in frames {
                    engine.ingest_frame_into(frame, &mut events).unwrap();
                    black_box(events.len());
                }
            })
        });

        // Serial: one thread walking every node's stream per frame.
        let mut streams: Vec<OnlineCs> = methods
            .iter()
            .map(|m| OnlineCs::new(m.clone(), spec()))
            .collect();
        let mut sig = CsSignature::default();
        group.bench_with_input(BenchmarkId::new("serial", nodes), &frames, |b, frames| {
            b.iter(|| {
                let mut emitted = 0usize;
                for frame in frames {
                    for (node, stream) in streams.iter_mut().enumerate() {
                        match frame.readings(node) {
                            Some(col) => {
                                if stream.push_into(col, &mut sig).unwrap() {
                                    emitted += 1;
                                }
                            }
                            None => stream.push_gap(),
                        }
                    }
                }
                black_box(emitted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_ingest);
criterion_main!(benches);
