//! Signature-store benchmarks: ingest throughput per encoding, and
//! exact-scan vs coarse-indexed k-NN query latency. The interesting
//! numbers are the encoding cost relative to `Exact` (quantization must
//! not dominate ingest) and the indexed/exact query ratio (the point of
//! the coarse quantizer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_core::cs::CsSignature;
use cwsmooth_data::WindowSpec;
use cwsmooth_store::{Distance, Encoding, SignatureIndex, SignatureStore, StoreConfig};
use std::hint::black_box;
use std::path::PathBuf;

const L: usize = 4;
const NODES: u32 = 32;
const EVENTS_PER_NODE: u64 = 64;

fn spec() -> WindowSpec {
    WindowSpec::new(30, 10).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cwsmooth-bench-store-{tag}-{}", std::process::id()))
}

fn fill(sig: &mut CsSignature, node: u32, w: u64) {
    for (i, v) in sig.re.iter_mut().enumerate() {
        *v = ((w as f64 + i as f64) * 0.31 + node as f64).sin() * 0.5 + 0.5;
    }
    for (i, v) in sig.im.iter_mut().enumerate() {
        *v = ((w as f64 - i as f64) * 0.17 + node as f64).cos() * 0.01;
    }
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(20);
    for (tag, encoding) in [
        ("exact", Encoding::Exact),
        ("quant8", Encoding::Quant8),
        ("quant16", Encoding::Quant16),
    ] {
        group.bench_function(BenchmarkId::new("encoding", tag), |b| {
            let dir = tmpdir(tag);
            std::fs::remove_dir_all(&dir).ok();
            let cfg = StoreConfig::default()
                .with_encoding(encoding)
                .with_block_events(64)
                .with_max_segments(4); // cap disk growth across iterations
            let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
            let mut sig = CsSignature {
                re: vec![0.0; L],
                im: vec![0.0; L],
            };
            let mut w = 0u64;
            b.iter(|| {
                for node in 0..NODES {
                    for dw in 0..EVENTS_PER_NODE {
                        fill(&mut sig, node, w + dw);
                        store.push(node, w + dw, &sig).unwrap();
                    }
                }
                w += EVENTS_PER_NODE;
                black_box(store.stats().events);
            });
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_query");
    group.sample_size(20);
    // A 16k-signature corpus, built once.
    let dir = tmpdir("query");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = StoreConfig::default().with_encoding(Encoding::Quant16);
    let mut store = SignatureStore::open(&dir, spec(), L, cfg).unwrap();
    let mut sig = CsSignature {
        re: vec![0.0; L],
        im: vec![0.0; L],
    };
    for node in 0..NODES {
        for w in 0..512u64 {
            fill(&mut sig, node, w);
            store.push(node, w, &sig).unwrap();
        }
    }
    store.flush().unwrap();
    let index = SignatureIndex::build(&store, Distance::L2)
        .unwrap()
        .with_coarse(32, 10)
        .unwrap();
    let queries: Vec<Vec<f64>> = (0..32u64)
        .map(|q| {
            fill(&mut sig, (q % NODES as u64) as u32, q * 17);
            sig.to_features()
        })
        .collect();

    group.bench_function("exact_scan_k10", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.query(q, 10).unwrap());
            }
        })
    });
    group.bench_function("indexed_nprobe4_k10", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.query_indexed(q, 10, 4).unwrap());
            }
        })
    });
    group.finish();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_ingest, bench_query);
criterion_main!(benches);
