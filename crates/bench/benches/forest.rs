//! Criterion benchmarks of the ML substrate: random-forest fit/predict at
//! the dataset shapes the Fig. 3 cross-validation actually produces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_linalg::Matrix;
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn classification_data(n: usize, d: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let noise: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>() * 0.8).collect();
    let x = Matrix::from_fn(n, d, |r, c| (r % classes) as f64 + noise[r * d + c]);
    let y: Vec<usize> = (0..n).map(|r| r % classes).collect();
    (x, y)
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_classifier_fit");
    group.sample_size(10);
    for (n, d) in [(400usize, 40usize), (400, 400)] {
        let (x, y) = classification_data(n, d, 7, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{d}")),
            &(x, y),
            |b, (x, y)| {
                b.iter(|| {
                    let mut rf =
                        RandomForestClassifier::with_config(ForestConfig::classification(1));
                    rf.fit(x, y).unwrap();
                    black_box(rf)
                })
            },
        );
    }
    group.finish();
}

fn bench_regressor(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_regressor");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let noise: Vec<f64> = (0..600 * 40).map(|_| rng.gen::<f64>()).collect();
    let x = Matrix::from_fn(600, 40, |r, c| noise[r * 40 + c]);
    let y: Vec<f64> = (0..600).map(|r| x.row(r).iter().sum::<f64>()).collect();
    let mut fitted = RandomForestRegressor::with_config(ForestConfig::regression(2));
    fitted.fit(&x, &y).unwrap();
    group.bench_function("fit_600x40", |b| {
        b.iter(|| {
            let mut rf = RandomForestRegressor::with_config(ForestConfig::regression(2));
            rf.fit(&x, &y).unwrap();
            black_box(rf)
        })
    });
    group.bench_function("predict_600x40", |b| {
        b.iter(|| black_box(fitted.predict(&x).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_classifier, bench_regressor);
criterion_main!(benches);
