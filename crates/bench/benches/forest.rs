//! Criterion benchmarks of the ML substrate: random-forest fit/predict at
//! the dataset shapes the Fig. 3 cross-validation actually produces, for
//! both split engines (exact vs ≤256-bin histogram).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_bench::{
    bench_classification_data as classification_data, bench_regression_data as regression_data,
};
use cwsmooth_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use cwsmooth_ml::SplitAlgo;
use std::hint::black_box;

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_classifier_fit");
    group.sample_size(10);
    for (n, d) in [(400usize, 40usize), (400, 400)] {
        let (x, y) = classification_data(n, d, 7, 3);
        // Same benchmark IDs as the PR 2 baseline (exact engine).
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{d}")),
            &(x.clone(), y.clone()),
            |b, (x, y)| {
                b.iter(|| {
                    let mut rf =
                        RandomForestClassifier::with_config(ForestConfig::classification(1));
                    rf.fit(x, y).unwrap();
                    black_box(rf)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{d}_hist")),
            &(x.clone(), y.clone()),
            |b, (x, y)| {
                b.iter(|| {
                    let mut rf = RandomForestClassifier::with_config(
                        ForestConfig::classification(1).with_split_algo(SplitAlgo::histogram()),
                    );
                    rf.fit(x, y).unwrap();
                    black_box(rf)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{d}_hist256")),
            &(x, y),
            |b, (x, y)| {
                b.iter(|| {
                    let mut rf = RandomForestClassifier::with_config(
                        ForestConfig::classification(1)
                            .with_split_algo(SplitAlgo::Histogram { max_bins: 256 }),
                    );
                    rf.fit(x, y).unwrap();
                    black_box(rf)
                })
            },
        );
    }
    group.finish();
}

fn bench_regressor(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_regressor");
    group.sample_size(10);
    let (x, y) = regression_data(600, 40, 5);
    let mut fitted = RandomForestRegressor::with_config(ForestConfig::regression(2));
    fitted.fit(&x, &y).unwrap();
    group.bench_function("fit_600x40", |b| {
        b.iter(|| {
            let mut rf = RandomForestRegressor::with_config(ForestConfig::regression(2));
            rf.fit(&x, &y).unwrap();
            black_box(rf)
        })
    });
    group.bench_function("fit_600x40_hist", |b| {
        b.iter(|| {
            let mut rf = RandomForestRegressor::with_config(
                ForestConfig::regression(2).with_split_algo(SplitAlgo::histogram()),
            );
            rf.fit(&x, &y).unwrap();
            black_box(rf)
        })
    });
    group.bench_function("predict_600x40", |b| {
        b.iter(|| black_box(fitted.predict(&x).unwrap()))
    });
    group.finish();
}

/// Row-parallel prediction at a wide fleet-style shape: many rows, the
/// whole 50-tree forest walked per row.
fn bench_parallel_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_parallel_predict");
    group.sample_size(10);
    let (x, y) = classification_data(400, 40, 7, 3);
    let mut rf = RandomForestClassifier::with_config(ForestConfig::classification(1));
    rf.fit(&x, &y).unwrap();
    let (wide, _) = classification_data(4096, 40, 7, 9);
    group.bench_function("classify_4096x40", |b| {
        b.iter(|| black_box(rf.predict(&wide).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classifier,
    bench_regressor,
    bench_parallel_predict
);
criterion_main!(benches);
