//! Sink-tree delivery cost: the fleet engine driving a counting sink, a
//! persisting store, and the full `Tee(store, detector, drift)` ODA
//! tree, plus the routing/decimation operators on their own. The
//! interesting numbers are the per-variant deltas — what each consumer
//! adds on top of pure signature extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use cwsmooth_analysis::drift::{DriftConfig, DriftMonitor};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_core::error::Result as CoreResult;
use cwsmooth_core::fleet::{FleetEngine, FleetEvent, FleetFrame, FleetSink};
use cwsmooth_core::pipeline::{NodeRoute, Sample, Tee};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use cwsmooth_ml::forest::{small_forest_config, RandomForestClassifier};
use cwsmooth_ml::streaming::{DetectorConfig, StreamingDetector};
use cwsmooth_sim::fleet::{FleetScenario, FleetSimConfig};
use cwsmooth_store::{Encoding, SignatureStore, StoreConfig};
use std::hint::black_box;

const NODES: usize = 64;
const TRAIN: usize = 192;
const FRAMES: usize = 64;
const L: usize = 4;

fn spec() -> WindowSpec {
    WindowSpec::new(30, 10).unwrap()
}

fn engine_for(scenario: &FleetScenario) -> FleetEngine {
    let methods: Vec<CsMethod> = (0..scenario.nodes())
        .map(|node| {
            let history = scenario.training_matrix(node, TRAIN);
            CsMethod::new(CsTrainer::default().train(&history).unwrap(), L).unwrap()
        })
        .collect();
    FleetEngine::new(methods, spec()).unwrap()
}

fn frames_for(scenario: &FleetScenario) -> Vec<FleetFrame> {
    (0..FRAMES)
        .map(|f| {
            let mut frame = FleetFrame::new(scenario.nodes(), scenario.n_sensors());
            for node in 0..scenario.nodes() {
                scenario.reading_into(node, TRAIN + f, frame.slot_mut(node).unwrap());
            }
            frame
        })
        .collect()
}

#[derive(Default)]
struct Count(u64);

impl FleetSink for Count {
    fn on_event(&mut self, _event: &FleetEvent) -> CoreResult<()> {
        self.0 += 1;
        Ok(())
    }
}

fn detector_for() -> StreamingDetector {
    let x = Matrix::from_fn(200, 2 * L, |r, c| {
        ((r * 13 + c * 7) % 100) as f64 / 100.0 + (r % 2) as f64 * 0.4
    });
    let y: Vec<usize> = (0..200).map(|r| r % 2).collect();
    let mut forest = RandomForestClassifier::with_config(small_forest_config(5, true));
    forest.fit(&x, &y).unwrap();
    StreamingDetector::new(forest, DetectorConfig::default()).unwrap()
}

fn drift_for() -> DriftMonitor {
    DriftMonitor::new(DriftConfig {
        bins: 8,
        window_events: 24,
        ..DriftConfig::default()
    })
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    let scenario = FleetScenario::new(FleetSimConfig::new(7, NODES));
    let frames = frames_for(&scenario);

    // Pure delivery: engine + counting sink.
    let mut engine = engine_for(&scenario);
    let mut count = Count::default();
    group.bench_function("count_sink", |b| {
        b.iter(|| {
            for frame in &frames {
                engine.ingest_frame_sink(frame, &mut count).unwrap();
            }
            black_box(count.0);
        })
    });

    // Routing + decimation operators wrapped around the counting sink.
    let mut engine = engine_for(&scenario);
    let mut ops = Tee((
        NodeRoute::new(0..NODES / 2, Count::default()),
        Sample::every(4, Count::default()),
    ));
    group.bench_function("route_sample_tee", |b| {
        b.iter(|| {
            for frame in &frames {
                engine.ingest_frame_sink(frame, &mut ops).unwrap();
            }
            black_box(ops.0 .1.passed());
        })
    });

    // The full ODA tree: persist + classify + drift-watch.
    let dir = std::env::temp_dir().join(format!("cwsmooth-pipe-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut engine = engine_for(&scenario);
    let mut store = SignatureStore::open(
        &dir,
        spec(),
        L,
        StoreConfig::default()
            .with_encoding(Encoding::Quant8)
            .with_segment_events(1 << 40),
    )
    .unwrap();
    let mut detector = detector_for();
    let mut drift = drift_for();
    group.bench_function("tee3_store_detector_drift", |b| {
        let mut tee = Tee((&mut store, &mut detector, &mut drift));
        b.iter(|| {
            for frame in &frames {
                engine.ingest_frame_sink(frame, &mut tee).unwrap();
            }
            black_box(tee.0 .1.events());
        })
    });
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
