//! Criterion benchmarks of the three CS stages in isolation: training
//! (O(n²t)), sorting (O(wl·n)) and smoothing (O(wl·n)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_linalg::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn structured_matrix(n: usize, t: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let phases: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0).collect();
    let noise: Vec<f64> = (0..n * t).map(|_| rng.gen::<f64>() * 0.05).collect();
    Matrix::from_fn(n, t, |r, c| {
        let latent = (c as f64 / 13.0 + phases[r]).sin();
        latent * (1.0 + r as f64 * 0.01) + noise[r * t + c]
    })
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("cs_training_stage");
    group.sample_size(10);
    for n in [64usize, 256] {
        let s = structured_matrix(n, 1024, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, m| {
            b.iter(|| black_box(CsTrainer::default().train(m).unwrap()))
        });
    }
    group.finish();
}

fn bench_sort_and_smooth(c: &mut Criterion) {
    let mut group = c.benchmark_group("cs_online_stages");
    for n in [64usize, 256, 1024] {
        let s = structured_matrix(n, 256, 8);
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 20).unwrap();
        let window = s.col_window(0, 60).unwrap();
        group.bench_with_input(BenchmarkId::new("sort", n), &window, |b, w| {
            b.iter(|| black_box(cs.sort_window(w).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sort+smooth", n), &window, |b, w| {
            b.iter(|| black_box(cs.signature(w, None).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_sort_and_smooth);
criterion_main!(benches);
