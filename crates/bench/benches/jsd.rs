//! Criterion benchmarks of the similarity metric (Fig. 4a's measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwsmooth_analysis::jsd::{cs_fidelity, DimensionHistogram};
use cwsmooth_core::cs::{CsMethod, CsTrainer};
use cwsmooth_data::WindowSpec;
use cwsmooth_linalg::Matrix;
use std::hint::black_box;

fn structured(n: usize, t: usize) -> Matrix {
    Matrix::from_fn(n, t, |r, c| {
        let latent = (c as f64 / 11.0).sin() * 0.5 + 0.5;
        match r % 3 {
            0 => latent,
            1 => 1.0 - latent,
            _ => ((r * 31 + c * 17) % 97) as f64 / 97.0,
        }
    })
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dimension_histogram");
    for n in [64usize, 256] {
        let m = structured(n, 2000);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(DimensionHistogram::new(m, 64, 0.0, 1.0)))
        });
    }
    group.finish();
}

fn bench_cs_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cs_fidelity");
    group.sample_size(10);
    let s = structured(64, 2000);
    let model = CsTrainer::default().train(&s).unwrap();
    let cs = CsMethod::new(model, 20).unwrap();
    let spec = WindowSpec::new(30, 10).unwrap();
    group.bench_function("64x2000_cs20", |b| {
        b.iter(|| black_box(cs_fidelity(&cs, &s, spec, 64)))
    });
    group.finish();
}

criterion_group!(benches, bench_histogram, bench_cs_fidelity);
criterion_main!(benches);
