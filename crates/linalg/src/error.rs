//! Error type shared by the linear-algebra substrate.

use std::fmt;

/// Errors produced by matrix construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The provided buffer length does not match `rows * cols`.
    ShapeMismatch {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the buffer that was provided.
        len: usize,
    },
    /// Two operands were expected to share a dimension but do not.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
        /// Human-readable description of the operation.
        what: &'static str,
    },
    /// An operation that requires a non-empty input received an empty one.
    Empty(&'static str),
    /// An index was out of bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
        /// Which axis or object was indexed.
        what: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { rows, cols, len } => write!(
                f,
                "shape mismatch: {rows}x{cols} matrix needs {} elements, got {len}",
                rows * cols
            ),
            Error::DimensionMismatch { left, right, what } => {
                write!(f, "dimension mismatch in {what}: {left} vs {right}")
            }
            Error::Empty(what) => write!(f, "{what} must not be empty"),
            Error::OutOfBounds { index, bound, what } => {
                write!(f, "{what} index {index} out of bounds (< {bound})")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, Error>;
