//! Descriptive statistics over slices.
//!
//! These kernels back both the baseline signature methods (Tuncer computes
//! eleven indicators per sensor, Bodik nine percentiles) and parts of the CS
//! method. Percentiles follow numpy's default *linear interpolation*
//! convention so results line up with the paper's Python reference.

/// Arithmetic mean; 0.0 for an empty slice.
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (denominator `n`); 0.0 for fewer than one element.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[inline]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum; +inf for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; -inf for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum and maximum in a single pass; `(inf, -inf)` for an empty slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    (lo, hi)
}

/// Percentile with numpy-style linear interpolation, `q` in `[0, 100]`.
///
/// Sorts a scratch copy: `O(w log w)` — this is exactly the super-linear
/// term the paper attributes to the Tuncer and Bodik baselines (Sec. IV-D).
/// Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut buf = xs.to_vec();
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_of_sorted(&buf, q)
}

/// Several percentiles sharing one sort of the input.
pub fn percentiles(xs: &[f64], qs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if xs.is_empty() {
        out.extend(qs.iter().map(|_| 0.0));
        return;
    }
    let mut buf = xs.to_vec();
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    out.extend(qs.iter().map(|&q| percentile_of_sorted(&buf, q)));
}

/// Percentile of an already ascending-sorted slice.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Sum of successive changes: `Σ (x[k] - x[k-1])`, i.e. `last - first`.
///
/// One of Tuncer's indicators (used in place of skewness in the paper).
pub fn sum_of_changes(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    xs[xs.len() - 1] - xs[0]
}

/// Absolute sum of successive changes: `Σ |x[k] - x[k-1]|`.
pub fn abs_sum_of_changes(xs: &[f64]) -> f64 {
    xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// Mean-filter sub-sampling of `xs` to exactly `target` points (Lan method).
///
/// Splits `xs` into `target` near-equal chunks and emits each chunk's mean.
/// If `target >= xs.len()` the input is copied and padded by repeating the
/// last value, so the output length is always exactly `target`.
pub fn mean_filter_subsample(xs: &[f64], target: usize) -> Vec<f64> {
    if target == 0 {
        return Vec::new();
    }
    if xs.is_empty() {
        return vec![0.0; target];
    }
    if target >= xs.len() {
        let mut out = xs.to_vec();
        out.resize(target, *xs.last().unwrap());
        return out;
    }
    let mut out = Vec::with_capacity(target);
    for i in 0..target {
        let b = i * xs.len() / target;
        let e = ((i + 1) * xs.len() / target).max(b + 1);
        out.push(mean(&xs[b..e]));
    }
    out
}

/// Dot product of two equally long slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < EPS);
        assert!((variance(&xs) - 4.0).abs() < EPS);
        assert!((std_dev(&xs) - 2.0).abs() < EPS);
    }

    #[test]
    fn empty_inputs_are_defined() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(sum_of_changes(&[]), 0.0);
        assert_eq!(abs_sum_of_changes(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn min_max_single_pass_matches() {
        let xs = [3.0, -1.0, 7.5, 0.0];
        assert_eq!(min_max(&xs), (min(&xs), max(&xs)));
    }

    #[test]
    fn percentile_matches_numpy_convention() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // numpy.percentile([1,2,3,4], 50) == 2.5
        assert!((percentile(&xs, 50.0) - 2.5).abs() < EPS);
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((percentile(&xs, 25.0) - 1.75).abs() < EPS);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < EPS);
    }

    #[test]
    fn percentiles_batch_matches_individual() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0];
        let qs = [5.0, 25.0, 50.0, 75.0, 95.0];
        let mut out = Vec::new();
        percentiles(&xs, &qs, &mut out);
        for (i, &q) in qs.iter().enumerate() {
            assert!((out[i] - percentile(&xs, q)).abs() < EPS);
        }
    }

    #[test]
    fn changes_metrics() {
        let xs = [1.0, 3.0, 2.0, 5.0];
        assert!((sum_of_changes(&xs) - 4.0).abs() < EPS);
        assert!((abs_sum_of_changes(&xs) - 6.0).abs() < EPS);
    }

    #[test]
    fn subsample_shrinks_with_means() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = mean_filter_subsample(&xs, 3);
        assert_eq!(out, vec![1.5, 3.5, 5.5]);
    }

    #[test]
    fn subsample_pads_when_growing() {
        let xs = [1.0, 2.0];
        let out = mean_filter_subsample(&xs, 4);
        assert_eq!(out, vec![1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn subsample_target_zero_and_empty() {
        assert!(mean_filter_subsample(&[1.0], 0).is_empty());
        assert_eq!(mean_filter_subsample(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn subsample_uneven_chunks_cover_input() {
        let xs: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let out = mean_filter_subsample(&xs, 3);
        assert_eq!(out.len(), 3);
        // chunk bounds: [0,2), [2,4), [4,7)
        assert!((out[0] - 0.5).abs() < EPS);
        assert!((out[1] - 2.5).abs() < EPS);
        assert!((out[2] - 5.0).abs() < EPS);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
