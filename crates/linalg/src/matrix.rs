//! Dense row-major matrix with rows-as-sensors semantics.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f64` matrix.
///
/// In the `cwsmooth` workspace a matrix almost always represents the paper's
/// sensor matrix `S`: each **row** holds the time series of one sensor and
/// each **column** is one time-stamp. Row access is therefore contiguous and
/// cheap; column access strides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from a row-major buffer.
    ///
    /// Returns [`Error::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::ShapeMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Builds a matrix from an iterator of equally long rows.
    ///
    /// Returns [`Error::Empty`] for zero rows and
    /// [`Error::DimensionMismatch`] if row lengths disagree.
    pub fn from_rows<I, R>(rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut data = Vec::new();
        let mut cols = None;
        let mut nrows = 0usize;
        for row in rows {
            let row = row.as_ref();
            match cols {
                None => cols = Some(row.len()),
                Some(c) if c != row.len() => {
                    return Err(Error::DimensionMismatch {
                        left: c,
                        right: row.len(),
                        what: "Matrix::from_rows",
                    })
                }
                _ => {}
            }
            data.extend_from_slice(row);
            nrows += 1;
        }
        let cols = cols.ok_or(Error::Empty("Matrix::from_rows input"))?;
        Ok(Self {
            rows: nrows,
            cols,
            data,
        })
    }

    /// Generates a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows (sensors).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (time-stamps).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor; panics on out-of-bounds (hot path, checked by debug asserts).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Contiguous slice of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable contiguous slice of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Checked row access.
    pub fn try_row(&self, row: usize) -> Result<&[f64]> {
        if row >= self.rows {
            return Err(Error::OutOfBounds {
                index: row,
                bound: self.rows,
                what: "row",
            });
        }
        Ok(self.row(row))
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `col` into a fresh vector.
    pub fn col(&self, col: usize) -> Vec<f64> {
        debug_assert!(col < self.cols);
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Copies column `col` into `out` (must be `rows` long).
    pub fn col_into(&self, col: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.get(r, col);
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Returns a sub-matrix covering columns `[start, end)` of all rows.
    ///
    /// This is the paper's `S_w` extraction: a time window over the full
    /// sensor matrix.
    pub fn col_window(&self, start: usize, end: usize) -> Result<Matrix> {
        if end > self.cols || start > end {
            return Err(Error::OutOfBounds {
                index: end,
                bound: self.cols + 1,
                what: "column window",
            });
        }
        let w = end - start;
        let mut data = Vec::with_capacity(self.rows * w);
        for r in 0..self.rows {
            let row = self.row(r);
            data.extend_from_slice(&row[start..end]);
        }
        Matrix::from_vec(self.rows, w, data)
    }

    /// Returns a new matrix with rows permuted: output row `i` is input row
    /// `perm[i]`.
    ///
    /// Returns an error if `perm` is not a permutation of `0..rows`.
    pub fn permute_rows(&self, perm: &[usize]) -> Result<Matrix> {
        if perm.len() != self.rows {
            return Err(Error::DimensionMismatch {
                left: perm.len(),
                right: self.rows,
                what: "permute_rows",
            });
        }
        let mut seen = vec![false; self.rows];
        for &p in perm {
            if p >= self.rows {
                return Err(Error::OutOfBounds {
                    index: p,
                    bound: self.rows,
                    what: "permutation entry",
                });
            }
            if seen[p] {
                return Err(Error::DimensionMismatch {
                    left: p,
                    right: p,
                    what: "permute_rows (duplicate entry)",
                });
            }
            seen[p] = true;
        }
        let mut data = Vec::with_capacity(self.data.len());
        for &p in perm {
            data.extend_from_slice(self.row(p));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Stacks matrices vertically (all must share the column count).
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts.first().ok_or(Error::Empty("vstack input"))?;
        let cols = first.cols;
        let mut data = Vec::new();
        let mut rows = 0usize;
        for m in parts {
            if m.cols != cols {
                return Err(Error::DimensionMismatch {
                    left: cols,
                    right: m.cols,
                    what: "vstack",
                });
            }
            data.extend_from_slice(&m.data);
            rows += m.rows;
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Stacks matrices horizontally (all must share the row count).
    pub fn hstack(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts.first().ok_or(Error::Empty("hstack input"))?;
        let rows = first.rows;
        for m in parts {
            if m.rows != rows {
                return Err(Error::DimensionMismatch {
                    left: rows,
                    right: m.rows,
                    what: "hstack",
                });
            }
        }
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for m in parts {
                data.extend_from_slice(m.row(r));
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Row-wise backward finite differences: `out[r][c] = x[r][c] - x[r][c-1]`,
    /// with the first column seeded from `prev` (one sample of history per
    /// row) or 0.0 when no history is available.
    ///
    /// This produces the paper's derivative matrix `S'` used for the
    /// imaginary signature components (Eq. 3).
    pub fn backward_diff(&self, prev: Option<&[f64]>) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        if self.cols == 0 {
            return out;
        }
        for r in 0..self.rows {
            let row = self.row(r);
            let first = match prev {
                Some(p) => row[0] - p[r],
                None => 0.0,
            };
            let orow = out.row_mut(r);
            orow[0] = first;
            for c in 1..row.len() {
                orow[c] = row[c] - row[c - 1];
            }
        }
        out
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Replaces non-finite elements with `value` (failure-injection hygiene).
    pub fn replace_non_finite(&mut self, value: f64) {
        for v in &mut self.data {
            if !v.is_finite() {
                *v = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(rows).is_err());
    }

    #[test]
    fn from_rows_builds() {
        let m = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn col_window_extracts() {
        let m = sample();
        let w = m.col_window(1, 3).unwrap();
        assert_eq!(w.shape(), (2, 2));
        assert_eq!(w.row(0), &[2.0, 3.0]);
        assert!(m.col_window(1, 4).is_err());
        assert!(m.col_window(2, 1).is_err());
    }

    #[test]
    fn permute_rows_applies() {
        let m = sample();
        let p = m.permute_rows(&[1, 0]).unwrap();
        assert_eq!(p.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(p.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn permute_rows_rejects_invalid() {
        let m = sample();
        assert!(m.permute_rows(&[0]).is_err());
        assert!(m.permute_rows(&[0, 2]).is_err());
        assert!(m.permute_rows(&[0, 0]).is_err());
    }

    #[test]
    fn stacking() {
        let a = sample();
        let b = sample();
        let v = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(2), a.row(0));
        let h = Matrix::hstack(&[&a, &b]).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(&h.row(0)[3..], a.row(0));
    }

    #[test]
    fn backward_diff_no_history() {
        let m = Matrix::from_rows([[1.0, 3.0, 6.0]]).unwrap();
        let d = m.backward_diff(None);
        assert_eq!(d.row(0), &[0.0, 2.0, 3.0]);
    }

    #[test]
    fn backward_diff_with_history() {
        let m = Matrix::from_rows([[1.0, 3.0, 6.0]]).unwrap();
        let d = m.backward_diff(Some(&[0.5]));
        assert_eq!(d.row(0), &[0.5, 2.0, 3.0]);
    }

    #[test]
    fn non_finite_hygiene() {
        let mut m = Matrix::from_rows([[1.0, f64::NAN, f64::INFINITY]]).unwrap();
        assert!(m.has_non_finite());
        m.replace_non_finite(0.0);
        assert!(!m.has_non_finite());
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
    }
}
