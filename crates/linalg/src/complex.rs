//! Minimal complex number used for CS signature blocks.
//!
//! Each CS block is complex-valued (paper Eq. 3): the real part carries the
//! block's average normalized value, the imaginary part the average
//! first-order derivative. Only the small set of operations the workspace
//! needs is implemented.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real component (static behaviour: average value).
    pub re: f64,
    /// Imaginary component (dynamic behaviour: average derivative).
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from components.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };

    /// Magnitude `sqrt(re^2 + im^2)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales both components.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, k: f64) -> Self {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Complex64::new(2.0, 4.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn magnitude() {
        assert_eq!(Complex64::new(3.0, 4.0).abs(), 5.0);
        assert_eq!(Complex64::ZERO.abs(), 0.0);
    }

    #[test]
    fn finiteness() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
    }
}
