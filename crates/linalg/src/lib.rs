//! Dense matrix and statistics substrate for the `cwsmooth` workspace.
//!
//! The paper's reference implementation leans on numpy; this crate provides
//! the equivalent primitives used by every other crate in the workspace:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix where **rows are sensors**
//!   and **columns are time-stamps** (the paper's sensor matrix `S`).
//! * [`stats`] — streaming descriptive statistics over slices (mean,
//!   standard deviation, percentiles, sums of changes, mean-filter
//!   sub-sampling) used by both the baselines and the CS method.
//! * [`corr`] — covariance and (shifted) Pearson correlation, including the
//!   rayon-parallel full correlation matrix that dominates the CS training
//!   stage (`O(n^2 t)`).
//! * [`norm`] — min-max normalization with persistable bounds.
//! * [`complex`] — a minimal `Complex64` used for CS signature blocks.
//!
//! Everything is deterministic and allocation-conscious: hot paths take
//! `&[f64]` slices and write into caller-provided buffers where it matters.

#![warn(missing_docs)]

pub mod complex;
pub mod corr;
pub mod error;
pub mod matrix;
pub mod norm;
pub mod stats;

pub use complex::Complex64;
pub use error::{Error, Result};
pub use matrix::Matrix;
pub use norm::MinMax;
