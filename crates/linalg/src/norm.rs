//! Min-max normalization with persistable per-row bounds.
//!
//! The CS training stage records each sensor's lower and upper bound; the
//! sorting stage then maps readings into `[0, 1]`. Values outside the
//! training range (drift, new workloads) are clamped so a single outlier
//! cannot blow up a signature. Constant rows map to 0.5 — "no information".

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::stats::min_max;

/// Per-row min/max bounds learned from a training matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMax {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMax {
    /// Learns bounds from every row of `m`.
    pub fn fit(m: &Matrix) -> Self {
        let mut lo = Vec::with_capacity(m.rows());
        let mut hi = Vec::with_capacity(m.rows());
        for r in 0..m.rows() {
            let (l, h) = min_max(m.row(r));
            lo.push(l);
            hi.push(h);
        }
        Self { lo, hi }
    }

    /// Builds bounds directly from vectors (must be equal length).
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> crate::Result<Self> {
        if lo.len() != hi.len() {
            return Err(crate::Error::DimensionMismatch {
                left: lo.len(),
                right: hi.len(),
                what: "MinMax::from_bounds",
            });
        }
        Ok(Self { lo, hi })
    }

    /// Number of rows covered by these bounds.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` if the bounds cover zero rows.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Lower bounds per row.
    pub fn lower(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds per row.
    pub fn upper(&self) -> &[f64] {
        &self.hi
    }

    /// Normalizes one value from row `r` into `[0, 1]` (clamped).
    #[inline]
    pub fn scale(&self, r: usize, v: f64) -> f64 {
        let lo = self.lo[r];
        let hi = self.hi[r];
        let range = hi - lo;
        if range <= 0.0 || !range.is_finite() {
            return 0.5;
        }
        ((v - lo) / range).clamp(0.0, 1.0)
    }

    /// Normalizes a whole matrix row-wise into a new matrix.
    ///
    /// Returns an error when the matrix row count does not match.
    pub fn apply(&self, m: &Matrix) -> crate::Result<Matrix> {
        if m.rows() != self.len() {
            return Err(crate::Error::DimensionMismatch {
                left: m.rows(),
                right: self.len(),
                what: "MinMax::apply",
            });
        }
        let mut out = m.clone();
        for r in 0..out.rows() {
            let lo = self.lo[r];
            let hi = self.hi[r];
            let range = hi - lo;
            let row = out.row_mut(r);
            if range <= 0.0 || !range.is_finite() {
                for v in row.iter_mut() {
                    *v = 0.5;
                }
            } else {
                for v in row.iter_mut() {
                    *v = ((*v - lo) / range).clamp(0.0, 1.0);
                }
            }
        }
        Ok(out)
    }

    /// Widens these bounds to also cover every row of `m` (online refresh).
    pub fn update(&mut self, m: &Matrix) -> crate::Result<()> {
        if m.rows() != self.len() {
            return Err(crate::Error::DimensionMismatch {
                left: m.rows(),
                right: self.len(),
                what: "MinMax::update",
            });
        }
        for r in 0..m.rows() {
            let (l, h) = min_max(m.row(r));
            if l < self.lo[r] {
                self.lo[r] = l;
            }
            if h > self.hi[r] {
                self.hi[r] = h;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_apply_bounds() {
        let m = Matrix::from_rows([[0.0, 5.0, 10.0], [3.0, 3.0, 3.0]]).unwrap();
        let mm = MinMax::fit(&m);
        assert_eq!(mm.lower(), &[0.0, 3.0]);
        assert_eq!(mm.upper(), &[10.0, 3.0]);
        let n = mm.apply(&m).unwrap();
        assert_eq!(n.row(0), &[0.0, 0.5, 1.0]);
        // constant row -> 0.5 everywhere
        assert_eq!(n.row(1), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let train = Matrix::from_rows([[0.0, 10.0]]).unwrap();
        let mm = MinMax::fit(&train);
        let test = Matrix::from_rows([[-5.0, 15.0]]).unwrap();
        let n = mm.apply(&test).unwrap();
        assert_eq!(n.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn scale_single_values() {
        let mm = MinMax::from_bounds(vec![0.0], vec![4.0]).unwrap();
        assert_eq!(mm.scale(0, 1.0), 0.25);
        assert_eq!(mm.scale(0, -1.0), 0.0);
        assert_eq!(mm.scale(0, 9.0), 1.0);
    }

    #[test]
    fn mismatched_rows_error() {
        let m = Matrix::zeros(3, 2);
        let mm = MinMax::from_bounds(vec![0.0], vec![1.0]).unwrap();
        assert!(mm.apply(&m).is_err());
    }

    #[test]
    fn update_widens() {
        let m1 = Matrix::from_rows([[1.0, 2.0]]).unwrap();
        let mut mm = MinMax::fit(&m1);
        let m2 = Matrix::from_rows([[0.0, 5.0]]).unwrap();
        mm.update(&m2).unwrap();
        assert_eq!(mm.lower(), &[0.0]);
        assert_eq!(mm.upper(), &[5.0]);
    }

    #[test]
    fn from_bounds_rejects_ragged() {
        assert!(MinMax::from_bounds(vec![0.0, 1.0], vec![1.0]).is_err());
    }
}
