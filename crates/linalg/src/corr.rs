//! Covariance and Pearson correlation, including the parallel full
//! correlation matrix that dominates the CS training stage.
//!
//! The paper (Eq. 1) uses a *shifted* Pearson coefficient
//! `ρ' = ρ + 1 ∈ [0, 2]` so that coefficients are non-negative and the
//! greedy ordering of Algorithm 1 can multiply them. Rows with zero
//! variance have an undefined Pearson coefficient; we define it as 0
//! (shifted: 1.0), which classifies constant sensors as "noise-like" —
//! they end up in the middle of the CS ordering, matching the paper's
//! interpretation.

use crate::matrix::Matrix;
use crate::stats::mean;
use rayon::prelude::*;

/// Population covariance of two equally long slices.
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64
}

/// Plain Pearson correlation in `[-1, 1]`; 0.0 when either side has zero
/// variance (or when inputs are empty).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let cov = covariance(a, b);
    let sa = crate::stats::std_dev(a);
    let sb = crate::stats::std_dev(b);
    if sa == 0.0 || sb == 0.0 {
        return 0.0;
    }
    (cov / (sa * sb)).clamp(-1.0, 1.0)
}

/// Shifted Pearson correlation `ρ + 1 ∈ [0, 2]` (paper Eq. 1).
#[inline]
pub fn shifted_pearson(a: &[f64], b: &[f64]) -> f64 {
    pearson(a, b) + 1.0
}

/// Per-row summary statistics reused across the correlation matrix.
struct RowStats {
    mean: f64,
    /// Standard deviation (population).
    std: f64,
}

fn row_stats(m: &Matrix) -> Vec<RowStats> {
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            RowStats {
                mean: mean(row),
                std: crate::stats::std_dev(row),
            }
        })
        .collect()
}

/// Full shifted-correlation matrix of the rows of `m`.
///
/// Output is symmetric, `n x n`, with `out[i][j] = ρ_{Si,Sj} + 1` and the
/// diagonal fixed at 2.0 (self-correlation). Cost is `O(n^2 t)` — this is
/// the dominant term of the CS training stage; rows are processed in
/// parallel with rayon.
pub fn shifted_correlation_matrix(m: &Matrix) -> Matrix {
    let n = m.rows();
    let stats = row_stats(m);
    let t = m.cols() as f64;

    // Upper triangle per row, computed in parallel, then mirrored.
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let ri = m.row(i);
            let si = &stats[i];
            let mut out = vec![0.0; n - i];
            out[0] = 2.0; // diagonal: ρ=1 shifted
            for j in (i + 1)..n {
                let rj = m.row(j);
                let sj = &stats[j];
                let v = if si.std == 0.0 || sj.std == 0.0 || t == 0.0 {
                    1.0 // undefined correlation -> shifted 0
                } else {
                    let mut cov = 0.0;
                    for (x, y) in ri.iter().zip(rj) {
                        cov += (x - si.mean) * (y - sj.mean);
                    }
                    cov /= t;
                    ((cov / (si.std * sj.std)).clamp(-1.0, 1.0)) + 1.0
                };
                out[j - i] = v;
            }
            out
        })
        .collect();

    let mut out = Matrix::zeros(n, n);
    for (i, tri) in rows.iter().enumerate() {
        for (off, &v) in tri.iter().enumerate() {
            let j = i + off;
            out.set(i, j, v);
            out.set(j, i, v);
        }
    }
    out
}

/// Global correlation coefficients `ρ_Si` (paper Eq. 1, right):
/// the mean of row `i`'s shifted correlations with every other row.
///
/// For `n == 1` the result is `[0.0]` (no other rows to correlate with).
pub fn global_coefficients(corr: &Matrix) -> Vec<f64> {
    let n = corr.rows();
    debug_assert_eq!(n, corr.cols());
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|i| {
            let row = corr.row(i);
            let sum: f64 = row.iter().sum::<f64>() - row[i];
            sum / (n - 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn covariance_hand_checked() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        // population covariance = mean(ab) - mean(a)mean(b) = 28/3 - 8 = 4/3
        assert!((covariance(&a, &b) - 4.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < EPS);
        assert!((pearson(&a, &c) + 1.0).abs() < EPS);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b), 0.0);
        assert_eq!(shifted_pearson(&a, &b), 1.0);
    }

    #[test]
    fn correlation_matrix_symmetric_with_unit_diagonal() {
        let m = Matrix::from_rows([
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 4.0, 6.0, 8.0],
            [4.0, 3.0, 2.0, 1.0],
            [5.0, 5.0, 5.0, 5.0],
        ])
        .unwrap();
        let c = shifted_correlation_matrix(&m);
        assert_eq!(c.shape(), (4, 4));
        for i in 0..4 {
            assert!((c.get(i, i) - 2.0).abs() < EPS);
            for j in 0..4 {
                assert!((c.get(i, j) - c.get(j, i)).abs() < EPS);
                assert!(c.get(i, j) >= 0.0 && c.get(i, j) <= 2.0);
            }
        }
        // rows 0,1 perfectly correlated; row 2 anti-correlated with 0.
        assert!((c.get(0, 1) - 2.0).abs() < EPS);
        assert!(c.get(0, 2).abs() < EPS);
        // constant row: shifted 1.0 against everything.
        assert!((c.get(0, 3) - 1.0).abs() < EPS);
    }

    #[test]
    fn matrix_entries_match_pairwise_kernel() {
        let m = Matrix::from_rows([
            [0.3, 1.7, 0.4, 2.2, 0.9],
            [1.1, 0.2, 2.3, 0.4, 1.5],
            [0.0, 0.5, 1.0, 1.5, 2.0],
        ])
        .unwrap();
        let c = shifted_correlation_matrix(&m);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j {
                    2.0
                } else {
                    shifted_pearson(m.row(i), m.row(j))
                };
                assert!((c.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn global_coefficients_average_off_diagonal() {
        let m = Matrix::from_rows([
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 4.0, 6.0, 8.0],
            [4.0, 3.0, 2.0, 1.0],
        ])
        .unwrap();
        let c = shifted_correlation_matrix(&m);
        let g = global_coefficients(&c);
        // row 0: corr with row1 = 2.0, with row2 = 0.0 -> mean 1.0
        assert!((g[0] - 1.0).abs() < EPS);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn global_coefficients_single_row() {
        let c = Matrix::from_rows([[2.0]]).unwrap();
        assert_eq!(global_coefficients(&c), vec![0.0]);
    }
}
