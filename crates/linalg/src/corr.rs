//! Covariance and Pearson correlation, including the parallel full
//! correlation matrix that dominates the CS training stage.
//!
//! The paper (Eq. 1) uses a *shifted* Pearson coefficient
//! `ρ' = ρ + 1 ∈ [0, 2]` so that coefficients are non-negative and the
//! greedy ordering of Algorithm 1 can multiply them. Rows with zero
//! variance have an undefined Pearson coefficient; we define it as 0
//! (shifted: 1.0), which classifies constant sensors as "noise-like" —
//! they end up in the middle of the CS ordering, matching the paper's
//! interpretation.

use crate::matrix::Matrix;
use crate::stats::mean;
use rayon::prelude::*;

/// Population covariance of two equally long slices.
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64
}

/// Plain Pearson correlation in `[-1, 1]`; 0.0 when either side has zero
/// variance (or when inputs are empty).
///
/// All three second moments (covariance and both variances) come out of a
/// single fused pass sharing one mean computation per side, instead of
/// the naive `covariance` + 2×`std_dev` formulation that recomputes each
/// slice's mean three times. The per-element operations and accumulation
/// order are unchanged, so results are bit-identical to the naive path.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    debug_assert_eq!(a.len(), b.len());
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let da = x - ma;
        let db = y - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    let n = a.len() as f64;
    let sa = (va / n).sqrt();
    let sb = (vb / n).sqrt();
    if sa == 0.0 || sb == 0.0 {
        return 0.0;
    }
    (cov / n / (sa * sb)).clamp(-1.0, 1.0)
}

/// Shifted Pearson correlation `ρ + 1 ∈ [0, 2]` (paper Eq. 1).
#[inline]
pub fn shifted_pearson(a: &[f64], b: &[f64]) -> f64 {
    pearson(a, b) + 1.0
}

/// Per-row summary statistics reused across the correlation matrix.
struct RowStats {
    mean: f64,
    /// Standard deviation (population).
    std: f64,
}

fn row_stats(m: &Matrix) -> Vec<RowStats> {
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            // One mean per row; the variance pass reuses it (identical
            // value and operations to `std_dev`'s internal recomputation).
            let mu = mean(row);
            let var = if row.is_empty() {
                0.0
            } else {
                row.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / row.len() as f64
            };
            RowStats {
                mean: mu,
                std: var.sqrt(),
            }
        })
        .collect()
}

/// Full shifted-correlation matrix of the rows of `m`.
///
/// Output is symmetric, `n x n`, with `out[i][j] = ρ_{Si,Sj} + 1` and the
/// diagonal fixed at 2.0 (self-correlation). Cost is `O(n^2 t)` — this is
/// the dominant term of the CS training stage; rows are processed in
/// parallel with rayon.
///
/// Every row is centered **once** up front, so the `O(n²·t)` inner loop
/// is a bare multiply-accumulate with no per-element mean subtractions.
/// `fl(x−μ)` is computed identically either way, so the output is
/// bit-identical to the uncentered formulation.
pub fn shifted_correlation_matrix(m: &Matrix) -> Matrix {
    let n = m.rows();
    let stats = row_stats(m);
    let t = m.cols() as f64;

    // Pre-center all rows once: O(n·t) subtractions instead of O(n²·t).
    let mut centered = Matrix::zeros(n, m.cols());
    for (i, stat) in stats.iter().enumerate() {
        let mean_i = stat.mean;
        for (dst, &x) in centered.row_mut(i).iter_mut().zip(m.row(i)) {
            *dst = x - mean_i;
        }
    }
    let centered = &centered;

    // Upper triangle per row, computed in parallel, then mirrored.
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let ci = centered.row(i);
            let si = &stats[i];
            let mut out = vec![0.0; n - i];
            out[0] = 2.0; // diagonal: ρ=1 shifted
            for j in (i + 1)..n {
                let cj = centered.row(j);
                let sj = &stats[j];
                let v = if si.std == 0.0 || sj.std == 0.0 || t == 0.0 {
                    1.0 // undefined correlation -> shifted 0
                } else {
                    let mut cov = 0.0;
                    for (x, y) in ci.iter().zip(cj) {
                        cov += x * y;
                    }
                    cov /= t;
                    ((cov / (si.std * sj.std)).clamp(-1.0, 1.0)) + 1.0
                };
                out[j - i] = v;
            }
            out
        })
        .collect();

    let mut out = Matrix::zeros(n, n);
    for (i, tri) in rows.iter().enumerate() {
        for (off, &v) in tri.iter().enumerate() {
            let j = i + off;
            out.set(i, j, v);
            out.set(j, i, v);
        }
    }
    out
}

/// Global correlation coefficients `ρ_Si` (paper Eq. 1, right):
/// the mean of row `i`'s shifted correlations with every other row.
///
/// For `n == 1` the result is `[0.0]` (no other rows to correlate with).
pub fn global_coefficients(corr: &Matrix) -> Vec<f64> {
    let n = corr.rows();
    debug_assert_eq!(n, corr.cols());
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|i| {
            let row = corr.row(i);
            let sum: f64 = row.iter().sum::<f64>() - row[i];
            sum / (n - 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn covariance_hand_checked() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        // population covariance = mean(ab) - mean(a)mean(b) = 28/3 - 8 = 4/3
        assert!((covariance(&a, &b) - 4.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < EPS);
        assert!((pearson(&a, &c) + 1.0).abs() < EPS);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b), 0.0);
        assert_eq!(shifted_pearson(&a, &b), 1.0);
    }

    #[test]
    fn correlation_matrix_symmetric_with_unit_diagonal() {
        let m = Matrix::from_rows([
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 4.0, 6.0, 8.0],
            [4.0, 3.0, 2.0, 1.0],
            [5.0, 5.0, 5.0, 5.0],
        ])
        .unwrap();
        let c = shifted_correlation_matrix(&m);
        assert_eq!(c.shape(), (4, 4));
        for i in 0..4 {
            assert!((c.get(i, i) - 2.0).abs() < EPS);
            for j in 0..4 {
                assert!((c.get(i, j) - c.get(j, i)).abs() < EPS);
                assert!(c.get(i, j) >= 0.0 && c.get(i, j) <= 2.0);
            }
        }
        // rows 0,1 perfectly correlated; row 2 anti-correlated with 0.
        assert!((c.get(0, 1) - 2.0).abs() < EPS);
        assert!(c.get(0, 2).abs() < EPS);
        // constant row: shifted 1.0 against everything.
        assert!((c.get(0, 3) - 1.0).abs() < EPS);
    }

    #[test]
    fn matrix_entries_match_pairwise_kernel() {
        let m = Matrix::from_rows([
            [0.3, 1.7, 0.4, 2.2, 0.9],
            [1.1, 0.2, 2.3, 0.4, 1.5],
            [0.0, 0.5, 1.0, 1.5, 2.0],
        ])
        .unwrap();
        let c = shifted_correlation_matrix(&m);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j {
                    2.0
                } else {
                    shifted_pearson(m.row(i), m.row(j))
                };
                assert!((c.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn global_coefficients_average_off_diagonal() {
        let m = Matrix::from_rows([
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 4.0, 6.0, 8.0],
            [4.0, 3.0, 2.0, 1.0],
        ])
        .unwrap();
        let c = shifted_correlation_matrix(&m);
        let g = global_coefficients(&c);
        // row 0: corr with row1 = 2.0, with row2 = 0.0 -> mean 1.0
        assert!((g[0] - 1.0).abs() < EPS);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn global_coefficients_single_row() {
        let c = Matrix::from_rows([[2.0]]).unwrap();
        assert_eq!(global_coefficients(&c), vec![0.0]);
    }

    /// The naive three-pass Pearson kernel the fused implementation
    /// replaced: each moment recomputes its mean, exactly as before.
    fn pearson_reference(a: &[f64], b: &[f64]) -> f64 {
        let cov = covariance(a, b);
        let sa = crate::stats::std_dev(a);
        let sb = crate::stats::std_dev(b);
        if sa == 0.0 || sb == 0.0 {
            return 0.0;
        }
        (cov / (sa * sb)).clamp(-1.0, 1.0)
    }

    /// Pseudo-random but deterministic test matrix.
    fn scrambled(n: usize, t: usize) -> Matrix {
        Matrix::from_fn(n, t, |r, c| {
            let h = (r * 2654435761 + c * 40503 + 97) % 100_000;
            (h as f64 / 100_000.0 - 0.5) * (1.0 + r as f64)
        })
    }

    #[test]
    fn fused_pearson_is_bit_identical_to_naive() {
        let m = scrambled(8, 257);
        for i in 0..8 {
            for j in 0..8 {
                let fused = pearson(m.row(i), m.row(j));
                let naive = pearson_reference(m.row(i), m.row(j));
                assert_eq!(fused.to_bits(), naive.to_bits(), "rows {i},{j}");
            }
        }
        // zero-variance edge
        let flat = [2.5; 257];
        assert_eq!(pearson(&flat, m.row(0)), 0.0);
    }

    /// The uncentered `O(n²·t)` correlation kernel the pre-centered
    /// implementation replaced, verbatim.
    fn shifted_matrix_reference(m: &Matrix) -> Matrix {
        let n = m.rows();
        let stats: Vec<(f64, f64)> = (0..n)
            .map(|r| (mean(m.row(r)), crate::stats::std_dev(m.row(r))))
            .collect();
        let t = m.cols() as f64;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            out.set(i, i, 2.0);
            for j in (i + 1)..n {
                let (mi, si) = stats[i];
                let (mj, sj) = stats[j];
                let v = if si == 0.0 || sj == 0.0 || t == 0.0 {
                    1.0
                } else {
                    let mut cov = 0.0;
                    for (x, y) in m.row(i).iter().zip(m.row(j)) {
                        cov += (x - mi) * (y - mj);
                    }
                    cov /= t;
                    ((cov / (si * sj)).clamp(-1.0, 1.0)) + 1.0
                };
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    #[test]
    fn precentered_matrix_is_bit_identical_to_uncentered() {
        // Includes a constant row to cover the zero-variance guard.
        let mut m = scrambled(12, 301);
        for c in 0..301 {
            m.set(7, c, 4.25);
        }
        let fast = shifted_correlation_matrix(&m);
        let reference = shifted_matrix_reference(&m);
        for (a, b) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
