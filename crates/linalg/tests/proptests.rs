//! Property-based tests for the linear-algebra substrate.

use cwsmooth_linalg::{corr, stats, Matrix, MinMax};
use proptest::prelude::*;

/// Strategy: a non-empty vector of finite, reasonably sized floats.
fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 1..max_len)
}

/// Strategy: a small matrix with finite entries.
fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..16).prop_flat_map(|(r, c)| {
        prop::collection::vec(-1e4f64..1e4f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn percentile_between_min_and_max(xs in finite_vec(64), q in 0.0f64..100.0) {
        let p = stats::percentile(&xs, q);
        let (lo, hi) = stats::min_max(&xs);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_q(xs in finite_vec(64), q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
        let (a, b) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::percentile(&xs, a) <= stats::percentile(&xs, b) + 1e-9);
    }

    #[test]
    fn percentile_matches_sort_oracle_at_median(mut xs in finite_vec(64)) {
        let p = stats::percentile(&xs, 50.0);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = xs.len();
        let oracle = if n % 2 == 1 { xs[n / 2] } else { (xs[n / 2 - 1] + xs[n / 2]) / 2.0 };
        prop_assert!((p - oracle).abs() <= 1e-9 * (1.0 + oracle.abs()));
    }

    #[test]
    fn mean_bounded_by_extremes(xs in finite_vec(64)) {
        let m = stats::mean(&xs);
        let (lo, hi) = stats::min_max(&xs);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_non_negative(xs in finite_vec(64)) {
        prop_assert!(stats::variance(&xs) >= 0.0);
    }

    #[test]
    fn subsample_length_is_exact(xs in finite_vec(128), target in 0usize..64) {
        prop_assert_eq!(stats::mean_filter_subsample(&xs, target).len(), target);
    }

    #[test]
    fn subsample_values_bounded(xs in finite_vec(128), target in 1usize..64) {
        let out = stats::mean_filter_subsample(&xs, target);
        let (lo, hi) = stats::min_max(&xs);
        for v in out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn pearson_in_range_and_symmetric(a in finite_vec(32), b in finite_vec(32)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let p = corr::pearson(a, b);
        prop_assert!((-1.0..=1.0).contains(&p));
        prop_assert!((p - corr::pearson(b, a)).abs() < 1e-12);
    }

    #[test]
    fn pearson_self_is_one_unless_constant(a in finite_vec(32)) {
        let p = corr::pearson(&a, &a);
        if stats::variance(&a) > 0.0 {
            prop_assert!((p - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(p, 0.0);
        }
    }

    #[test]
    fn correlation_matrix_is_symmetric_in_range(m in small_matrix()) {
        let c = corr::shifted_correlation_matrix(&m);
        let n = m.rows();
        prop_assert_eq!(c.shape(), (n, n));
        for i in 0..n {
            prop_assert!((c.get(i, i) - 2.0).abs() < 1e-12);
            for j in 0..n {
                prop_assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-9);
                prop_assert!(c.get(i, j) >= -1e-9 && c.get(i, j) <= 2.0 + 1e-9);
            }
        }
    }

    #[test]
    fn global_coefficients_in_range(m in small_matrix()) {
        let c = corr::shifted_correlation_matrix(&m);
        for g in corr::global_coefficients(&c) {
            prop_assert!((-1e-9..=2.0 + 1e-9).contains(&g));
        }
    }

    #[test]
    fn minmax_apply_lands_in_unit_interval(m in small_matrix()) {
        let mm = MinMax::fit(&m);
        let n = mm.apply(&m).unwrap();
        for &v in n.as_slice() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn minmax_preserves_row_extremes(m in small_matrix()) {
        let mm = MinMax::fit(&m);
        let n = mm.apply(&m).unwrap();
        for r in 0..m.rows() {
            let (lo, hi) = stats::min_max(m.row(r));
            if hi > lo {
                let (nlo, nhi) = stats::min_max(n.row(r));
                prop_assert!(nlo.abs() < 1e-12);
                prop_assert!((nhi - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn permute_rows_with_identity_is_noop(m in small_matrix()) {
        let id: Vec<usize> = (0..m.rows()).collect();
        prop_assert_eq!(m.permute_rows(&id).unwrap(), m);
    }

    #[test]
    fn col_window_shape_law(m in small_matrix(), a in 0usize..16, b in 0usize..16) {
        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let end = end.min(m.cols());
        let start = start.min(end);
        let w = m.col_window(start, end).unwrap();
        prop_assert_eq!(w.shape(), (m.rows(), end - start));
    }

    #[test]
    fn backward_diff_undoes_cumsum(xs in finite_vec(32)) {
        // cumulative sums, then backward differences with history 0 recovers xs[1..]
        let mut cum = Vec::with_capacity(xs.len());
        let mut acc = 0.0;
        for &x in &xs {
            acc += x;
            cum.push(acc);
        }
        let m = Matrix::from_rows([cum.clone()]).unwrap();
        let d = m.backward_diff(Some(&[0.0]));
        for (i, &x) in xs.iter().enumerate() {
            prop_assert!((d.row(0)[i] - x).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }
}
