//! Pins the acceptance criterion of the metrics hot path: steady-state
//! recording — counter adds, gauge stores, histogram records and span
//! drops — allocates **zero** heap bytes. Registration and snapshots
//! are cold and may allocate; this test warms every handle (and the
//! thread's counter stripe) first, then measures a large recording
//! window under a counting global allocator filtered to this thread.
//! This file holds exactly one `#[test]`, mirroring the workspace's
//! `transport_alloc.rs` idiom.

use cwsmooth_obs::{Registry, Snapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that sets this flag is counted — the libtest
    /// harness threads allocate on their own schedules.
    static COUNT_ME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counted() -> bool {
    COUNT_ME.try_with(std::cell::Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: a pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's contract is ours; the
// counters never touch the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as System.alloc, to which we forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: same contract as System.dealloc, to which we forward.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counted() {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as System.realloc, to which we forward.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ROUNDS: u64 = 50_000;

#[test]
fn steady_state_metric_recording_performs_no_heap_allocation() {
    COUNT_ME.with(|c| c.set(true));

    // ---- Setup (allocates freely): registry, one handle per kind. ----
    let registry = Registry::new();
    let events = registry.counter("cws_events_total", &[("stage", "alloc-test")]);
    let depth = registry.gauge("cws_queue_depth", &[("queue", "alloc-test")]);
    let watermark = registry.gauge("cws_queue_high_watermark", &[("queue", "alloc-test")]);
    let ingest_ns = registry.histogram("cws_ingest_ns", &[("shard", "0")]);

    // ---- Warm-up: touch every handle once so the thread's stripe id
    // is assigned and any lazy one-time state exists. ----
    events.inc();
    depth.set(1);
    watermark.raise(1);
    ingest_ns.record(1);
    {
        let _span = ingest_ns.start_span();
    }

    // ---- Measurement window: a realistic per-event recording mix —
    // counter bump, depth store, watermark raise, latency sample and a
    // scoped span — repeated tens of thousands of times. ----
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let d0 = DEALLOCS.load(Ordering::SeqCst);
    for i in 0..ROUNDS {
        let _span = ingest_ns.start_span();
        events.inc();
        depth.set(i % 97);
        watermark.raise(i % 97);
        ingest_ns.record(i);
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - d0;

    assert_eq!(allocs, 0, "metric recording allocated {allocs} times");
    assert_eq!(deallocs, 0, "metric recording freed {deallocs} times");

    // ---- Sanity: the records actually landed (cold reads may alloc). ----
    assert_eq!(events.get(), ROUNDS + 1);
    assert_eq!(
        ingest_ns.count(),
        2 * ROUNDS + 2,
        "explicit records plus span drops"
    );
    assert_eq!(watermark.get(), 96);
    let mut snap = Snapshot::new();
    use cwsmooth_obs::Observe;
    registry.observe(&mut snap);
    assert_eq!(snap.samples().len(), 4);
}
