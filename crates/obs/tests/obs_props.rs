//! Property tests for the exporter-facing math and encodings:
//!
//! * **Bucket tiling** — the 65 log2 histogram buckets tile `u64`
//!   exactly: every value lands in exactly one bucket, bounds are
//!   contiguous from 0 to `u64::MAX`, and `bucket_index` agrees with
//!   `bucket_bounds`.
//! * **Label escaping** — Prometheus label escaping (`\`, `"`,
//!   newline) round-trips through the escape helpers *and* through the
//!   actual rendered text exposition output.

use cwsmooth_obs::{
    bucket_bounds, bucket_index, encode_prometheus, escape_label, unescape_label, Snapshot,
    HIST_BUCKETS,
};
use proptest::prelude::*;

#[test]
fn buckets_are_contiguous_from_zero_to_max() {
    let (lo0, hi0) = bucket_bounds(0);
    assert_eq!((lo0, hi0), (0, 0), "bucket 0 holds exactly {{0}}");
    let mut prev_hi = hi0;
    for b in 1..HIST_BUCKETS {
        let (lo, hi) = bucket_bounds(b);
        assert_eq!(
            lo,
            prev_hi.wrapping_add(1),
            "bucket {b} must start where bucket {} ended",
            b - 1
        );
        assert!(lo <= hi, "bucket {b} bounds inverted");
        prev_hi = hi;
    }
    assert_eq!(prev_hi, u64::MAX, "last bucket must reach u64::MAX");
}

/// Scans an escaped label value out of rendered exposition text:
/// everything from `from` to the first *unescaped* double quote.
fn scan_label_value(text: &str, from: usize) -> Option<&str> {
    let rest = &text[from..];
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&rest[..i]),
            _ => i += 1,
        }
    }
    None
}

/// Label-value payloads dense in the three escaped characters.
fn label_value() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select("ab Z0_\\\"\n\t{}=,n\\\"\n".chars().collect::<Vec<_>>()),
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    #[test]
    fn every_u64_lands_in_exactly_one_bucket(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < HIST_BUCKETS);
        let containing: Vec<usize> = (0..HIST_BUCKETS)
            .filter(|&b| {
                let (lo, hi) = bucket_bounds(b);
                lo <= v && v <= hi
            })
            .collect();
        prop_assert_eq!(&containing, &vec![idx], "value {} not tiled once", v);
    }

    #[test]
    fn neighbors_of_bucket_edges_change_bucket(b in 1usize..HIST_BUCKETS) {
        let (lo, hi) = bucket_bounds(b);
        prop_assert_eq!(bucket_index(lo), b);
        prop_assert_eq!(bucket_index(hi), b);
        prop_assert_eq!(bucket_index(lo - 1), b - 1, "left edge leaks");
        if hi < u64::MAX {
            prop_assert_eq!(bucket_index(hi + 1), b + 1, "right edge leaks");
        }
    }

    #[test]
    fn escape_round_trips_and_emits_no_raw_specials(s in label_value()) {
        let escaped = escape_label(&s);
        prop_assert!(!escaped.contains('\n'), "raw newline survived escaping");
        prop_assert_eq!(unescape_label(&escaped), Some(s));
    }

    #[test]
    fn rendered_exposition_text_round_trips_label_values(s in label_value()) {
        let mut snap = Snapshot::new();
        snap.counter("cws_prop_total", &[("tag", &s)], 7);
        let text = encode_prometheus(&snap);
        // One metric line: cws_prop_total{tag="<escaped>"} 7
        let marker = "cws_prop_total{tag=\"";
        let at = text.find(marker).map(|i| i + marker.len());
        prop_assert!(at.is_some(), "metric line missing: {}", text);
        let escaped = at.and_then(|i| scan_label_value(&text, i));
        prop_assert!(escaped.is_some(), "unterminated label value: {}", text);
        prop_assert_eq!(
            escaped.and_then(unescape_label),
            Some(s),
            "label value did not survive the wire format"
        );
        // The value itself must never smuggle a raw newline into the
        // line-oriented format.
        for line in text.lines() {
            prop_assert!(
                line.starts_with('#') || line.starts_with("cws_prop_total"),
                "stray line {:?}",
                line
            );
        }
    }
}
