//! # cwsmooth-obs — the observability plane
//!
//! A std-only metrics subsystem sized for the cwsmooth pipeline: every
//! stage (fleet engine, queue transport, socket client/server, store,
//! detectors) records into shared lock-free handles and exposes its
//! colder stats structs through one [`Observe`] trait, so a single
//! scrape shows the whole pipeline's health.
//!
//! Three layers:
//!
//! - [`metrics`] — the hot path. [`Counter`] (striped, cache-padded
//!   cells), [`Gauge`] (last-write-wins), [`Histogram`] (65 fixed
//!   log2 buckets covering all of `u64`) and the scoped [`Span`]
//!   timer. Every record call is zero-alloc and a couple of `Relaxed`
//!   atomic ops — pinned by a counting-allocator test, exactly like
//!   the transport's `transport_alloc.rs`.
//! - [`snapshot`] — the cold path. [`Observe`] turns any component
//!   into samples; [`MetricsHub`] merges the live [`Registry`] with
//!   snapshots published by components the exporter thread cannot
//!   reach directly.
//! - [`encode`] — pure encoders: Prometheus text exposition format
//!   (escaped labels, cumulative `_bucket`/`_sum`/`_count`) and JSON.
//!
//! The HTTP `GET /metrics` endpoint itself lives in `cwsmooth-net`
//! (it reuses that crate's `Accept`/`Link` listener traits); this
//! crate stays at the bottom of the dependency graph so every other
//! crate can depend on it without cycles.
//!
//! ## Consistency model
//!
//! Recording is `Relaxed` throughout: each series is an independent
//! scalar with no ordering obligation to any other. A scrape is a
//! *sampled* view — counters that one thread bumped "together" may be
//! observed one-updated-one-not. What is guaranteed: no sample is ever
//! torn within itself, counters are monotone, and a quiescent system
//! (all recorders joined) snapshots exactly.
//!
//! ```
//! use cwsmooth_obs::{MetricsHub, Registry};
//!
//! let registry = Registry::new();
//! let events = registry.counter("cws_events_total", &[("stage", "demo")]);
//! let ingest = registry.histogram("cws_ingest_ns", &[]);
//! {
//!     let _span = ingest.start_span(); // records elapsed ns on drop
//!     events.inc();
//! }
//! let hub = MetricsHub::new(registry);
//! let text = hub.render_prometheus();
//! assert!(text.contains("cws_events_total{stage=\"demo\"} 1"));
//! assert!(text.contains("cws_ingest_ns_count 1"));
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod metrics;
pub mod snapshot;

pub use encode::{encode_json, encode_prometheus, escape_label, unescape_label};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, Registry, Span, HIST_BUCKETS,
};
pub use snapshot::{HistogramSnapshot, MetricsHub, Observe, Sample, Snapshot, Value};
