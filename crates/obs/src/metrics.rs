//! Hot-path metric handles and the registry that owns them.
//!
//! The recording calls — [`Counter::add`], [`Gauge::set`],
//! [`Histogram::record`], a [`Span`] drop — are the only part of this
//! crate that runs on pipeline hot paths, so they are held to the
//! workspace sink contract: **zero allocation** and **one or two
//! `Relaxed` atomic RMWs** per call, nothing else. Counters stripe
//! across cache-line-padded cells indexed by a thread-local stripe id,
//! so concurrent recorders on different threads do not bounce a shared
//! line. Everything cold — registration, snapshotting, encoding —
//! lives behind a mutex and may allocate freely.
//!
//! All atomics here are `Relaxed` on purpose: each metric is an
//! independent monotone (or last-write-wins) scalar with no
//! happens-before obligation to any other memory. A scrape may observe
//! counters mid-update relative to each other; that torn-across-series
//! view is inherent to sampling live counters and is documented at the
//! exporter, not papered over with fences on the hot path.

use crate::snapshot::{HistogramSnapshot, Observe, Snapshot};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Stripes per counter. A power of two so the stripe id reduces with a
/// mask; 8 lines (512 B) per counter bounds memory while giving 8
/// concurrent recorders private lines.
const STRIPES: usize = 8;

/// Number of histogram buckets: one per power of two of `u64`, plus
/// the zero bucket. Bucket `0` holds exactly `{0}`; bucket `b` in
/// `1..=63` holds `[2^(b-1), 2^b - 1]`; bucket `64` holds
/// `[2^63, u64::MAX]`. Together they tile `u64` with no gaps or
/// overlaps (pinned by a proptest).
pub const HIST_BUCKETS: usize = 65;

/// The bucket a value lands in (see [`HIST_BUCKETS`] for the layout).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` range of bucket `index`; out-of-range
/// indices clamp to the last bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else if index >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

/// One cache line per stripe so concurrent recorders do not share one.
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// Round-robin source of thread stripe ids.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe, assigned on first record. `usize::MAX`
    /// marks "not yet assigned"; const-initialised so the TLS slot
    /// never allocates.
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's counter stripe (assigned round-robin once).
#[inline]
fn stripe() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
            s.set(v);
            v
        }
    })
}

/// A monotone event counter, striped across padded cells.
///
/// [`Counter::add`] is zero-alloc and one `Relaxed` `fetch_add` on the
/// calling thread's private stripe. Clones share the same cells.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<[PaddedCell; STRIPES]>,
}

impl Counter {
    /// A detached counter (usable immediately; registered handles come
    /// from [`Registry::counter`]).
    pub fn new() -> Self {
        Self {
            cells: Arc::new(std::array::from_fn(|_| PaddedCell(AtomicU64::new(0)))),
        }
    }

    /// Adds `n`. Hot path: one `Relaxed` RMW, no allocation.
    #[inline]
    pub fn add(&self, n: u64) {
        // Mask keeps the index in bounds without a branch even if the
        // TLS stripe came from a different STRIPES build.
        let i = stripe() & (STRIPES - 1);
        self.cells[i].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one. Hot path.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes (wrapping on overflow).
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .fold(0u64, |acc, c| acc.wrapping_add(c.0.load(Ordering::Relaxed)))
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A last-write-wins integer gauge (queue depth, watermark, flags).
///
/// [`Gauge::set`] is a single `Relaxed` store — cheaper than a counter
/// bump — so a producer can republish a depth on every push.
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A detached gauge holding zero.
    pub fn new() -> Self {
        Self {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Publishes an absolute value. Hot path: one `Relaxed` store.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below it (watermarks). Hot
    /// path-safe but costs a load plus, rarely, a `fetch_max`.
    #[inline]
    pub fn raise(&self, v: u64) {
        if self.value.load(Ordering::Relaxed) < v {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed log2-bucket histogram of `u64` samples (latencies in ns,
/// sizes in bytes). See [`HIST_BUCKETS`] for the bucket layout.
///
/// [`Histogram::record`] is zero-alloc and three `Relaxed` RMWs
/// (bucket, sum, count).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// A detached, empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample. Hot path: three `Relaxed` RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        // bucket_index is provably < HIST_BUCKETS; the min is a free
        // bounds guarantee for the optimizer, not a behavior change.
        let b = bucket_index(value).min(HIST_BUCKETS - 1);
        self.inner.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a scoped span whose drop records elapsed nanoseconds.
    #[inline]
    pub fn start_span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: std::time::Instant::now(),
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts. Buckets are read one
    /// by one with `Relaxed` loads, so a snapshot taken during
    /// concurrent recording may be torn across buckets; `count` is
    /// read last and can exceed the bucket total by in-flight records.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// A scoped stage timer: records elapsed wall nanoseconds into its
/// histogram when dropped. Zero-alloc on both ends.
#[must_use = "a span records on drop; binding it to _ measures nothing"]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: std::time::Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
    }
}

/// What a registered series holds.
#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

#[derive(Default)]
struct RegistryInner {
    entries: Mutex<Vec<Entry>>,
}

/// The shared metric registry: names and label sets map to live
/// handles. Registration is idempotent — asking twice for the same
/// `(name, labels)` series returns clones of one underlying metric —
/// and cheap-but-cold (a mutex and allocation); the returned handles
/// are the lock-free hot-path objects.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        // A panic while holding this mutex cannot leave the Vec in a
        // broken state (every push is a complete entry), so poisoning
        // is recoverable by construction.
        self.inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn find(entries: &[Entry], name: &str, labels: &[(&str, &str)]) -> Option<Handle> {
        entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels)
                        .all(|((k0, v0), (k1, v1))| k0 == k1 && v0 == v1)
            })
            .map(|e| e.handle.clone())
    }

    fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    /// The counter registered as `name` with `labels`, creating it on
    /// first use. If the series exists as a different metric kind, a
    /// detached counter is returned instead of corrupting the series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut entries = self.entries();
        match Self::find(&entries, name, labels) {
            Some(Handle::Counter(c)) => c,
            Some(_) => Counter::new(),
            None => {
                let c = Counter::new();
                entries.push(Entry {
                    name: name.to_string(),
                    labels: Self::own_labels(labels),
                    handle: Handle::Counter(c.clone()),
                });
                c
            }
        }
    }

    /// The gauge registered as `name` with `labels` (see
    /// [`Registry::counter`] for the idempotence rules).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut entries = self.entries();
        match Self::find(&entries, name, labels) {
            Some(Handle::Gauge(g)) => g,
            Some(_) => Gauge::new(),
            None => {
                let g = Gauge::new();
                entries.push(Entry {
                    name: name.to_string(),
                    labels: Self::own_labels(labels),
                    handle: Handle::Gauge(g.clone()),
                });
                g
            }
        }
    }

    /// The histogram registered as `name` with `labels` (see
    /// [`Registry::counter`] for the idempotence rules).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut entries = self.entries();
        match Self::find(&entries, name, labels) {
            Some(Handle::Histogram(h)) => h,
            Some(_) => Histogram::new(),
            None => {
                let h = Histogram::new();
                entries.push(Entry {
                    name: name.to_string(),
                    labels: Self::own_labels(labels),
                    handle: Handle::Histogram(h.clone()),
                });
                h
            }
        }
    }

    /// Registered series count.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }
}

impl Observe for Registry {
    fn observe(&self, out: &mut Snapshot) {
        let entries = self.entries();
        for e in entries.iter() {
            let labels: Vec<(&str, &str)> = e
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &e.handle {
                Handle::Counter(c) => out.counter(&e.name, &labels, c.get()),
                Handle::Gauge(g) => out.gauge(&e.name, &labels, g.get() as f64),
                Handle::Histogram(h) => out.histogram(&e.name, &labels, h.snapshot()),
            }
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("series", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_totals_across_threads() {
        let c = Counter::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_set_and_raise() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.raise(3);
        assert_eq!(g.get(), 7, "raise must not lower");
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_land_where_documented() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.buckets[0], 1, "zero bucket");
        assert_eq!(snap.buckets[1], 1, "{{1}}");
        assert_eq!(snap.buckets[2], 2, "[2,3]");
        assert_eq!(snap.buckets[3], 1, "[4,7]");
        assert_eq!(snap.buckets[10], 1, "[512,1023]");
        assert_eq!(snap.buckets[11], 1, "[1024,2047]");
        assert_eq!(snap.buckets[64], 1, "top bucket");
        // 0+1+2+3+4+1023+1024 = 2057; adding u64::MAX wraps to -1.
        assert_eq!(snap.sum, 2057u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.start_span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "at least the 1ms sleep");
    }

    #[test]
    fn registry_is_idempotent_per_series() {
        let r = Registry::new();
        let a = r.counter("cws_events_total", &[("stage", "fleet")]);
        let b = r.counter("cws_events_total", &[("stage", "fleet")]);
        let other = r.counter("cws_events_total", &[("stage", "store")]);
        a.add(2);
        b.add(3);
        other.add(10);
        assert_eq!(a.get(), 5, "same series shares cells");
        assert_eq!(other.get(), 10, "different labels are a new series");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn registry_kind_mismatch_detaches() {
        let r = Registry::new();
        let c = r.counter("cws_depth", &[]);
        c.add(4);
        let g = r.gauge("cws_depth", &[]);
        g.set(9);
        assert_eq!(c.get(), 4, "registered counter untouched");
        assert_eq!(r.len(), 1, "no duplicate series registered");
    }

    #[test]
    fn registry_observe_renders_all_kinds() {
        let r = Registry::new();
        r.counter("c", &[("k", "v")]).add(3);
        r.gauge("g", &[]).set(8);
        r.histogram("h", &[]).record(100);
        let mut snap = Snapshot::default();
        r.observe(&mut snap);
        assert_eq!(snap.samples().len(), 3);
    }
}
