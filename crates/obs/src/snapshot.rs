//! The snapshot plane: how components expose state to the exporter.
//!
//! Hot paths record through the handles in [`crate::metrics`]; cold
//! state that already lives in a stats struct (`FleetStats`,
//! `NetStats`, store recovery reports…) is exposed by implementing
//! [`Observe`] and pushing [`Sample`]s into a [`Snapshot`] at scrape
//! or publish time. The [`MetricsHub`] merges both worlds: the live
//! registry plus keyed snapshots published by components the exporter
//! thread cannot reach (a sink owned by a consumer thread, a store
//! owned by a serve loop).

use crate::metrics::Registry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, `crate::metrics::HIST_BUCKETS` long
    /// (not cumulative; the encoders accumulate).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Total samples recorded.
    pub count: u64,
}

/// One sampled value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A monotone total.
    Counter(u64),
    /// A last-write-wins level.
    Gauge(f64),
    /// A bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// One series sample: name, label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`cws_events_total`, …).
    pub name: String,
    /// Label key/value pairs, in emission order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: Value,
}

/// An ordered collection of samples, filled by [`Observe`]rs and
/// consumed by the encoders in [`crate::encode`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    samples: Vec<Sample>,
}

fn own(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: own(labels),
            value: Value::Counter(value),
        });
    }

    /// Appends a gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: own(labels),
            value: Value::Gauge(value),
        });
    }

    /// Appends a histogram sample.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], value: HistogramSnapshot) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: own(labels),
            value: Value::Histogram(value),
        });
    }

    /// Appends every sample of `other`.
    pub fn merge(&mut self, other: &Snapshot) {
        self.samples.extend(other.samples.iter().cloned());
    }

    /// Drops all samples, keeping the allocation.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// The samples, in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

/// Anything that can report its state as metric samples.
///
/// Implementations run at scrape/publish cadence — allocation and
/// locking are fine here; only the record calls on the handles in
/// [`crate::metrics`] are hot-path constrained.
pub trait Observe {
    /// Pushes this component's current samples into `out`.
    fn observe(&self, out: &mut Snapshot);
}

impl<T: Observe + ?Sized> Observe for &T {
    fn observe(&self, out: &mut Snapshot) {
        (**self).observe(out);
    }
}

struct HubInner {
    registry: Registry,
    published: Mutex<BTreeMap<String, Snapshot>>,
}

/// The merge point the exporter reads: a live [`Registry`] plus keyed
/// snapshots for components the exporter thread cannot observe
/// directly (each [`MetricsHub::publish`] replaces that key's previous
/// snapshot). Clones share state; the hub is `Send + Sync`.
#[derive(Clone)]
pub struct MetricsHub {
    inner: Arc<HubInner>,
}

impl MetricsHub {
    /// A hub over `registry`.
    pub fn new(registry: Registry) -> Self {
        Self {
            inner: Arc::new(HubInner {
                registry,
                published: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The live registry (for handing out hot-path handles).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    fn published(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Snapshot>> {
        // Poisoning is recoverable: the map only ever holds complete
        // snapshots (each insert replaces a whole value).
        self.inner
            .published
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes `source`'s current snapshot under `key`, replacing
    /// whatever that key published before. Call at a coarse cadence
    /// (per commit, per batch) — this locks and allocates.
    pub fn publish(&self, key: &str, source: &dyn Observe) {
        let mut snap = Snapshot::new();
        source.observe(&mut snap);
        self.published().insert(key.to_string(), snap);
    }

    /// The merged view: live registry samples first, then every
    /// published snapshot in key order.
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::new();
        self.inner.registry.observe(&mut out);
        let published = self.published();
        for snap in published.values() {
            out.merge(snap);
        }
        out
    }

    /// The merged view in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        crate::encode::encode_prometheus(&self.snapshot())
    }

    /// The merged view as a JSON document.
    pub fn render_json(&self) -> String {
        crate::encode::encode_json(&self.snapshot())
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("registry", &self.inner.registry)
            .field("published_keys", &self.published().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl Observe for Fixed {
        fn observe(&self, out: &mut Snapshot) {
            out.counter("fixed_total", &[], self.0);
        }
    }

    #[test]
    fn publish_replaces_per_key() {
        let hub = MetricsHub::new(Registry::new());
        hub.publish("a", &Fixed(1));
        hub.publish("a", &Fixed(5));
        hub.publish("b", &Fixed(7));
        let snap = hub.snapshot();
        let vals: Vec<u64> = snap
            .samples()
            .iter()
            .filter_map(|s| match s.value {
                Value::Counter(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![5, 7], "same key replaced, keys ordered");
    }

    #[test]
    fn snapshot_merges_registry_and_published() {
        let hub = MetricsHub::new(Registry::new());
        hub.registry().counter("live_total", &[]).add(3);
        hub.publish("sink", &Fixed(9));
        let snap = hub.snapshot();
        assert_eq!(snap.samples().len(), 2);
        assert_eq!(snap.samples()[0].name, "live_total", "registry first");
        assert_eq!(snap.samples()[1].name, "fixed_total");
    }
}
