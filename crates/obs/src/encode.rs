//! Snapshot encoders: Prometheus text exposition format and JSON.
//!
//! Both encoders are pure functions over a [`Snapshot`] — they never
//! touch live metrics, so a scrape's cost is bounded by the snapshot
//! size. The Prometheus encoder follows the text exposition format:
//! one `# TYPE` line per metric name, label values escaped
//! (`\` → `\\`, `"` → `\"`, newline → `\n`), histograms emitted as
//! cumulative `_bucket{le="…"}` series ending in `le="+Inf"` plus
//! `_sum` and `_count`.

use crate::metrics::bucket_bounds;
use crate::snapshot::{Sample, Snapshot, Value};
use std::fmt::Write as _;

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label`]. `None` if `value` holds a dangling or
/// unknown escape, or a raw newline/quote that [`escape_label`] could
/// never have produced.
pub fn unescape_label(value: &str) -> Option<String> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                _ => return None,
            },
            '"' | '\n' => return None,
            c => out.push(c),
        }
    }
    Some(out)
}

/// Formats a float the way Prometheus expects (`+Inf`, `-Inf`, `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `{k="v",…}` (empty string when there are no labels), with
/// `extra` appended last when present.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn type_line(out: &mut String, seen: &mut Vec<String>, name: &str, kind: &str) {
    if seen.iter().any(|s| s == name) {
        return;
    }
    seen.push(name.to_string());
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Encodes a snapshot in the Prometheus text exposition format.
pub fn encode_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen = Vec::new();
    for s in snap.samples() {
        match &s.value {
            Value::Counter(v) => {
                type_line(&mut out, &mut seen, &s.name, "counter");
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            Value::Gauge(v) => {
                type_line(&mut out, &mut seen, &s.name, "gauge");
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    fmt_f64(*v)
                );
            }
            Value::Histogram(h) => {
                type_line(&mut out, &mut seen, &s.name, "histogram");
                // Cumulative buckets; empty leading/trailing runs are
                // skipped (legal: `le` just has to increase), +Inf is
                // always emitted.
                let mut cum = 0u64;
                for (i, &b) in h.buckets.iter().enumerate() {
                    cum += b;
                    if b == 0 {
                        continue;
                    }
                    let (_, high) = bucket_bounds(i);
                    let le = if i + 1 == h.buckets.len() {
                        "+Inf".to_string()
                    } else {
                        format!("{high}")
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cum}",
                        s.name,
                        label_block(&s.labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cum}",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf")))
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // JSON has no Inf/NaN literals; encode them as strings.
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{}\"", fmt_f64(v))
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

fn json_sample(s: &Sample) -> String {
    let head = format!(
        "{{\"name\":\"{}\",\"labels\":{},",
        json_escape(&s.name),
        json_labels(&s.labels)
    );
    match &s.value {
        Value::Counter(v) => format!("{head}\"type\":\"counter\",\"value\":{v}}}"),
        Value::Gauge(v) => format!("{head}\"type\":\"gauge\",\"value\":{}}}", json_f64(*v)),
        Value::Histogram(h) => {
            let mut buckets = String::from("[");
            let mut first = true;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                if !first {
                    buckets.push(',');
                }
                first = false;
                let (_, high) = bucket_bounds(i);
                let le = if i + 1 == h.buckets.len() {
                    "\"+Inf\"".to_string()
                } else {
                    format!("{high}")
                };
                let _ = write!(buckets, "[{le},{b}]");
            }
            buckets.push(']');
            format!(
                "{head}\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":{buckets}}}",
                h.count, h.sum
            )
        }
    }
}

/// Encodes a snapshot as a JSON document:
/// `{"samples":[{"name":…,"labels":…,"type":…,…}, …]}`. Histogram
/// buckets are `[upper_bound, raw_count]` pairs (not cumulative),
/// empty buckets omitted.
pub fn encode_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"samples\":[");
    for (i, s) in snap.samples().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_sample(s));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSnapshot;

    #[test]
    fn counter_and_gauge_lines() {
        let mut snap = Snapshot::new();
        snap.counter("cws_events_total", &[("stage", "fleet")], 42);
        snap.gauge("cws_queue_depth", &[("queue", "store")], 7.0);
        let text = encode_prometheus(&snap);
        assert!(text.contains("# TYPE cws_events_total counter"));
        assert!(text.contains("cws_events_total{stage=\"fleet\"} 42"));
        assert!(text.contains("# TYPE cws_queue_depth gauge"));
        assert!(text.contains("cws_queue_depth{queue=\"store\"} 7"));
    }

    #[test]
    fn histogram_is_cumulative_and_ends_in_inf() {
        let mut buckets = vec![0u64; crate::metrics::HIST_BUCKETS];
        buckets[0] = 2; // two zeros
        buckets[3] = 1; // one value in [4,7]
        let mut snap = Snapshot::new();
        snap.histogram(
            "cws_ns",
            &[],
            HistogramSnapshot {
                buckets,
                sum: 5,
                count: 3,
            },
        );
        let text = encode_prometheus(&snap);
        assert!(text.contains("cws_ns_bucket{le=\"0\"} 2"), "{text}");
        assert!(text.contains("cws_ns_bucket{le=\"7\"} 3"), "{text}");
        assert!(text.contains("cws_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("cws_ns_sum 5"));
        assert!(text.contains("cws_ns_count 3"));
    }

    #[test]
    fn label_escaping_per_spec() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("two\nlines"), "two\\nlines");
        assert_eq!(unescape_label("two\\nlines").as_deref(), Some("two\nlines"));
        assert_eq!(unescape_label("dangling\\"), None);
        assert_eq!(unescape_label("bad\\q"), None);
        assert_eq!(unescape_label("raw\nnewline"), None);
    }

    #[test]
    fn json_document_is_wellformed_enough() {
        let mut snap = Snapshot::new();
        snap.counter("c", &[("k", "v\"q")], 1);
        snap.gauge("g", &[], f64::INFINITY);
        let json = encode_json(&snap);
        assert!(json.starts_with("{\"samples\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"k\":\"v\\\"q\""));
        assert!(json.contains("\"value\":\"+Inf\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn special_floats_render_prometheus_style() {
        let mut snap = Snapshot::new();
        snap.gauge("g", &[], f64::NAN);
        snap.gauge("g", &[("x", "1")], f64::NEG_INFINITY);
        let text = encode_prometheus(&snap);
        assert!(text.contains("g NaN"));
        assert!(text.contains("g{x=\"1\"} -Inf"));
    }
}
