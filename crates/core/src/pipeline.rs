//! Composable [`FleetSink`] operators: the streaming ODA dataflow.
//!
//! [`FleetEngine::ingest_frame_sink`](crate::fleet::FleetEngine::ingest_frame_sink)
//! delivers completed-window events to *one* sink by reference. Real ODA
//! deployments need more than one consumer — persist every signature,
//! classify it, watch its distribution for drift — and they need routing
//! (only the GPU partition feeds the GPU model) and decimation (the
//! dashboard wants every 6th window). The operators here wrap sinks in
//! sinks, so a whole delivery tree is itself a [`FleetSink`] and the
//! engine stays oblivious:
//!
//! ```text
//!   FleetEngine ─► Tee ──► SignatureStore            (persist all)
//!                   ├────► StreamingDetector         (classify all)
//!                   └─► Sample(6) ─► DriftMonitor    (drift, decimated)
//! ```
//!
//! Every operator forwards the borrowed [`FleetEvent`] unchanged and
//! keeps no per-event heap state, so a steady-state pipeline built from
//! allocation-free leaf sinks is allocation-free end to end (pinned by
//! the workspace-level counting-allocator test). [`Collect`] is the one
//! deliberate exception: it clones events into an owned history.
//!
//! Sinks compose by value; wrap a long-lived sink as `&mut sink` (the
//! blanket [`FleetSink`] impl for `&mut S`) to keep using it after the
//! ingest loop.

use crate::error::Result;
use crate::fleet::{FleetEvent, FleetEventBuf, FleetSink};
use cwsmooth_obs::{MetricsHub, Observe, Snapshot};

/// Forwarding through a mutable reference, so long-lived sinks can be
/// lent to an operator tree without giving up ownership:
/// `Tee((&mut store, &mut detector))`.
impl<S: FleetSink + ?Sized> FleetSink for &mut S {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        (**self).on_event(event)
    }

    fn on_event_owned(&mut self, buf: FleetEventBuf) -> Result<FleetEventBuf> {
        (**self).on_event_owned(buf)
    }
}

/// Forwarding through a box, so heterogeneous sinks can live behind
/// `Box<dyn FleetSink>` — the element type of [`TeeVec`].
impl<S: FleetSink + ?Sized> FleetSink for Box<S> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        (**self).on_event(event)
    }

    fn on_event_owned(&mut self, buf: FleetEventBuf) -> Result<FleetEventBuf> {
        (**self).on_event_owned(buf)
    }
}

/// Fan-out: delivers every event to each sink of a tuple, in field
/// order. Implemented for tuples of 1 to 8 sinks.
///
/// An error from sink `i` aborts delivery of that event to sinks
/// `i+1..` and propagates to the engine (which in turn stops delivering
/// the rest of the frame) — the same first-error-wins contract as
/// [`FleetSink`] itself.
///
/// ```
/// use cwsmooth_core::fleet::FleetEvent;
/// use cwsmooth_core::pipeline::{Collect, Tee};
///
/// let mut a = Collect::new();
/// let mut b = Collect::new();
/// let mut tee = Tee((&mut a, &mut b));
/// # use cwsmooth_core::fleet::FleetSink;
/// # use cwsmooth_core::cs::CsSignature;
/// let event = FleetEvent {
///     node: 3,
///     window_index: 0,
///     signature: CsSignature { re: vec![0.5], im: vec![0.0] },
/// };
/// tee.on_event(&event).unwrap();
/// assert_eq!(a.events().len(), 1);
/// assert_eq!(b.events().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tee<T>(pub T);

macro_rules! impl_tee {
    ($($name:ident . $idx:tt,)* ; $last:ident . $lidx:tt) => {
        impl<$($name: FleetSink,)* $last: FleetSink> FleetSink for Tee<($($name,)* $last,)> {
            fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
                $( (self.0).$idx.on_event(event)?; )*
                (self.0).$lidx.on_event(event)
            }

            fn on_event_owned(&mut self, buf: FleetEventBuf) -> Result<FleetEventBuf> {
                // Every sink but the last borrows; the last takes
                // ownership — same field order, same first-error-wins
                // contract, but one branch (a queue, say) gets the
                // envelope without a copy.
                $( (self.0).$idx.on_event(buf.event())?; )*
                (self.0).$lidx.on_event_owned(buf)
            }
        }
    };
}

impl_tee!(; A.0);
impl_tee!(A.0,; B.1);
impl_tee!(A.0, B.1,; C.2);
impl_tee!(A.0, B.1, C.2,; D.3);
impl_tee!(A.0, B.1, C.2, D.3,; E.4);
impl_tee!(A.0, B.1, C.2, D.3, E.4,; F.5);
impl_tee!(A.0, B.1, C.2, D.3, E.4, F.5,; G.6);
impl_tee!(A.0, B.1, C.2, D.3, E.4, F.5, G.6,; H.7);

/// Dynamic fan-out: [`Tee`] for sink sets whose size and composition
/// are decided at runtime. Holds boxed sinks — by default trait objects
/// (`Box<dyn FleetSink>`), so one `TeeVec` can mix operator types that a
/// tuple `Tee` would have to name statically — and delivers every event
/// to each in push order with the same first-error-wins contract: an
/// error from sink `i` aborts delivery of that event to sinks `i+1..`.
///
/// ```
/// use cwsmooth_core::fleet::FleetSink;
/// use cwsmooth_core::pipeline::{Collect, Sample, TeeVec};
///
/// let mut tee = TeeVec::new()
///     .with(Collect::new())
///     .with(Sample::every(6, Collect::new()));
/// assert_eq!(tee.len(), 2);
/// ```
#[derive(Debug)]
pub struct TeeVec<S: FleetSink + ?Sized = dyn FleetSink> {
    sinks: Vec<Box<S>>,
}

// Not derived: the derive would demand `S: Default`, which a trait
// object can't satisfy.
impl<S: FleetSink + ?Sized> Default for TeeVec<S> {
    fn default() -> Self {
        Self { sinks: Vec::new() }
    }
}

impl<S: FleetSink + ?Sized> TeeVec<S> {
    /// An empty fan-out (every event is accepted and ignored).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an already-boxed sink.
    pub fn push_boxed(&mut self, sink: Box<S>) {
        self.sinks.push(sink);
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// `true` when there are no branches.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// The `i`-th branch, if present.
    pub fn sink(&self, i: usize) -> Option<&S> {
        self.sinks.get(i).map(|b| &**b)
    }

    /// The `i`-th branch, mutable.
    pub fn sink_mut(&mut self, i: usize) -> Option<&mut S> {
        self.sinks.get_mut(i).map(|b| &mut **b)
    }

    /// Consumes the fan-out, returning the boxed branches.
    pub fn into_sinks(self) -> Vec<Box<S>> {
        self.sinks
    }
}

impl TeeVec<dyn FleetSink> {
    /// Boxes and appends a sink.
    pub fn push(&mut self, sink: impl FleetSink + 'static) {
        self.sinks.push(Box::new(sink));
    }

    /// Builder form of [`TeeVec::push`].
    pub fn with(mut self, sink: impl FleetSink + 'static) -> Self {
        self.push(sink);
        self
    }
}

impl<S: FleetSink + ?Sized> FleetSink for TeeVec<S> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        for sink in &mut self.sinks {
            sink.on_event(event)?;
        }
        Ok(())
    }

    fn on_event_owned(&mut self, mut buf: FleetEventBuf) -> Result<FleetEventBuf> {
        // Mirrors the tuple `Tee`: all but the last sink borrow, the
        // last takes the envelope without a copy.
        if let Some((last, rest)) = self.sinks.split_last_mut() {
            for sink in rest {
                sink.on_event(buf.event())?;
            }
            buf = last.on_event_owned(buf)?;
        }
        Ok(buf)
    }
}

/// Predicate routing: forwards only the events `pred` accepts.
///
/// The predicate sees the borrowed event and must not assume it outlives
/// the call (the engine reuses event buffers across frames).
#[derive(Debug, Clone)]
pub struct Filter<P, S> {
    pred: P,
    sink: S,
    passed: u64,
    dropped: u64,
}

impl<P, S> Filter<P, S>
where
    P: FnMut(&FleetEvent) -> bool,
    S: FleetSink,
{
    /// Wraps `sink` behind `pred`.
    pub fn new(pred: P, sink: S) -> Self {
        Self {
            pred,
            sink,
            passed: 0,
            dropped: 0,
        }
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped sink, mutable.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Events forwarded so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Events rejected so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the operator, returning the wrapped sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<P, S> FleetSink for Filter<P, S>
where
    P: FnMut(&FleetEvent) -> bool,
    S: FleetSink,
{
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        if (self.pred)(event) {
            self.passed += 1;
            self.sink.on_event(event)
        } else {
            self.dropped += 1;
            Ok(())
        }
    }
}

/// Node-set routing: forwards only events from an explicit set of nodes
/// (membership is one bit test per event).
///
/// The typical use is partition-local consumers — a model trained for
/// the GPU island should only ever see the GPU island:
///
/// ```
/// use cwsmooth_core::pipeline::{Collect, NodeRoute, Tee};
///
/// // Nodes 0..32 feed sink `a`, nodes 32..64 feed sink `b`.
/// let mut tree = Tee((
///     NodeRoute::new(0..32, Collect::new()),
///     NodeRoute::new(32..64, Collect::new()),
/// ));
/// # let _ = &mut tree;
/// ```
#[derive(Debug, Clone)]
pub struct NodeRoute<S> {
    /// Bitset over node ids; nodes beyond its range are rejected.
    bits: Vec<u64>,
    sink: S,
    passed: u64,
    dropped: u64,
}

impl<S: FleetSink> NodeRoute<S> {
    /// Routes the given node ids into `sink`; every other node's events
    /// are dropped.
    pub fn new(nodes: impl IntoIterator<Item = usize>, sink: S) -> Self {
        let mut bits: Vec<u64> = Vec::new();
        for node in nodes {
            let word = node / 64;
            if word >= bits.len() {
                bits.resize(word + 1, 0);
            }
            bits[word] |= 1u64 << (node % 64);
        }
        Self {
            bits,
            sink,
            passed: 0,
            dropped: 0,
        }
    }

    /// `true` when `node`'s events are forwarded.
    pub fn routes(&self, node: usize) -> bool {
        self.bits
            .get(node / 64)
            .is_some_and(|w| w & (1u64 << (node % 64)) != 0)
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped sink, mutable.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Events forwarded so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Events rejected so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the operator, returning the wrapped sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: FleetSink> FleetSink for NodeRoute<S> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        if self.routes(event.node) {
            self.passed += 1;
            self.sink.on_event(event)
        } else {
            self.dropped += 1;
            Ok(())
        }
    }
}

/// Window decimation: forwards one window in `k` per node
/// (`window_index % k == phase`). Because window indexes are per-node
/// counters, every node is decimated on its own stream — a node that
/// joined late still contributes every `k`-th of *its* windows.
#[derive(Debug, Clone)]
pub struct Sample<S> {
    k: usize,
    phase: usize,
    sink: S,
    passed: u64,
    dropped: u64,
}

impl<S: FleetSink> Sample<S> {
    /// Forwards windows whose per-node index is `0 (mod k)`. `k` is
    /// clamped to at least 1 (`k = 1` forwards everything).
    pub fn every(k: usize, sink: S) -> Self {
        Self::with_phase(k, 0, sink)
    }

    /// [`Sample::every`] with an explicit phase (`phase` is reduced
    /// `mod k`), so two decimated consumers can interleave.
    pub fn with_phase(k: usize, phase: usize, sink: S) -> Self {
        let k = k.max(1);
        Self {
            k,
            phase: phase % k,
            sink,
            passed: 0,
            dropped: 0,
        }
    }

    /// The decimation factor.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped sink, mutable.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Events forwarded so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Events rejected so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the operator, returning the wrapped sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: FleetSink> FleetSink for Sample<S> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        if event.window_index % self.k == self.phase {
            self.passed += 1;
            self.sink.on_event(event)
        } else {
            self.dropped += 1;
            Ok(())
        }
    }
}

/// Metrics publication: forwards every event to the wrapped sink
/// unchanged, and every `every`-th event additionally publishes the
/// sink's [`Observe`] snapshot to a [`MetricsHub`] under a fixed key.
///
/// This is how stages owned by a thread the exporter cannot reach — a
/// store behind a [`crate::transport::QueueSink`] consumer, a detector
/// inside a serve loop — still show up on `GET /metrics`: the snapshot
/// is taken *on the owning thread* (where `&sink` is legal) and handed
/// to the shared hub, which the exporter merges at scrape time.
///
/// Publishing locks and allocates, so the cadence matters: a pipeline
/// that must stay allocation-free per event should publish every few
/// hundred events, amortising the cost to noise. The forwarding path
/// itself adds one integer compare per event.
///
/// ```
/// use cwsmooth_core::fleet::FleetSink;
/// use cwsmooth_core::pipeline::{Collect, Publish};
/// use cwsmooth_obs::{MetricsHub, Registry};
///
/// let hub = MetricsHub::new(Registry::new());
/// let mut sink = Publish::new(Collect::new(), hub.clone(), "collect", 100);
/// // ... engine.ingest_frame_sink(&frame, &mut sink) ...
/// ```
#[derive(Debug)]
pub struct Publish<S> {
    sink: S,
    hub: MetricsHub,
    key: String,
    every: u64,
    since: u64,
}

impl<S: Observe> Publish<S> {
    /// Wraps `sink`, publishing its snapshot to `hub` under `key` after
    /// every `every`-th forwarded event (`every` is clamped to at least
    /// 1; 1 publishes on every event).
    pub fn new(sink: S, hub: MetricsHub, key: &str, every: u64) -> Self {
        Self {
            sink,
            hub,
            key: key.to_string(),
            every: every.max(1),
            since: 0,
        }
    }

    /// Publishes the wrapped sink's snapshot now, resetting the event
    /// countdown — call after the last frame so the hub holds the final
    /// totals.
    pub fn flush(&mut self) {
        self.since = 0;
        self.hub.publish(&self.key, &self.sink);
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped sink, mutable.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the operator, returning the wrapped sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn tick(&mut self) {
        self.since += 1;
        if self.since >= self.every {
            self.flush();
        }
    }
}

impl<S: FleetSink + Observe> FleetSink for Publish<S> {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        self.sink.on_event(event)?;
        self.tick();
        Ok(())
    }

    fn on_event_owned(&mut self, buf: FleetEventBuf) -> Result<FleetEventBuf> {
        let buf = self.sink.on_event_owned(buf)?;
        self.tick();
        Ok(buf)
    }
}

/// Forwards the wrapped sink's snapshot (the operator adds no series of
/// its own).
impl<S: Observe> Observe for Publish<S> {
    fn observe(&self, out: &mut Snapshot) {
        self.sink.observe(out);
    }
}

/// Terminal collector: clones every delivered event into an owned
/// vector. This is the inspection/testing leaf of a pipeline — and the
/// one operator that allocates per event, since it takes ownership of
/// borrowed data the engine will overwrite next frame.
#[derive(Debug, Clone, Default)]
pub struct Collect {
    events: Vec<FleetEvent>,
}

impl Collect {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything collected so far, in delivery order.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Consumes the collector, returning the events.
    pub fn into_events(self) -> Vec<FleetEvent> {
        self.events
    }

    /// Drops all collected events (capacity is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl FleetSink for Collect {
    fn on_event(&mut self, event: &FleetEvent) -> Result<()> {
        self.events.push(event.clone());
        Ok(())
    }
}

/// Exports the collected-event count, so a [`Collect`] leaf can sit
/// behind [`Publish`] in tests and examples.
impl Observe for Collect {
    fn observe(&self, out: &mut Snapshot) {
        out.gauge("cws_collect_events", &[], self.events.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::CsSignature;
    use crate::error::CoreError;

    fn event(node: usize, window_index: usize) -> FleetEvent {
        FleetEvent {
            node,
            window_index,
            signature: CsSignature {
                re: vec![node as f64, window_index as f64],
                im: vec![0.25, -0.5],
            },
        }
    }

    /// A leaf sink that counts and optionally fails.
    #[derive(Default)]
    struct Probe {
        seen: Vec<(usize, usize)>,
        fail_at: Option<usize>,
    }

    impl FleetSink for Probe {
        fn on_event(&mut self, e: &FleetEvent) -> Result<()> {
            if self.fail_at == Some(self.seen.len()) {
                return Err(CoreError::Persist("probe full".into()));
            }
            self.seen.push((e.node, e.window_index));
            Ok(())
        }
    }

    #[test]
    fn tee_fans_out_in_field_order_to_all_arities() {
        let mut tee = Tee((Probe::default(), Probe::default(), Probe::default()));
        for i in 0..5 {
            tee.on_event(&event(i, 2 * i)).unwrap();
        }
        let expect: Vec<(usize, usize)> = (0..5).map(|i| (i, 2 * i)).collect();
        assert_eq!(tee.0 .0.seen, expect);
        assert_eq!(tee.0 .1.seen, expect);
        assert_eq!(tee.0 .2.seen, expect);
        // Arity 1 and a full 8-tuple also implement the trait.
        Tee((Probe::default(),)).on_event(&event(0, 0)).unwrap();
        let mut eight = Tee((
            Probe::default(),
            Probe::default(),
            Probe::default(),
            Probe::default(),
            Probe::default(),
            Probe::default(),
            Probe::default(),
            Probe::default(),
        ));
        eight.on_event(&event(1, 1)).unwrap();
        assert_eq!(eight.0 .7.seen, vec![(1, 1)]);
    }

    #[test]
    fn tee_error_skips_later_sinks_for_that_event() {
        let failing = Probe {
            seen: Vec::new(),
            fail_at: Some(1),
        };
        let mut tee = Tee((Probe::default(), failing, Probe::default()));
        tee.on_event(&event(0, 0)).unwrap();
        assert!(tee.on_event(&event(1, 1)).is_err());
        assert_eq!(tee.0 .0.seen.len(), 2, "first sink saw the event");
        assert_eq!(tee.0 .1.seen.len(), 1, "failing sink rejected it");
        assert_eq!(tee.0 .2.seen.len(), 1, "later sink never saw it");
    }

    #[test]
    fn tee_vec_matches_tuple_tee() {
        // Same event stream through a 3-tuple Tee and a 3-branch typed
        // TeeVec: each branch must see the identical sequence.
        let mut tuple = Tee((Collect::new(), Collect::new(), Collect::new()));
        let mut vec: TeeVec<Collect> = TeeVec::default();
        for _ in 0..3 {
            vec.push_boxed(Box::new(Collect::new()));
        }
        for i in 0..5 {
            let e = event(i % 2, i);
            tuple.on_event(&e).unwrap();
            vec.on_event(&e).unwrap();
        }
        let expect = tuple.0 .0.events();
        assert_eq!(tuple.0 .1.events(), expect);
        assert_eq!(tuple.0 .2.events(), expect);
        for i in 0..3 {
            assert_eq!(vec.sink(i).unwrap().events(), expect);
        }
        assert_eq!(vec.len(), 3);
        assert!(!vec.is_empty());
        let sinks = vec.into_sinks();
        assert_eq!(sinks[0].events(), expect);

        // The type-erased default (`TeeVec<dyn FleetSink>`) composes
        // heterogeneous branches behind one sink.
        let mut dynamic: TeeVec = TeeVec::new()
            .with(Collect::new())
            .with(Sample::every(2, Collect::new()));
        for e in expect {
            dynamic.on_event(e).unwrap();
        }
        assert_eq!(dynamic.len(), 2);
        assert!(dynamic.sink_mut(0).is_some());
    }

    #[test]
    fn tee_vec_error_skips_later_sinks_for_that_event() {
        let failing = Probe {
            seen: Vec::new(),
            fail_at: Some(1),
        };
        let mut tee: TeeVec<Probe> = TeeVec::default();
        tee.push_boxed(Box::new(Probe::default()));
        tee.push_boxed(Box::new(failing));
        tee.push_boxed(Box::new(Probe::default()));
        tee.on_event(&event(0, 0)).unwrap();
        assert!(tee.on_event(&event(1, 1)).is_err());
        assert_eq!(tee.sink(0).unwrap().seen.len(), 2, "first sink saw it");
        assert_eq!(tee.sink(1).unwrap().seen.len(), 1, "failing sink rejected");
        assert_eq!(tee.sink(2).unwrap().seen.len(), 1, "later sink skipped");
    }

    #[test]
    fn filter_splits_by_predicate() {
        let mut f = Filter::new(|e: &FleetEvent| e.node.is_multiple_of(2), Probe::default());
        for i in 0..6 {
            f.on_event(&event(i, i)).unwrap();
        }
        assert_eq!(f.passed(), 3);
        assert_eq!(f.dropped(), 3);
        assert_eq!(f.sink().seen, vec![(0, 0), (2, 2), (4, 4)]);
        assert_eq!(f.into_sink().seen.len(), 3);
    }

    #[test]
    fn node_route_is_exact_membership() {
        let mut r = NodeRoute::new([1usize, 3, 64, 130], Probe::default());
        assert!(r.routes(1) && r.routes(3) && r.routes(64) && r.routes(130));
        assert!(!r.routes(0) && !r.routes(2) && !r.routes(65) && !r.routes(1000));
        for node in [0usize, 1, 2, 3, 64, 129, 130] {
            r.on_event(&event(node, 0)).unwrap();
        }
        assert_eq!(r.passed(), 4);
        assert_eq!(r.dropped(), 3);
        assert_eq!(
            r.sink().seen.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![1, 3, 64, 130]
        );
        // Empty set drops everything.
        let mut none = NodeRoute::new(std::iter::empty(), Probe::default());
        none.on_event(&event(0, 0)).unwrap();
        assert_eq!(none.passed(), 0);
    }

    #[test]
    fn sample_keeps_every_kth_window_per_node() {
        let mut s = Sample::every(3, Probe::default());
        assert_eq!(s.k(), 3);
        for w in 0..7 {
            s.on_event(&event(0, w)).unwrap();
            s.on_event(&event(1, w)).unwrap();
        }
        assert_eq!(
            s.sink().seen,
            vec![(0, 0), (1, 0), (0, 3), (1, 3), (0, 6), (1, 6)]
        );
        // Phase shifts the kept residue; k = 0 clamps to pass-through.
        let mut p = Sample::with_phase(3, 4, Probe::default());
        for w in 0..4 {
            p.on_event(&event(0, w)).unwrap();
        }
        assert_eq!(p.sink().seen, vec![(0, 1)]);
        let mut all = Sample::every(0, Probe::default());
        for w in 0..4 {
            all.on_event(&event(0, w)).unwrap();
        }
        assert_eq!(all.passed(), 4);
    }

    #[test]
    fn publish_forwards_everything_and_snapshots_on_cadence() {
        use cwsmooth_obs::{MetricsHub, Registry, Value};

        let hub = MetricsHub::new(Registry::new());
        let mut sink = Publish::new(Collect::new(), hub.clone(), "collect", 4);
        let collected = |hub: &MetricsHub| {
            hub.snapshot().samples().iter().find_map(|s| {
                match (&*s.name == "cws_collect_events", &s.value) {
                    (true, Value::Gauge(v)) => Some(*v),
                    _ => None,
                }
            })
        };
        // Below the cadence: forwarded but not yet published.
        for i in 0..3 {
            sink.on_event(&event(0, i)).unwrap();
        }
        assert_eq!(sink.sink().events().len(), 3);
        assert_eq!(collected(&hub), None, "published before the 4th event");
        // The 4th event crosses the cadence; the hub sees 4. Two more
        // events stay unpublished until flush().
        for i in 3..6 {
            sink.on_event(&event(0, i)).unwrap();
        }
        assert_eq!(collected(&hub), Some(4.0));
        sink.flush();
        assert_eq!(collected(&hub), Some(6.0));
        assert_eq!(sink.into_sink().events().len(), 6);
    }

    #[test]
    fn collect_owns_clones() {
        let mut c = Collect::new();
        let e = event(7, 9);
        c.on_event(&e).unwrap();
        assert_eq!(c.events(), std::slice::from_ref(&e));
        c.clear();
        assert!(c.events().is_empty());
        c.on_event(&e).unwrap();
        assert_eq!(c.into_events(), vec![e]);
    }

    #[test]
    fn operators_nest_and_borrow() {
        // Tee(route → sample → probe, &mut collect): a small tree, with
        // one sink lent by reference and still usable afterwards.
        let mut collect = Collect::new();
        {
            let mut tree = Tee((
                NodeRoute::new(0..2, Sample::every(2, Probe::default())),
                &mut collect,
            ));
            for w in 0..4 {
                for node in 0..3 {
                    tree.on_event(&event(node, w)).unwrap();
                }
            }
            let inner = tree.0 .0.sink();
            assert_eq!(inner.sink().seen, vec![(0, 0), (1, 0), (0, 2), (1, 2)]);
        }
        assert_eq!(collect.events().len(), 12, "collect saw every event");
    }
}
