//! The Correlation-wise Smoothing method (paper Sec. III-C).
//!
//! Three stages:
//!
//! 1. **Training** ([`CsTrainer`]): from a historical sensor matrix `S`,
//!    compute the shifted correlation matrix (Eq. 1), the Algorithm 1 row
//!    permutation and per-row min-max bounds — together a [`CsModel`].
//!    Complexity `O(n²t)`.
//! 2. **Sorting** ([`CsMethod::sort_window`]): min-max normalize a window
//!    `S_w` and permute its rows, surfacing the image-like structure.
//!    Complexity `O(wl·n)`.
//! 3. **Smoothing** ([`CsMethod::signature`]): aggregate sorted rows into
//!    `l` complex blocks (Eq. 2–3): real parts hold block-mean values,
//!    imaginary parts block-mean backward differences. `O(wl·n)`.

use crate::blocks::{block_bounds, Block};
use crate::error::{CoreError, Result};
use crate::method::SignatureMethod;
use crate::model::CsModel;
use crate::ordering;
use cwsmooth_linalg::corr::{global_coefficients, shifted_correlation_matrix};
use cwsmooth_linalg::{Complex64, Matrix, MinMax};

/// Configuration for the CS training stage.
#[derive(Debug, Clone, Default)]
pub struct CsTrainer {
    ordering: OrderingStrategy,
}

/// Which row-ordering strategy training uses (Algorithm 1 by default;
/// alternatives exist for the ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingStrategy {
    /// The paper's Algorithm 1 (greedy correlation chaining).
    #[default]
    CorrelationWise,
    /// Keep raw sensor order (ablation).
    Identity,
    /// Sort by global coefficient only (ablation).
    GlobalOnly,
    /// Deterministic shuffle with the given seed (ablation).
    Shuffled(u64),
}

impl CsTrainer {
    /// Uses an alternative ordering strategy (ablation experiments).
    pub fn with_ordering(mut self, strategy: OrderingStrategy) -> Self {
        self.ordering = strategy;
        self
    }

    /// Runs the training stage on historical data `S` (n sensors × t samples).
    ///
    /// Requires at least one row and at least two columns (correlation over
    /// a single sample is meaningless).
    pub fn train(&self, s: &Matrix) -> Result<CsModel> {
        if s.rows() == 0 {
            return Err(CoreError::Shape("training matrix has no rows".into()));
        }
        if s.cols() < 2 {
            return Err(CoreError::Shape(format!(
                "training matrix needs >= 2 samples, got {}",
                s.cols()
            )));
        }
        if s.has_non_finite() {
            return Err(CoreError::Shape(
                "training matrix contains NaN/inf; clean it first".into(),
            ));
        }
        let perm = match self.ordering {
            OrderingStrategy::CorrelationWise => {
                let corr = shifted_correlation_matrix(s);
                let global = global_coefficients(&corr);
                ordering::correlation_wise(&corr, &global)
            }
            OrderingStrategy::Identity => ordering::identity(s.rows()),
            OrderingStrategy::GlobalOnly => {
                let corr = shifted_correlation_matrix(s);
                let global = global_coefficients(&corr);
                ordering::by_global_coefficient(&global)
            }
            OrderingStrategy::Shuffled(seed) => ordering::shuffled(s.rows(), seed),
        };
        Ok(CsModel {
            perm,
            bounds: MinMax::fit(s),
        })
    }
}

/// Which component of a complex signature block a feature came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignaturePart {
    /// Real component (block-average value).
    Real,
    /// Imaginary component (block-average derivative).
    Imaginary,
}

/// A complex-valued CS signature: `l` blocks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsSignature {
    /// Real parts: block-average normalized values (static behaviour).
    pub re: Vec<f64>,
    /// Imaginary parts: block-average first derivatives (dynamic behaviour).
    pub im: Vec<f64>,
}

impl CsSignature {
    /// Number of blocks `l`.
    pub fn blocks(&self) -> usize {
        self.re.len()
    }

    /// Blocks as complex numbers.
    pub fn as_complex(&self) -> Vec<Complex64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect()
    }

    /// Flattens to a feature vector `[re..., im...]`.
    pub fn to_features(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.re.len() * 2);
        self.features_into(&mut out);
        out
    }

    /// Writes the `[re..., im...]` feature layout into `out` (cleared
    /// first). Once `out`'s capacity has reached `2·l`, repeated calls
    /// never touch the allocator — the per-event shape streaming
    /// consumers (detectors, drift monitors) rely on.
    pub fn features_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.re);
        out.extend_from_slice(&self.im);
    }

    /// Flattens to the real components only (the paper's `-R` variants).
    pub fn to_real_features(&self) -> Vec<f64> {
        self.re.clone()
    }

    /// Writes the real components into `out` (cleared first); the
    /// borrowed-buffer counterpart of [`CsSignature::to_real_features`].
    pub fn real_features_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.re);
    }

    /// Overwrites `self` with `other`'s blocks, reusing the existing
    /// buffers. Once both vectors have warmed to the source's block
    /// count, repeated calls never touch the allocator — the recycling
    /// shape owned event envelopes rely on.
    pub fn copy_from(&mut self, other: &CsSignature) {
        // Recycled buffers almost always match the incoming length, so
        // prefer the branch that is a bare memcpy over the
        // reserve-then-extend path.
        if self.re.len() == other.re.len() && self.im.len() == other.im.len() {
            self.re.copy_from_slice(&other.re);
            self.im.copy_from_slice(&other.im);
        } else {
            self.re.clear();
            self.re.extend_from_slice(&other.re);
            self.im.clear();
            self.im.extend_from_slice(&other.im);
        }
    }
}

/// The CS signature method: a trained model plus a block count.
#[derive(Debug, Clone)]
pub struct CsMethod {
    model: CsModel,
    blocks: Vec<Block>,
    /// For each *sorted* row, the block ids it contributes to (rows sit in
    /// one block, or several when blocks overlap or `l > n`).
    row_blocks: Vec<Vec<u32>>,
    /// `1 / (wl-independent part of the Eq. 3 denominator)` per block:
    /// `1 / (e_i - b_i + 1)`.
    inv_block_len: Vec<f64>,
    l: usize,
    real_only: bool,
}

impl CsMethod {
    /// Creates a CS method with `l` blocks from a trained model.
    pub fn new(model: CsModel, l: usize) -> Result<Self> {
        if l == 0 {
            return Err(CoreError::Config("block count l must be >= 1".into()));
        }
        model.validate()?;
        if model.n_sensors() == 0 {
            return Err(CoreError::Shape("model covers zero sensors".into()));
        }
        let blocks = block_bounds(model.n_sensors(), l);
        let mut row_blocks = vec![Vec::new(); model.n_sensors()];
        let mut inv_block_len = Vec::with_capacity(l);
        for (bi, b) in blocks.iter().enumerate() {
            inv_block_len.push(1.0 / b.len() as f64);
            for rb in &mut row_blocks[b.start..b.end] {
                rb.push(bi as u32);
            }
        }
        Ok(Self {
            model,
            blocks,
            row_blocks,
            inv_block_len,
            l,
            real_only: false,
        })
    }

    /// CS with `l = n` ("CS-All" in the paper).
    pub fn all_blocks(model: CsModel) -> Result<Self> {
        let n = model.n_sensors();
        Self::new(model, n.max(1))
    }

    /// Drops imaginary components from emitted features (`-R` variants).
    pub fn real_only(mut self, yes: bool) -> Self {
        self.real_only = yes;
        self
    }

    /// The trained model.
    pub fn model(&self) -> &CsModel {
        &self.model
    }

    /// Block count `l`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Block sensor ranges (over *sorted* row indexes).
    pub fn block_ranges(&self) -> &[Block] {
        &self.blocks
    }

    /// The **raw** sensor indexes aggregated by block `block` — the paper's
    /// root-cause-analysis hook (Sec. III-C3): "as the set of raw sensors
    /// belonging to a block is clearly defined, root cause analysis is
    /// simplified." Returns `None` for an out-of-range block id.
    pub fn block_sensors(&self, block: usize) -> Option<Vec<usize>> {
        let b = self.blocks.get(block)?;
        Some(
            (b.start..b.end)
                .map(|sorted| self.model.perm[sorted])
                .collect(),
        )
    }

    /// Maps a flat feature index (layout `[re..., im...]`) back to its
    /// block id and component. Returns `None` when out of range.
    pub fn feature_origin(&self, feature: usize) -> Option<(usize, SignaturePart)> {
        if feature < self.l {
            Some((feature, SignaturePart::Real))
        } else if feature < 2 * self.l && !self.real_only {
            Some((feature - self.l, SignaturePart::Imaginary))
        } else {
            None
        }
    }

    /// **Sorting stage**: normalizes `sw` with the model bounds and permutes
    /// its rows by the learned ordering. The result can be rendered as an
    /// image (Fig. 2 center).
    pub fn sort_window(&self, sw: &Matrix) -> Result<Matrix> {
        if sw.rows() != self.model.n_sensors() {
            return Err(CoreError::Shape(format!(
                "window has {} rows, model expects {}",
                sw.rows(),
                self.model.n_sensors()
            )));
        }
        let normalized = self.model.bounds.apply(sw)?;
        Ok(normalized.permute_rows(&self.model.perm)?)
    }

    /// **Smoothing stage**: computes the complex signature of a window.
    ///
    /// `history` is the raw (unnormalized) sensor column immediately before
    /// the window; when absent, the first column's derivative is 0.
    ///
    /// Runs in a single streaming pass over `sw` (no intermediate sorted or
    /// derivative matrices): normalization is affine so values accumulate
    /// directly, and the backward-difference sum over a row telescopes to
    /// `last − seed`, where the seed is the normalized history value (or
    /// the row's own first value when no history is available).
    pub fn signature(&self, sw: &Matrix, history: Option<&[f64]>) -> Result<CsSignature> {
        let mut out = CsSignature::default();
        self.signature_into(sw, history, &mut out)?;
        Ok(out)
    }

    /// [`CsMethod::signature`] writing into a caller-provided signature.
    ///
    /// `out.re`/`out.im` are resized to `l` and overwritten; once their
    /// capacity reaches `l` (after the first call), repeated invocations
    /// perform no heap allocation — the shape streaming consumers need.
    pub fn signature_into(
        &self,
        sw: &Matrix,
        history: Option<&[f64]>,
        out: &mut CsSignature,
    ) -> Result<()> {
        if sw.rows() != self.model.n_sensors() {
            return Err(CoreError::Shape(format!(
                "window has {} rows, model expects {}",
                sw.rows(),
                self.model.n_sensors()
            )));
        }
        if sw.cols() == 0 {
            return Err(CoreError::Shape("window has zero samples".into()));
        }
        self.check_history(history)?;
        self.accumulate(sw.cols(), |raw| sw.row(raw).iter().copied(), history, out);
        Ok(())
    }

    /// Smoothing stage over a *column view* of a window: `col_at(k)` returns
    /// the `k`-th sample of the window as a column of `n` sensor readings
    /// (`0 <= k < wl`). This is the shape a streaming ring buffer holds the
    /// window in; computing directly from it avoids materializing `S_w`.
    /// Results are bit-identical to [`CsMethod::signature_into`] on the
    /// equivalent matrix, which the tests pin down.
    pub fn signature_cols_into<'a, F>(
        &self,
        wl: usize,
        col_at: F,
        history: Option<&[f64]>,
        out: &mut CsSignature,
    ) -> Result<()>
    where
        F: Fn(usize) -> &'a [f64],
    {
        if wl == 0 {
            return Err(CoreError::Shape("window has zero samples".into()));
        }
        let n = self.model.n_sensors();
        for k in 0..wl {
            if col_at(k).len() != n {
                return Err(CoreError::Shape(format!(
                    "window column {k} has {} readings, model expects {n}",
                    col_at(k).len()
                )));
            }
        }
        self.check_history(history)?;
        let col_at = &col_at;
        self.accumulate(wl, |raw| (0..wl).map(move |k| col_at(k)[raw]), history, out);
        Ok(())
    }

    fn check_history(&self, history: Option<&[f64]>) -> Result<()> {
        if let Some(h) = history {
            if h.len() != self.model.n_sensors() {
                return Err(CoreError::Shape(format!(
                    "history has {} entries, model expects {}",
                    h.len(),
                    self.model.n_sensors()
                )));
            }
        }
        Ok(())
    }

    /// The Eq. 2–3 inner loop, shared by the matrix and column-view entry
    /// points. `row_vals(raw)` yields the raw row's `wl` samples in time
    /// order; both callers produce the same value sequence, keeping their
    /// floating-point results bit-identical.
    fn accumulate<I>(
        &self,
        wl: usize,
        row_vals: impl Fn(usize) -> I,
        history: Option<&[f64]>,
        out: &mut CsSignature,
    ) where
        I: Iterator<Item = f64>,
    {
        let wlf = wl as f64;
        let inv_wl = 1.0 / wlf;
        let lo_bounds = self.model.bounds.lower();
        let hi_bounds = self.model.bounds.upper();

        out.re.clear();
        out.re.resize(self.l, 0.0);
        out.im.clear();
        out.im.resize(self.l, 0.0);
        for (sorted_idx, &raw) in self.model.perm.iter().enumerate() {
            let lo = lo_bounds[raw];
            let range = hi_bounds[raw] - lo;
            let (sum, dsum) = if range <= 0.0 || !range.is_finite() {
                // Collapsed training bounds (constant sensor): normalizes to
                // the 0.5 "no information" mid-scale with zero derivative
                // instead of dividing by the zero range.
                (0.5 * wlf, 0.0)
            } else {
                let inv = 1.0 / range;
                let mut sum = 0.0;
                let mut first = 0.0;
                let mut last = 0.0;
                for (k, x) in row_vals(raw).enumerate() {
                    let v = ((x - lo) * inv).clamp(0.0, 1.0);
                    sum += v;
                    if k == 0 {
                        first = v;
                    }
                    last = v;
                }
                let seed = match history {
                    Some(h) => ((h[raw] - lo) * inv).clamp(0.0, 1.0),
                    None => first,
                };
                (sum, last - seed)
            };
            for &b in &self.row_blocks[sorted_idx] {
                let w = self.inv_block_len[b as usize] * inv_wl;
                out.re[b as usize] += sum * w;
                out.im[b as usize] += dsum * w;
            }
        }
    }

    /// Computes signatures for every window of a full matrix, returning two
    /// heatmaps (`l` rows × one column per window): real and imaginary parts.
    /// This is exactly the right-hand side of the paper's Fig. 2.
    pub fn signature_heatmaps(
        &self,
        s: &Matrix,
        spec: cwsmooth_data::WindowSpec,
    ) -> Result<(Matrix, Matrix)> {
        let windows: Vec<cwsmooth_data::Window> =
            cwsmooth_data::WindowIter::new(spec, s.cols()).collect();
        if windows.is_empty() {
            return Err(CoreError::Shape(format!(
                "matrix with {} samples yields no {}-sample windows",
                s.cols(),
                spec.wl
            )));
        }
        let mut re = Matrix::zeros(self.l, windows.len());
        let mut im = Matrix::zeros(self.l, windows.len());
        for (c, w) in windows.iter().enumerate() {
            let sub = w.extract(s)?;
            let hist = w.history(s);
            let sig = self.signature(&sub, hist.as_deref())?;
            for (r, (&vr, &vi)) in sig.re.iter().zip(&sig.im).enumerate() {
                re.set(r, c, vr);
                im.set(r, c, vi);
            }
        }
        Ok((re, im))
    }
}

impl SignatureMethod for CsMethod {
    fn name(&self) -> String {
        let suffix = if self.real_only { "-R" } else { "" };
        if self.l == self.model.n_sensors() {
            format!("CS-All{suffix}")
        } else {
            format!("CS-{}{suffix}", self.l)
        }
    }

    fn signature_len(&self, _n: usize) -> usize {
        if self.real_only {
            self.l
        } else {
            self.l * 2
        }
    }

    fn compute(&self, sw: &Matrix, history: Option<&[f64]>) -> Result<Vec<f64>> {
        let sig = self.signature(sw, history)?;
        let mut out = Vec::with_capacity(self.signature_len(sw.rows()));
        if self.real_only {
            sig.real_features_into(&mut out);
        } else {
            sig.features_into(&mut out);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsmooth_data::WindowSpec;

    /// Correlated pair + anti-correlated row + constant row over a ramp.
    fn train_matrix() -> Matrix {
        Matrix::from_fn(4, 64, |r, c| {
            let x = c as f64 / 63.0; // ramp 0..1
            match r {
                0 => x,
                1 => 10.0 * x + 5.0,
                2 => 1.0 - x,
                _ => 7.0,
            }
        })
    }

    #[test]
    fn train_produces_valid_model() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        model.validate().unwrap();
        assert_eq!(model.n_sensors(), 4);
    }

    #[test]
    fn train_rejects_degenerate_input() {
        assert!(CsTrainer::default().train(&Matrix::zeros(0, 10)).is_err());
        assert!(CsTrainer::default().train(&Matrix::zeros(3, 1)).is_err());
        let mut bad = train_matrix();
        bad.set(0, 0, f64::NAN);
        assert!(CsTrainer::default().train(&bad).is_err());
    }

    #[test]
    fn sorted_window_is_normalized_and_permuted() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model.clone(), 2).unwrap();
        let sorted = cs.sort_window(&s).unwrap();
        assert_eq!(sorted.shape(), s.shape());
        for &v in sorted.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
        // row order follows the permutation
        for (i, &raw) in model.perm.iter().enumerate() {
            let expect = model.bounds.apply(&s).unwrap();
            assert_eq!(sorted.row(i), expect.row(raw));
        }
    }

    #[test]
    fn signature_static_and_dynamic_parts() {
        // Single rising sensor: re ≈ mean of normalized ramp, im > 0.
        let s = Matrix::from_fn(1, 32, |_, c| c as f64);
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 1).unwrap();
        let sig = cs.signature(&s, None).unwrap();
        assert_eq!(sig.blocks(), 1);
        assert!((sig.re[0] - 0.5).abs() < 0.02, "re={}", sig.re[0]);
        assert!(sig.im[0] > 0.0);
    }

    #[test]
    fn constant_window_has_zero_derivative() {
        let train = train_matrix();
        let model = CsTrainer::default().train(&train).unwrap();
        let cs = CsMethod::new(model, 4).unwrap();
        let flat = Matrix::from_fn(4, 8, |r, _| train.get(r, 10));
        let sig = cs.signature(&flat, None).unwrap();
        for &d in &sig.im {
            assert!(d.abs() < 1e-12);
        }
    }

    #[test]
    fn history_seeds_first_derivative() {
        let s = Matrix::from_fn(1, 16, |_, c| c as f64);
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 1).unwrap();
        let w = s.col_window(4, 8).unwrap();
        let no_hist = cs.signature(&w, None).unwrap();
        let hist = s.col(3);
        let with_hist = cs.signature(&w, Some(&hist)).unwrap();
        // with history every step contributes 1/15 normalized; without, the
        // first column contributes 0.
        assert!(with_hist.im[0] > no_hist.im[0]);
    }

    #[test]
    fn signature_len_law() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        for l in [1usize, 2, 3, 4, 9] {
            let cs = CsMethod::new(model.clone(), l).unwrap();
            assert_eq!(cs.signature_len(4), 2 * l);
            let feats = cs.compute(&s, None).unwrap();
            assert_eq!(feats.len(), 2 * l);
            let csr = CsMethod::new(model.clone(), l).unwrap().real_only(true);
            assert_eq!(csr.compute(&s, None).unwrap().len(), l);
        }
    }

    #[test]
    fn features_into_matches_owning_flatteners_and_reuses_capacity() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 3).unwrap();
        let sig = cs.signature(&s, None).unwrap();
        // Start from a dirty, oversized buffer: contents are replaced.
        let mut buf = vec![42.0; 11];
        sig.features_into(&mut buf);
        assert_eq!(buf, sig.to_features());
        assert_eq!(buf.len(), 6);
        let ptr = buf.as_ptr();
        sig.features_into(&mut buf);
        assert_eq!(ptr, buf.as_ptr(), "warm buffer must not reallocate");
        sig.real_features_into(&mut buf);
        assert_eq!(buf, sig.to_real_features());
        assert_eq!(ptr, buf.as_ptr());
    }

    #[test]
    fn cs_all_uses_n_blocks() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::all_blocks(model).unwrap();
        assert_eq!(cs.l(), 4);
        assert_eq!(cs.name(), "CS-All");
        let named = CsMethod::new(CsTrainer::default().train(&s).unwrap(), 2).unwrap();
        assert_eq!(named.name(), "CS-2");
    }

    #[test]
    fn row_count_mismatch_rejected() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 2).unwrap();
        let wrong = Matrix::zeros(3, 10);
        assert!(cs.signature(&wrong, None).is_err());
        assert!(cs.sort_window(&wrong).is_err());
        assert!(cs.signature(&s, Some(&[0.0])).is_err());
    }

    #[test]
    fn heatmaps_shape_matches_window_count() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 3).unwrap();
        let spec = WindowSpec::new(16, 8).unwrap();
        let (re, im) = cs.signature_heatmaps(&s, spec).unwrap();
        let expect_windows = spec.count(64);
        assert_eq!(re.shape(), (3, expect_windows));
        assert_eq!(im.shape(), (3, expect_windows));
        // real parts are means of normalized data -> within [0,1]
        for &v in re.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn heatmaps_reject_too_short_input() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 2).unwrap();
        let spec = WindowSpec::new(1000, 10).unwrap();
        assert!(cs.signature_heatmaps(&s, spec).is_err());
    }

    #[test]
    fn block_sensors_and_feature_origin() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let perm = model.perm.clone();
        let cs = CsMethod::new(model, 2).unwrap();
        // blocks of 2 over 4 sorted sensors
        assert_eq!(cs.block_sensors(0).unwrap(), vec![perm[0], perm[1]]);
        assert_eq!(cs.block_sensors(1).unwrap(), vec![perm[2], perm[3]]);
        assert!(cs.block_sensors(2).is_none());
        // union of all blocks covers every raw sensor
        let mut all: Vec<usize> = (0..2).flat_map(|b| cs.block_sensors(b).unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        // feature layout: [re0, re1, im0, im1]
        assert_eq!(cs.feature_origin(0), Some((0, SignaturePart::Real)));
        assert_eq!(cs.feature_origin(1), Some((1, SignaturePart::Real)));
        assert_eq!(cs.feature_origin(2), Some((0, SignaturePart::Imaginary)));
        assert_eq!(cs.feature_origin(3), Some((1, SignaturePart::Imaginary)));
        assert_eq!(cs.feature_origin(4), None);
    }

    /// Reference (materializing) implementation of Eq. 3, used to pin the
    /// streaming fast path.
    fn reference_signature(cs: &CsMethod, sw: &Matrix, history: Option<&[f64]>) -> CsSignature {
        let sorted = cs.sort_window(sw).unwrap();
        let sorted_hist = history.map(|h| {
            cs.model()
                .perm
                .iter()
                .map(|&raw| cs.model().bounds.scale(raw, h[raw]))
                .collect::<Vec<f64>>()
        });
        let deriv = sorted.backward_diff(sorted_hist.as_deref());
        let wl = sorted.cols() as f64;
        let mut re = Vec::new();
        let mut im = Vec::new();
        for b in cs.block_ranges() {
            let denom = wl * b.len() as f64;
            let sum_v: f64 = (b.start..b.end)
                .map(|r| sorted.row(r).iter().sum::<f64>())
                .sum();
            let sum_d: f64 = (b.start..b.end)
                .map(|r| deriv.row(r).iter().sum::<f64>())
                .sum();
            re.push(sum_v / denom);
            im.push(sum_d / denom);
        }
        CsSignature { re, im }
    }

    #[test]
    fn streaming_signature_matches_reference() {
        let s = Matrix::from_fn(7, 48, |r, c| {
            ((c as f64 / (3.0 + r as f64)).sin() * (r + 1) as f64) + (r as f64 * 0.3)
        });
        let model = CsTrainer::default().train(&s).unwrap();
        for l in [1usize, 3, 7, 11] {
            let cs = CsMethod::new(model.clone(), l).unwrap();
            let w = s.col_window(8, 24).unwrap();
            let hist = s.col(7);
            for history in [None, Some(hist.as_slice())] {
                let fast = cs.signature(&w, history).unwrap();
                let slow = reference_signature(&cs, &w, history);
                for (a, b) in fast.re.iter().zip(&slow.re) {
                    assert!((a - b).abs() < 1e-10, "re mismatch l={l}: {a} vs {b}");
                }
                for (a, b) in fast.im.iter().zip(&slow.im) {
                    assert!((a - b).abs() < 1e-10, "im mismatch l={l}: {a} vs {b}");
                }
            }
        }
    }

    /// Regression: a sensor whose *trained* bounds collapse (`hi == lo`,
    /// e.g. constant during training) must not poison the signature with
    /// NaN/inf when live data later varies — the zero range is treated as
    /// the 0.5 mid-scale with zero derivative.
    #[test]
    fn collapsed_training_bounds_stay_finite() {
        // Row 3 of train_matrix() is the constant 7.0 -> hi == lo.
        let train = train_matrix();
        let model = CsTrainer::default().train(&train).unwrap();
        assert_eq!(
            model.bounds.lower()[3],
            model.bounds.upper()[3],
            "test premise: trained bounds collapse for the constant sensor"
        );
        // Live data drifts on the collapsed sensor: without the guard the
        // division by (hi - lo) == 0 yields inf, and inf - inf = NaN in the
        // derivative seed.
        let mut live = train.clone();
        for c in 0..live.cols() {
            live.set(3, c, 7.0 + c as f64);
        }
        let cs = CsMethod::all_blocks(model).unwrap();
        let hist = live.col(0);
        let w = live.col_window(1, 9).unwrap();
        let sig = cs.signature(&w, Some(&hist)).unwrap();
        for (&r, &i) in sig.re.iter().zip(&sig.im) {
            assert!(r.is_finite() && i.is_finite(), "re={r} im={i}");
        }
        // The collapsed sensor's own block reads exactly mid-scale, flat.
        let sorted_pos = cs.model().perm.iter().position(|&p| p == 3).unwrap();
        let block = cs
            .block_ranges()
            .iter()
            .position(|b| (b.start..b.end).contains(&sorted_pos))
            .unwrap();
        assert_eq!(sig.re[block], 0.5);
        assert_eq!(sig.im[block], 0.0);
        // The sorting stage maps the collapsed row to 0.5 as well.
        let sorted = cs.sort_window(&w).unwrap();
        assert!(sorted.row(sorted_pos).iter().all(|&v| v == 0.5));
    }

    #[test]
    fn signature_into_matches_and_reuses_buffers() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 3).unwrap();
        let w = s.col_window(4, 20).unwrap();
        let hist = s.col(3);
        let fresh = cs.signature(&w, Some(&hist)).unwrap();
        // Start from a dirty, differently-sized buffer.
        let mut out = CsSignature {
            re: vec![9.0; 7],
            im: vec![-9.0; 7],
        };
        cs.signature_into(&w, Some(&hist), &mut out).unwrap();
        assert_eq!(out, fresh);
        let (p_re, p_im) = (out.re.as_ptr(), out.im.as_ptr());
        cs.signature_into(&w, None, &mut out).unwrap();
        // Capacity was sufficient: no reallocation on reuse.
        assert_eq!(out.re.as_ptr(), p_re);
        assert_eq!(out.im.as_ptr(), p_im);
    }

    #[test]
    fn column_view_is_bit_identical_to_matrix_path() {
        let s = Matrix::from_fn(6, 40, |r, c| {
            ((c as f64 / (2.0 + r as f64)).sin() * (r + 1) as f64) + 0.17 * r as f64
        });
        let model = CsTrainer::default().train(&s).unwrap();
        for l in [1usize, 3, 6, 9] {
            let cs = CsMethod::new(model.clone(), l).unwrap();
            let w = s.col_window(5, 17).unwrap();
            let cols: Vec<Vec<f64>> = (0..w.cols()).map(|k| w.col(k)).collect();
            let hist = s.col(4);
            for history in [None, Some(hist.as_slice())] {
                let direct = cs.signature(&w, history).unwrap();
                let mut via_cols = CsSignature::default();
                cs.signature_cols_into(w.cols(), |k| &cols[k], history, &mut via_cols)
                    .unwrap();
                // Exact equality: same operations in the same order.
                assert_eq!(via_cols, direct, "l={l}");
            }
        }
    }

    #[test]
    fn column_view_rejects_bad_shapes() {
        let s = train_matrix();
        let model = CsTrainer::default().train(&s).unwrap();
        let cs = CsMethod::new(model, 2).unwrap();
        let mut out = CsSignature::default();
        let short = [0.0f64; 3];
        assert!(cs
            .signature_cols_into(2, |_| short.as_slice(), None, &mut out)
            .is_err());
        let ok = [0.0f64; 4];
        assert!(cs
            .signature_cols_into(0, |_| ok.as_slice(), None, &mut out)
            .is_err());
        assert!(cs
            .signature_cols_into(2, |_| ok.as_slice(), Some(&short), &mut out)
            .is_err());
        assert!(cs
            .signature_cols_into(2, |_| ok.as_slice(), Some(&ok), &mut out)
            .is_ok());
    }

    #[test]
    fn ablation_orderings_train() {
        let s = train_matrix();
        for strat in [
            OrderingStrategy::Identity,
            OrderingStrategy::GlobalOnly,
            OrderingStrategy::Shuffled(7),
        ] {
            let model = CsTrainer::default().with_ordering(strat).train(&s).unwrap();
            model.validate().unwrap();
        }
        let id = CsTrainer::default()
            .with_ordering(OrderingStrategy::Identity)
            .train(&s)
            .unwrap();
        assert_eq!(id.perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn correlated_rows_group_in_sorted_output() {
        // Rows 0..=2 follow one dominant latent signal, row 3 its negation,
        // row 4 is noise. The dominant group leads, noise sits mid-ordering,
        // the anti-correlated sensor trails (paper Sec. III-C1).
        let s = Matrix::from_fn(5, 128, |r, c| {
            let latent = (c as f64 / 9.0).sin();
            match r {
                0 => latent,
                1 => 3.0 * latent + 1.0,
                2 => 0.5 * latent - 2.0,
                3 => -2.0 * latent + 0.3,
                _ => ((c * 48271) % 101) as f64 / 101.0,
            }
        });
        let model = CsTrainer::default().train(&s).unwrap();
        let pos = |row: usize| model.perm.iter().position(|&x| x == row).unwrap();
        assert!(
            pos(0) < 3 && pos(1) < 3 && pos(2) < 3,
            "perm={:?}",
            model.perm
        );
        assert_eq!(pos(4), 3, "noise should sit mid-ordering: {:?}", model.perm);
        assert_eq!(
            pos(3),
            4,
            "anti-correlated row should trail: {:?}",
            model.perm
        );
    }
}
