//! The CS blocking scheme (paper Eq. 2).
//!
//! A signature has `l` blocks over `n` sorted sensors. Using the paper's
//! 1-indexed formulation, block `i` spans sensors `b_i ..= e_i` with
//! `b_i = 1 + ⌊(i−1)·n/l⌋` and `e_i = ⌈i·n/l⌉`. Consecutive blocks overlap
//! by at most one sensor, and when `n % l != 0` the oversized blocks are
//! spread uniformly over the signature by the periodicity of the modulo.
//! Here blocks are exposed 0-indexed as half-open ranges `[start, end)`.

/// Half-open sensor range `[start, end)` covered by one signature block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First sorted-sensor index (inclusive).
    pub start: usize,
    /// Last sorted-sensor index (exclusive); always `> start`.
    pub end: usize,
}

impl Block {
    /// Number of sensors aggregated by this block.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Blocks always aggregate at least one sensor.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Computes the `l` block bounds for `n` sensors (Eq. 2), 0-indexed.
///
/// Requires `n >= 1` and `l >= 1`; `l > n` is allowed (blocks repeat).
pub fn block_bounds(n: usize, l: usize) -> Vec<Block> {
    assert!(n >= 1 && l >= 1, "block_bounds requires n >= 1 and l >= 1");
    (1..=l)
        .map(|i| {
            // 1-indexed bounds per the paper...
            let b = 1 + ((i - 1) * n) / l;
            let e = (i * n).div_ceil(l);
            // ...mapped to a 0-indexed half-open range.
            Block {
                start: b - 1,
                end: e,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition_when_divisible() {
        let blocks = block_bounds(8, 4);
        assert_eq!(
            blocks,
            vec![
                Block { start: 0, end: 2 },
                Block { start: 2, end: 4 },
                Block { start: 4, end: 6 },
                Block { start: 6, end: 8 },
            ]
        );
    }

    #[test]
    fn overlap_when_not_divisible() {
        // n=5, l=2: paper bounds b=(1,3), e=(3,5) -> rows {0,1,2} and {2,3,4}
        let blocks = block_bounds(5, 2);
        assert_eq!(blocks[0], Block { start: 0, end: 3 });
        assert_eq!(blocks[1], Block { start: 2, end: 5 });
    }

    #[test]
    fn single_block_covers_everything() {
        let blocks = block_bounds(7, 1);
        assert_eq!(blocks, vec![Block { start: 0, end: 7 }]);
    }

    #[test]
    fn l_equals_n_gives_singletons() {
        let blocks = block_bounds(4, 4);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!((b.start, b.end), (i, i + 1));
        }
    }

    #[test]
    fn more_blocks_than_sensors_repeats() {
        let blocks = block_bounds(2, 4);
        assert_eq!(blocks.len(), 4);
        for b in &blocks {
            assert!(!b.is_empty());
            assert!(b.end <= 2);
        }
        // first and last sensors are both covered
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks[3].end, 2);
    }

    #[test]
    fn invariants_over_a_grid() {
        for n in 1..40 {
            for l in 1..40 {
                let blocks = block_bounds(n, l);
                assert_eq!(blocks.len(), l);
                // coverage: every sensor appears in at least one block
                let mut covered = vec![false; n];
                for b in &blocks {
                    assert!(b.start < b.end, "n={n} l={l}");
                    assert!(b.end <= n, "n={n} l={l}");
                    for c in &mut covered[b.start..b.end] {
                        *c = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} l={l} gap in coverage");
                // monotone starts and ends
                for w in blocks.windows(2) {
                    assert!(w[0].start <= w[1].start);
                    assert!(w[0].end <= w[1].end);
                    // overlap of consecutive blocks is at most 1 sensor when l <= n
                    if l <= n {
                        let overlap = w[0].end.saturating_sub(w[1].start);
                        assert!(overlap <= 1, "n={n} l={l} overlap={overlap}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_blocks_panics() {
        block_bounds(4, 0);
    }
}
