//! Windowed feature-set extraction: from a labelled [`Segment`] to a
//! machine-learning dataset via any [`SignatureMethod`].
//!
//! This mirrors the paper's experiment setup (Sec. IV-A1): each segment is
//! processed with segment-specific `wl`/`ws`, one signature per window, and
//! a per-window label — the majority class inside the window for
//! classification, or the mean of the next `horizon` samples for the
//! regression use cases (Power: next 3 samples, Infrastructure: next 30).

use crate::error::{CoreError, Result};
use crate::method::SignatureMethod;
use cwsmooth_data::{Segment, TaskKind, Window, WindowIter, WindowSpec};
use cwsmooth_linalg::Matrix;
use rayon::prelude::*;

/// A ready-to-train dataset: one feature row per window plus labels.
#[derive(Debug, Clone)]
pub struct FeatureDataset {
    /// Features: one row per window, `signature_len(n)` columns.
    pub features: Matrix,
    /// Class per window (classification segments).
    pub classes: Option<Vec<usize>>,
    /// Continuous target per window (regression segments).
    pub targets: Option<Vec<f64>>,
    /// Name of the signature method that produced the features.
    pub method: String,
}

impl FeatureDataset {
    /// Number of samples (windows).
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Task kind inferred from which label track is present.
    pub fn task(&self) -> TaskKind {
        if self.classes.is_some() {
            TaskKind::Classification
        } else {
            TaskKind::Regression
        }
    }
}

/// Options controlling dataset extraction.
#[derive(Debug, Clone, Copy)]
pub struct DatasetOptions {
    /// Window geometry (`wl`, `ws`).
    pub spec: WindowSpec,
    /// Regression prediction horizon in samples (ignored for
    /// classification). The target is the mean label over the `horizon`
    /// samples *after* the window. Windows whose horizon would run past the
    /// end of the segment are dropped, matching the paper's dataset sizes.
    pub horizon: usize,
}

/// Builds a [`FeatureDataset`] from a segment with any signature method.
pub fn build_dataset(
    segment: &Segment,
    method: &dyn SignatureMethod,
    options: DatasetOptions,
) -> Result<FeatureDataset> {
    let t = segment.samples();
    let windows: Vec<Window> = WindowIter::new(options.spec, t).collect();
    if windows.is_empty() {
        return Err(CoreError::Shape(format!(
            "segment `{}` ({} samples) yields no windows of wl={}",
            segment.name, t, options.spec.wl
        )));
    }
    let n = segment.sensors();
    let width = method.signature_len(n);
    let is_classification = segment.task() == TaskKind::Classification;

    if !is_classification && options.horizon == 0 {
        return Err(CoreError::Config(
            "regression extraction needs horizon >= 1".into(),
        ));
    }
    // Drop windows whose prediction horizon runs past the data.
    let kept: Vec<Window> = windows
        .into_iter()
        .filter(|w| is_classification || w.end + options.horizon <= t)
        .collect();
    if kept.is_empty() {
        return Err(CoreError::Shape(format!(
            "segment `{}`: all windows dropped (horizon too long?)",
            segment.name
        )));
    }

    // Windows are independent: extract signatures in parallel.
    let per_window: Vec<(Vec<f64>, usize, f64)> = kept
        .par_iter()
        .map(|w| -> Result<(Vec<f64>, usize, f64)> {
            let sub = w.extract(&segment.matrix)?;
            let hist = w.history(&segment.matrix);
            let sig = method.compute(&sub, hist.as_deref())?;
            if sig.len() != width {
                return Err(CoreError::Shape(format!(
                    "method `{}` emitted {} features, expected {width}",
                    method.name(),
                    sig.len()
                )));
            }
            if is_classification {
                Ok((sig, segment.window_class(w.start, w.end)?, 0.0))
            } else {
                let target = segment.window_target(w.end, w.end + options.horizon)?;
                Ok((sig, 0, target))
            }
        })
        .collect::<Result<_>>()?;

    let mut rows: Vec<f64> = Vec::with_capacity(per_window.len() * width);
    let mut classes = Vec::new();
    let mut targets = Vec::new();
    for (sig, class, target) in per_window {
        rows.extend_from_slice(&sig);
        if is_classification {
            classes.push(class);
        } else {
            targets.push(target);
        }
    }
    let features = Matrix::from_vec(kept.len(), width, rows)?;
    Ok(FeatureDataset {
        features,
        classes: if is_classification {
            Some(classes)
        } else {
            None
        },
        targets: if is_classification {
            None
        } else {
            Some(targets)
        },
        method: method.name(),
    })
}

/// Merges datasets produced by *compatible* methods (same feature width),
/// e.g. per-architecture CS datasets in the Sec. IV-F portability
/// experiment. Baseline methods with different sensor counts fail here —
/// which is precisely the paper's point.
pub fn merge_datasets(parts: &[FeatureDataset]) -> Result<FeatureDataset> {
    let first = parts
        .first()
        .ok_or_else(|| CoreError::Shape("merge of zero datasets".into()))?;
    let width = first.features.cols();
    let task = first.task();
    for p in parts {
        if p.features.cols() != width {
            return Err(CoreError::Shape(format!(
                "incompatible signature widths: {} vs {width} — methods without \
                 cross-sensor aggregation cannot be merged across architectures",
                p.features.cols()
            )));
        }
        if p.task() != task {
            return Err(CoreError::Shape("mixed task kinds in merge".into()));
        }
    }
    let mats: Vec<&Matrix> = parts.iter().map(|p| &p.features).collect();
    let features = Matrix::vstack(&mats)?;
    let classes = if task == TaskKind::Classification {
        Some(
            parts
                .iter()
                .flat_map(|p| p.classes.as_ref().unwrap().iter().copied())
                .collect(),
        )
    } else {
        None
    };
    let targets = if task == TaskKind::Regression {
        Some(
            parts
                .iter()
                .flat_map(|p| p.targets.as_ref().unwrap().iter().copied())
                .collect(),
        )
    } else {
        None
    };
    Ok(FeatureDataset {
        features,
        classes,
        targets,
        method: first.method.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::TuncerMethod;
    use crate::cs::{CsMethod, CsTrainer};
    use cwsmooth_data::LabelTrack;

    fn class_segment() -> Segment {
        let t = 40;
        let m = Matrix::from_fn(3, t, |r, c| {
            let phase = if c < 20 { 1.0 } else { 5.0 };
            phase * (r + 1) as f64 + (c % 3) as f64 * 0.1
        });
        let labels: Vec<usize> = (0..t).map(|c| usize::from(c >= 20)).collect();
        Segment::new(
            "cls",
            m,
            vec!["s0".into(), "s1".into(), "s2".into()],
            (0..t as u64).collect(),
            LabelTrack::Classes(labels),
        )
        .unwrap()
    }

    fn reg_segment() -> Segment {
        let t = 30;
        let m = Matrix::from_fn(2, t, |r, c| (c as f64) * (r + 1) as f64);
        let values: Vec<f64> = (0..t).map(|c| c as f64).collect();
        Segment::new(
            "reg",
            m,
            vec!["s0".into(), "s1".into()],
            (0..t as u64).collect(),
            LabelTrack::Values(values),
        )
        .unwrap()
    }

    #[test]
    fn classification_dataset_shape_and_labels() {
        let seg = class_segment();
        let spec = WindowSpec::new(10, 5).unwrap();
        let ds = build_dataset(&seg, &TuncerMethod, DatasetOptions { spec, horizon: 0 }).unwrap();
        assert_eq!(ds.len(), spec.count(40));
        assert_eq!(ds.features.cols(), 33);
        let classes = ds.classes.as_ref().unwrap();
        assert_eq!(classes[0], 0);
        assert_eq!(*classes.last().unwrap(), 1);
        assert!(ds.targets.is_none());
    }

    #[test]
    fn regression_dataset_horizon_targets() {
        let seg = reg_segment();
        let spec = WindowSpec::new(5, 5).unwrap();
        let ds = build_dataset(&seg, &TuncerMethod, DatasetOptions { spec, horizon: 3 }).unwrap();
        // windows at 0..5,5..10,...; last window 25..30 dropped (horizon).
        assert_eq!(ds.len(), 5);
        let targets = ds.targets.as_ref().unwrap();
        // first window ends at 5 -> mean of labels 5,6,7 = 6
        assert!((targets[0] - 6.0).abs() < 1e-12);
        assert!(ds.classes.is_none());
    }

    #[test]
    fn regression_requires_horizon() {
        let seg = reg_segment();
        let spec = WindowSpec::new(5, 5).unwrap();
        assert!(build_dataset(&seg, &TuncerMethod, DatasetOptions { spec, horizon: 0 }).is_err());
    }

    #[test]
    fn too_long_window_errors() {
        let seg = class_segment();
        let spec = WindowSpec::new(100, 1).unwrap();
        assert!(build_dataset(&seg, &TuncerMethod, DatasetOptions { spec, horizon: 0 }).is_err());
    }

    #[test]
    fn cs_datasets_merge_across_architectures() {
        // Two "architectures" with different sensor counts but equal l.
        let seg_a = class_segment(); // 3 sensors
        let m_b = Matrix::from_fn(5, 40, |r, c| ((c / 10) * (r + 1)) as f64 + 0.01 * c as f64);
        let seg_b = Segment::new(
            "arch-b",
            m_b,
            (0..5).map(|i| format!("s{i}")).collect(),
            (0..40).collect(),
            LabelTrack::Classes((0..40).map(|c| usize::from(c >= 20)).collect()),
        )
        .unwrap();
        let spec = WindowSpec::new(10, 5).unwrap();
        let opts = DatasetOptions { spec, horizon: 0 };

        let cs_a = CsMethod::new(CsTrainer::default().train(&seg_a.matrix).unwrap(), 2).unwrap();
        let cs_b = CsMethod::new(CsTrainer::default().train(&seg_b.matrix).unwrap(), 2).unwrap();
        let ds_a = build_dataset(&seg_a, &cs_a, opts).unwrap();
        let ds_b = build_dataset(&seg_b, &cs_b, opts).unwrap();
        let merged = merge_datasets(&[ds_a.clone(), ds_b]).unwrap();
        assert_eq!(merged.features.cols(), 4); // 2 blocks x (re+im)
        assert_eq!(merged.len(), 14);

        // Baselines cannot merge: widths differ (33 vs 55).
        let t_a = build_dataset(&seg_a, &TuncerMethod, opts).unwrap();
        let t_b = build_dataset(&seg_b, &TuncerMethod, opts).unwrap();
        assert!(merge_datasets(&[t_a, t_b]).is_err());
    }
}
