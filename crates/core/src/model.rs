//! The persistable CS model: permutation vector + normalization bounds.
//!
//! The training stage is performed once (potentially offline) and its
//! output — a [`CsModel`] — is reused by every subsequent sorting/smoothing
//! invocation (paper Sec. III-C1–2). Models can be stored to a simple
//! line-oriented text format and reloaded, enabling the "train once, share
//! across ODA consumers" workflow the paper advocates.

use crate::error::{CoreError, Result};
use cwsmooth_linalg::MinMax;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// A trained CS model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsModel {
    /// Row permutation: sorted row `i` is raw row `perm[i]` (Algorithm 1).
    pub perm: Vec<usize>,
    /// Per-raw-row min/max bounds for normalization.
    pub bounds: MinMax,
}

const MAGIC: &str = "cwsmooth-cs-model v1";

impl CsModel {
    /// Number of sensors this model was trained for.
    pub fn n_sensors(&self) -> usize {
        self.perm.len()
    }

    /// Validates internal consistency (permutation bijective, bounds match).
    pub fn validate(&self) -> Result<()> {
        let n = self.perm.len();
        if self.bounds.len() != n {
            return Err(CoreError::Shape(format!(
                "model has {n} permutation entries but {} bounds",
                self.bounds.len()
            )));
        }
        let mut seen = vec![false; n];
        for &p in &self.perm {
            if p >= n || seen[p] {
                return Err(CoreError::Shape(
                    "permutation is not a bijection over 0..n".into(),
                ));
            }
            seen[p] = true;
        }
        Ok(())
    }

    /// Serializes the model to a writer in the v1 text format.
    pub fn save<W: Write>(&self, mut w: W) -> Result<()> {
        self.validate()?;
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "n {}", self.perm.len())?;
        writeln!(
            w,
            "perm {}",
            self.perm
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        writeln!(w, "lo {}", join_floats(self.bounds.lower()))?;
        writeln!(w, "hi {}", join_floats(self.bounds.upper()))?;
        Ok(())
    }

    /// Saves the model to a file.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        self.save(std::io::BufWriter::new(file))
    }

    /// Deserializes a model from the v1 text format.
    pub fn load<R: Read>(r: R) -> Result<Self> {
        let mut lines = BufReader::new(r).lines();
        let mut next = |what: &str| -> Result<String> {
            lines
                .next()
                .transpose()?
                .ok_or_else(|| CoreError::Persist(format!("missing {what} line")))
        };
        let magic = next("magic")?;
        if magic.trim() != MAGIC {
            return Err(CoreError::Persist(format!(
                "bad magic line: `{}`",
                magic.trim()
            )));
        }
        let n: usize = field(&next("n")?, "n")?
            .parse()
            .map_err(|e| CoreError::Persist(format!("bad n: {e}")))?;
        let perm: Vec<usize> = parse_list(&field(&next("perm")?, "perm")?)?;
        let lo: Vec<f64> = parse_list(&field(&next("lo")?, "lo")?)?;
        let hi: Vec<f64> = parse_list(&field(&next("hi")?, "hi")?)?;
        if perm.len() != n || lo.len() != n || hi.len() != n {
            return Err(CoreError::Persist(format!(
                "inconsistent lengths: n={n} perm={} lo={} hi={}",
                perm.len(),
                lo.len(),
                hi.len()
            )));
        }
        let model = CsModel {
            perm,
            bounds: MinMax::from_bounds(lo, hi)?,
        };
        model.validate()?;
        Ok(model)
    }

    /// Loads a model from a file.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::load(file)
    }
}

fn join_floats(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:?}")) // {:?} preserves full f64 precision
        .collect::<Vec<_>>()
        .join(" ")
}

fn field(line: &str, key: &str) -> Result<String> {
    let line = line.trim();
    line.strip_prefix(key)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| CoreError::Persist(format!("expected `{key} ...`, got `{line}`")))
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Result<Vec<T>>
where
    T::Err: std::fmt::Display,
{
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split_whitespace()
        .map(|tok| {
            tok.parse::<T>()
                .map_err(|e| CoreError::Persist(format!("bad token `{tok}`: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> CsModel {
        CsModel {
            perm: vec![2, 0, 1],
            bounds: MinMax::from_bounds(vec![0.0, -1.5, 3.25], vec![1.0, 2.5, 10.0]).unwrap(),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let model = sample_model();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let back = CsModel::load(buf.as_slice()).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cwsmooth-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let model = sample_model();
        model.save_file(&path).unwrap();
        assert_eq!(CsModel::load_file(&path).unwrap(), model);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn precision_survives_roundtrip() {
        let model = CsModel {
            perm: vec![0],
            bounds: MinMax::from_bounds(vec![0.1 + 0.2], vec![1.0 / 3.0]).unwrap(),
        };
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let back = CsModel::load(buf.as_slice()).unwrap();
        assert_eq!(back.bounds.lower()[0], 0.1 + 0.2);
        assert_eq!(back.bounds.upper()[0], 1.0 / 3.0);
    }

    #[test]
    fn rejects_bad_magic_and_corruption() {
        assert!(CsModel::load("nonsense\n".as_bytes()).is_err());
        let mut buf = Vec::new();
        sample_model().save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let corrupted = text.replace("perm 2 0 1", "perm 2 0 9");
        assert!(CsModel::load(corrupted.as_bytes()).is_err());
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(CsModel::load(truncated.as_bytes()).is_err());
    }

    #[test]
    fn validate_catches_broken_models() {
        let broken = CsModel {
            perm: vec![0, 0],
            bounds: MinMax::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap(),
        };
        assert!(broken.validate().is_err());
        let mismatched = CsModel {
            perm: vec![0, 1],
            bounds: MinMax::from_bounds(vec![0.0], vec![1.0]).unwrap(),
        };
        assert!(mismatched.validate().is_err());
    }
}
