//! Signature rescaling: CS signatures behave like 1-D images.
//!
//! Because every block covers a well-defined range of sorted sensors, a
//! signature of `l` blocks can be resampled to any other block count —
//! the paper's portability trick (Sec. IV-B): "train models using
//! low-resolution signatures and then feed down-scaled high-resolution
//! signatures to them (or do the opposite), allowing to compute a single
//! CS signature per HPC component that can then be scaled and fed into
//! different ODA models according to their needs."

use crate::cs::CsSignature;
use crate::error::{CoreError, Result};

/// Resamples one channel (re or im) to `new_l` points.
///
/// Downscaling uses **area averaging** (each coarse block is the weighted
/// mean of the fine blocks it covers) — this is the operation that makes a
/// down-scaled CS-40 signature approximate a natively computed CS-10 one,
/// since CS blocks are themselves means over sensor ranges. Upscaling uses
/// linear interpolation over block centers.
fn resample_channel(xs: &[f64], new_l: usize) -> Vec<f64> {
    let l = xs.len();
    debug_assert!(l >= 1 && new_l >= 1);
    if l == new_l {
        return xs.to_vec();
    }
    if new_l < l {
        // Area average: target block i covers source span
        // [i*l/new_l, (i+1)*l/new_l), with fractional edge weights.
        let ratio = l as f64 / new_l as f64;
        return (0..new_l)
            .map(|i| {
                let lo = i as f64 * ratio;
                let hi = (i + 1) as f64 * ratio;
                let mut sum = 0.0;
                let mut weight = 0.0;
                let mut j = lo.floor() as usize;
                while (j as f64) < hi && j < l {
                    let cover = (hi.min((j + 1) as f64) - lo.max(j as f64)).max(0.0);
                    sum += xs[j] * cover;
                    weight += cover;
                    j += 1;
                }
                sum / weight
            })
            .collect();
    }
    // Upscale: linear interpolation over block centers.
    (0..new_l)
        .map(|i| {
            let pos = (i as f64 + 0.5) * l as f64 / new_l as f64 - 0.5;
            let pos = pos.clamp(0.0, (l - 1) as f64);
            let i0 = pos.floor() as usize;
            let i1 = (i0 + 1).min(l - 1);
            let frac = pos - i0 as f64;
            xs[i0] * (1.0 - frac) + xs[i1] * frac
        })
        .collect()
}

/// Rescales a signature to `new_l` blocks (both channels, linear
/// interpolation). Both up- and down-scaling are supported.
pub fn resample_signature(sig: &CsSignature, new_l: usize) -> Result<CsSignature> {
    if new_l == 0 {
        return Err(CoreError::Config("target block count must be >= 1".into()));
    }
    if sig.blocks() == 0 {
        return Err(CoreError::Shape(
            "cannot resample an empty signature".into(),
        ));
    }
    Ok(CsSignature {
        re: resample_channel(&sig.re, new_l),
        im: resample_channel(&sig.im, new_l),
    })
}

/// Rescales a flat feature vector produced by
/// [`crate::cs::CsMethod`]'s `compute` (layout `[re..., im...]`, length
/// `2·l`) to the layout of a model trained at `new_l` blocks.
pub fn resample_features(features: &[f64], new_l: usize) -> Result<Vec<f64>> {
    if !features.len().is_multiple_of(2) || features.is_empty() {
        return Err(CoreError::Shape(format!(
            "feature vector of length {} is not a [re..., im...] CS layout",
            features.len()
        )));
    }
    let l = features.len() / 2;
    let sig = CsSignature {
        re: features[..l].to_vec(),
        im: features[l..].to_vec(),
    };
    let mut out = Vec::with_capacity(2 * new_l);
    resample_signature(&sig, new_l)?.features_into(&mut out);
    Ok(out)
}

/// Prunes the central blocks of a signature, keeping the `keep` most
/// informative blocks — `keep/2` from the top of the ordering (positively
/// correlated, descriptive sensors) and `keep/2` from the bottom
/// (anti-correlated descriptive sensors).
///
/// This is the paper's "more aggressive compression" (Sec. III-C3): "as
/// the central signature coefficients represent the least insightful
/// sensors in the system, they can be potentially eliminated with minimal
/// loss of information."
pub fn prune_middle(sig: &CsSignature, keep: usize) -> Result<CsSignature> {
    let l = sig.blocks();
    if keep == 0 {
        return Err(CoreError::Config("must keep at least one block".into()));
    }
    if keep >= l {
        return Ok(sig.clone());
    }
    let head = keep.div_ceil(2);
    let tail = keep - head;
    let mut re = Vec::with_capacity(keep);
    let mut im = Vec::with_capacity(keep);
    re.extend_from_slice(&sig.re[..head]);
    im.extend_from_slice(&sig.im[..head]);
    re.extend_from_slice(&sig.re[l - tail..]);
    im.extend_from_slice(&sig.im[l - tail..]);
    Ok(CsSignature { re, im })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(re: Vec<f64>, im: Vec<f64>) -> CsSignature {
        CsSignature { re, im }
    }

    #[test]
    fn identity_resample() {
        let s = sig(vec![0.1, 0.5, 0.9], vec![0.0, -0.1, 0.2]);
        let r = resample_signature(&s, 3).unwrap();
        assert_eq!(r, s);
    }

    #[test]
    fn upscale_preserves_endpoints_and_monotonicity() {
        let s = sig(vec![0.0, 0.5, 1.0], vec![0.0; 3]);
        let up = resample_signature(&s, 9).unwrap();
        assert_eq!(up.blocks(), 9);
        assert_eq!(up.re[0], 0.0);
        assert_eq!(up.re[8], 1.0);
        for w in up.re.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn downscale_averages_locally() {
        let s = sig(vec![0.0, 0.0, 1.0, 1.0], vec![0.0; 4]);
        let down = resample_signature(&s, 2).unwrap();
        // block centers land on the plateaus
        assert!(down.re[0] < 0.3);
        assert!(down.re[1] > 0.7);
    }

    #[test]
    fn round_trip_is_lossless_for_smooth_signatures() {
        // Linear ramp: up- then down-scaling must reproduce it closely.
        let re: Vec<f64> = (0..10).map(|i| i as f64 / 9.0).collect();
        let s = sig(re.clone(), vec![0.0; 10]);
        let up = resample_signature(&s, 40).unwrap();
        let back = resample_signature(&up, 10).unwrap();
        for (a, b) in back.re.iter().zip(&re) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn values_stay_in_hull() {
        let s = sig(vec![0.2, 0.9, 0.1, 0.7], vec![-0.3, 0.4, 0.0, -0.1]);
        for new_l in [1usize, 2, 3, 7, 16] {
            let r = resample_signature(&s, new_l).unwrap();
            for &v in &r.re {
                assert!((0.1..=0.9).contains(&v));
            }
            for &v in &r.im {
                assert!((-0.3..=0.4).contains(&v));
            }
        }
    }

    #[test]
    fn downscaled_high_res_equals_native_low_res_when_aligned() {
        // n = 80 sensors: CS-40 blocks of 2 and CS-10 blocks of 8 share
        // boundaries, so area-averaging CS-40 down to 10 must reproduce the
        // native CS-10 signature exactly (means of means, equal weights).
        use crate::cs::{CsMethod, CsTrainer};
        use cwsmooth_linalg::Matrix;
        let s = Matrix::from_fn(80, 64, |r, c| {
            ((c as f64 / (3.0 + (r % 7) as f64)).sin() * (r + 1) as f64) + r as f64 * 0.1
        });
        let model = CsTrainer::default().train(&s).unwrap();
        let cs40 = CsMethod::new(model.clone(), 40).unwrap();
        let cs10 = CsMethod::new(model, 10).unwrap();
        let w = s.col_window(8, 40).unwrap();
        let hist = s.col(7);
        let hi = cs40.signature(&w, Some(&hist)).unwrap();
        let native = cs10.signature(&w, Some(&hist)).unwrap();
        let down = resample_signature(&hi, 10).unwrap();
        for (a, b) in down.re.iter().zip(&native.re) {
            assert!((a - b).abs() < 1e-10, "re {a} vs {b}");
        }
        for (a, b) in down.im.iter().zip(&native.im) {
            assert!((a - b).abs() < 1e-10, "im {a} vs {b}");
        }
    }

    #[test]
    fn feature_vector_resampling() {
        let feats = vec![0.0, 1.0, /* im: */ 0.5, -0.5];
        let out = resample_features(&feats, 4).unwrap();
        assert_eq!(out.len(), 8);
        // layout preserved: first half re, second half im
        assert!(out[..4].iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(out[4..].iter().all(|&v| (-0.5..=0.5).contains(&v)));
        assert!(resample_features(&[1.0, 2.0, 3.0], 2).is_err());
        assert!(resample_features(&[], 2).is_err());
    }

    #[test]
    fn prune_middle_keeps_extremes() {
        let s = sig(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        );
        let p = prune_middle(&s, 4).unwrap();
        assert_eq!(p.re, vec![1.0, 2.0, 5.0, 6.0]);
        assert_eq!(p.im, vec![10.0, 20.0, 50.0, 60.0]);
        let odd = prune_middle(&s, 3).unwrap();
        assert_eq!(odd.re, vec![1.0, 2.0, 6.0]);
    }

    #[test]
    fn prune_edge_cases() {
        let s = sig(vec![1.0, 2.0], vec![0.0, 0.0]);
        assert_eq!(prune_middle(&s, 5).unwrap(), s);
        assert_eq!(prune_middle(&s, 2).unwrap(), s);
        assert!(prune_middle(&s, 0).is_err());
        let one = prune_middle(&s, 1).unwrap();
        assert_eq!(one.re, vec![1.0]);
    }

    #[test]
    fn resample_rejects_bad_targets() {
        let s = sig(vec![1.0], vec![0.0]);
        assert!(resample_signature(&s, 0).is_err());
        let ok = resample_signature(&s, 5).unwrap();
        assert_eq!(ok.re, vec![1.0; 5]);
    }
}
