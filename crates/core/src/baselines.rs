//! Baseline signature methods from the literature (paper Sec. III-B).
//!
//! * **Tuncer** — eleven statistical indicators per sensor row (mean,
//!   standard deviation, min, max, 5/25/50/75/95th percentiles, sum of
//!   changes, absolute sum of changes). `l = 11·n`.
//! * **Bodik** — nine order statistics per row (min, max and the
//!   5/25/35/50/65/75/95th percentiles). `l = 9·n`.
//! * **Lan** — each row mean-filter sub-sampled to a fixed length `wr`
//!   and concatenated, preserving coarse time information. `l = wr·n`.
//!
//! Unlike CS, none of these aggregate *across* sensors, so their signature
//! sizes scale with `n` and their outputs are incompatible across nodes
//! with different sensor sets (the Sec. IV-F portability experiment).

use crate::error::{CoreError, Result};
use crate::method::SignatureMethod;
use cwsmooth_linalg::{stats, Matrix};

/// Tuncer et al. statistical-indicator signatures (11 features per sensor).
#[derive(Debug, Clone, Copy, Default)]
pub struct TuncerMethod;

/// Number of indicators Tuncer emits per sensor.
pub const TUNCER_FEATURES_PER_SENSOR: usize = 11;

impl SignatureMethod for TuncerMethod {
    fn name(&self) -> String {
        "Tuncer".into()
    }

    fn signature_len(&self, n: usize) -> usize {
        n * TUNCER_FEATURES_PER_SENSOR
    }

    fn compute(&self, sw: &Matrix, _history: Option<&[f64]>) -> Result<Vec<f64>> {
        ensure_window(sw)?;
        let mut out = Vec::with_capacity(self.signature_len(sw.rows()));
        let mut pcts = Vec::with_capacity(5);
        for r in 0..sw.rows() {
            let row = sw.row(r);
            out.push(stats::mean(row));
            out.push(stats::std_dev(row));
            let (lo, hi) = stats::min_max(row);
            out.push(lo);
            out.push(hi);
            stats::percentiles(row, &[5.0, 25.0, 50.0, 75.0, 95.0], &mut pcts);
            out.extend_from_slice(&pcts);
            out.push(stats::sum_of_changes(row));
            out.push(stats::abs_sum_of_changes(row));
        }
        Ok(out)
    }
}

/// Bodik et al. percentile fingerprints (9 features per sensor).
#[derive(Debug, Clone, Copy, Default)]
pub struct BodikMethod;

/// Number of indicators Bodik emits per sensor.
pub const BODIK_FEATURES_PER_SENSOR: usize = 9;

impl SignatureMethod for BodikMethod {
    fn name(&self) -> String {
        "Bodik".into()
    }

    fn signature_len(&self, n: usize) -> usize {
        n * BODIK_FEATURES_PER_SENSOR
    }

    fn compute(&self, sw: &Matrix, _history: Option<&[f64]>) -> Result<Vec<f64>> {
        ensure_window(sw)?;
        let mut out = Vec::with_capacity(self.signature_len(sw.rows()));
        let mut pcts = Vec::with_capacity(7);
        for r in 0..sw.rows() {
            let row = sw.row(r);
            let (lo, hi) = stats::min_max(row);
            out.push(lo);
            out.push(hi);
            stats::percentiles(row, &[5.0, 25.0, 35.0, 50.0, 65.0, 75.0, 95.0], &mut pcts);
            out.extend_from_slice(&pcts);
        }
        Ok(out)
    }
}

/// Lan et al. sub-sampled raw time series (`wr` features per sensor).
#[derive(Debug, Clone, Copy)]
pub struct LanMethod {
    wr: usize,
}

impl LanMethod {
    /// Creates the method; `wr` is the per-sensor sub-sampled length.
    pub fn new(wr: usize) -> Result<Self> {
        if wr == 0 {
            return Err(CoreError::Config("Lan wr must be >= 1".into()));
        }
        Ok(Self { wr })
    }

    /// Per-sensor sub-sample length.
    pub fn wr(&self) -> usize {
        self.wr
    }
}

impl Default for LanMethod {
    fn default() -> Self {
        Self { wr: 6 }
    }
}

impl SignatureMethod for LanMethod {
    fn name(&self) -> String {
        "Lan".into()
    }

    fn signature_len(&self, n: usize) -> usize {
        n * self.wr
    }

    fn compute(&self, sw: &Matrix, _history: Option<&[f64]>) -> Result<Vec<f64>> {
        ensure_window(sw)?;
        let mut out = Vec::with_capacity(self.signature_len(sw.rows()));
        for r in 0..sw.rows() {
            out.extend(stats::mean_filter_subsample(sw.row(r), self.wr));
        }
        Ok(out)
    }
}

fn ensure_window(sw: &Matrix) -> Result<()> {
    if sw.rows() == 0 || sw.cols() == 0 {
        return Err(CoreError::Shape(format!(
            "window must be non-empty, got {}x{}",
            sw.rows(),
            sw.cols()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Matrix {
        Matrix::from_rows([[1.0, 2.0, 3.0, 4.0], [10.0, 10.0, 10.0, 10.0]]).unwrap()
    }

    #[test]
    fn tuncer_layout_and_values() {
        let sig = TuncerMethod.compute(&window(), None).unwrap();
        assert_eq!(sig.len(), 22);
        // row 0: mean, std, min, max
        assert!((sig[0] - 2.5).abs() < 1e-12);
        assert!((sig[1] - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(sig[2], 1.0);
        assert_eq!(sig[3], 4.0);
        // p50 of 1..4 = 2.5
        assert!((sig[6] - 2.5).abs() < 1e-12);
        // sum of changes = 3, abs sum = 3
        assert_eq!(sig[9], 3.0);
        assert_eq!(sig[10], 3.0);
        // constant row: std 0, changes 0
        assert_eq!(sig[12], 0.0);
        assert_eq!(sig[20], 0.0);
    }

    #[test]
    fn bodik_layout() {
        let sig = BodikMethod.compute(&window(), None).unwrap();
        assert_eq!(sig.len(), 18);
        assert_eq!(sig[0], 1.0); // min row0
        assert_eq!(sig[1], 4.0); // max row0
                                 // median at index 5 (min,max,p5,p25,p35,p50)
        assert!((sig[5] - 2.5).abs() < 1e-12);
        // constant row block is all 10s
        for &v in &sig[9..] {
            assert_eq!(v, 10.0);
        }
    }

    #[test]
    fn lan_subsamples_and_concatenates() {
        let lan = LanMethod::new(2).unwrap();
        let sig = lan.compute(&window(), None).unwrap();
        assert_eq!(sig, vec![1.5, 3.5, 10.0, 10.0]);
        assert_eq!(lan.signature_len(2), 4);
    }

    #[test]
    fn lan_rejects_zero_wr() {
        assert!(LanMethod::new(0).is_err());
    }

    #[test]
    fn size_laws_match_paper() {
        let n = 47;
        assert_eq!(TuncerMethod.signature_len(n), 11 * n);
        assert_eq!(BodikMethod.signature_len(n), 9 * n);
        assert_eq!(LanMethod::new(6).unwrap().signature_len(n), 6 * n);
    }

    #[test]
    fn empty_windows_rejected() {
        let empty = Matrix::zeros(0, 4);
        assert!(TuncerMethod.compute(&empty, None).is_err());
        assert!(BodikMethod.compute(&empty, None).is_err());
        assert!(LanMethod::default().compute(&empty, None).is_err());
        let no_cols = Matrix::zeros(3, 0);
        assert!(TuncerMethod.compute(&no_cols, None).is_err());
    }

    #[test]
    fn single_sample_window_is_defined() {
        let w = Matrix::from_rows([[5.0]]).unwrap();
        let t = TuncerMethod.compute(&w, None).unwrap();
        assert_eq!(t.len(), 11);
        assert_eq!(t[0], 5.0); // mean
        assert_eq!(t[1], 0.0); // std
        assert_eq!(t[9], 0.0); // sum of changes
        let b = BodikMethod.compute(&w, None).unwrap();
        assert!(b.iter().all(|&v| v == 5.0));
    }
}
