//! Correlation-wise Smoothing (CS) and baseline signature methods.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Sec. III): turning a window `S_w` of a multi-dimensional sensor matrix
//! into a compact *signature* vector usable by ODA models.
//!
//! * [`method`] — the [`method::SignatureMethod`] trait shared by all
//!   signature algorithms, plus windowed feature-set extraction.
//! * [`cs`] — the CS method itself: training stage (correlation learning,
//!   Algorithm 1 ordering, min-max bounds), sorting stage, and smoothing
//!   stage producing complex-valued blocks (Eq. 2–3).
//! * [`ordering`] — Algorithm 1 and ablation orderings (identity, random,
//!   global-coefficient-only).
//! * [`model`] — the persistable [`model::CsModel`].
//! * [`baselines`] — the three literature baselines: Tuncer (statistical
//!   indicators), Bodik (percentiles) and Lan (mean-filter sub-sampling).
//! * [`dataset`] — turning a labelled [`cwsmooth_data::Segment`] into a
//!   (features, labels) dataset via any signature method.
//! * [`online`] — streaming signature extraction, one sensor column at a
//!   time (the paper's online-deployment mode), with an allocation-free
//!   hot path and telemetry-gap recovery.
//! * [`fleet`] — fleet-scale streaming: thousands of per-node online
//!   streams sharded across rayon workers, fed by batched frames.
//! * [`pipeline`] — composable [`fleet::FleetSink`] operators ([`pipeline::Tee`]
//!   fan-out, [`pipeline::Filter`]/[`pipeline::NodeRoute`] routing,
//!   [`pipeline::Sample`] decimation, [`pipeline::Collect`],
//!   [`pipeline::TeeVec`] dynamic fan-out) that turn the
//!   event-delivery layer into an arbitrary operator tree.
//! * [`transport`] — off-thread sink branches: the bounded-queue
//!   [`transport::QueueSink`] adapter runs any sink on its own consumer
//!   thread with recycled [`fleet::FleetEventBuf`] envelopes, bounded
//!   backpressure (block or drop-oldest), and first-error propagation
//!   back to the ingest thread.
//! * [`scale`] — signature rescaling across block counts and middle-block
//!   pruning (the paper's portability and aggressive-compression tricks).
//!
//! # Quick example
//!
//! ```
//! use cwsmooth_linalg::Matrix;
//! use cwsmooth_core::cs::{CsMethod, CsTrainer};
//! use cwsmooth_core::method::SignatureMethod;
//!
//! // Four sensors, three of them correlated, observed for 100 samples.
//! let s = Matrix::from_fn(4, 100, |r, c| {
//!     let phase = (c as f64 / 10.0).sin();
//!     match r {
//!         0 => 10.0 * phase,
//!         1 => 5.0 * phase + 1.0,
//!         2 => -3.0 * phase,
//!         _ => 0.25, // constant sensor
//!     }
//! });
//! let model = CsTrainer::default().train(&s).unwrap();
//! let cs = CsMethod::new(model, 2).unwrap(); // 2 blocks
//! let window = s.col_window(0, 10).unwrap();
//! let sig = cs.compute(&window, None).unwrap();
//! assert_eq!(sig.len(), cs.signature_len(4)); // 2 blocks -> re+im = 4 features
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod blocks;
pub mod cs;
pub mod dataset;
pub mod error;
pub mod fleet;
pub mod method;
pub mod model;
pub mod online;
pub mod ordering;
pub mod pipeline;
pub mod scale;
pub mod transport;

pub use cs::{CsMethod, CsSignature, CsTrainer};
pub use error::{CoreError, Result};
pub use fleet::{FleetEngine, FleetEvent, FleetEventBuf, FleetFrame, FleetSink, FleetStats};
pub use method::SignatureMethod;
pub use model::CsModel;
pub use online::OnlineCs;
pub use pipeline::{Collect, Filter, NodeRoute, Sample, Tee, TeeVec};
pub use transport::{QueueConfig, QueuePolicy, QueueSink, QueueStats};
